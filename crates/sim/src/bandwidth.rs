//! Contended-bandwidth modeling.
//!
//! The paper's Figure 14 shows foreground IO latency rising ~50 % while a
//! background replication job copies 50 MB between EBS volumes, and the
//! spike disappearing when the `copy` response is given a 40 KB/s bandwidth
//! cap. That behaviour requires a *shared* resource: both foreground
//! requests and background transfers queue on the same device bandwidth.
//!
//! [`SharedBandwidth`] is a FIFO queue over virtual time: each reservation
//! occupies the device for `bytes / rate` and pushes back every later
//! reservation. A bandwidth-capped transfer *paces itself* (spacing chunk
//! start times at the cap rate via [`BandwidthCap::pace`]) so it only ever
//! holds the device for tiny intervals, which is exactly why capping helps.

use std::collections::BTreeMap;

use crate::clock::{SimDuration, SimTime};
use tiera_support::sync::{rank, Mutex};

/// How far behind the newest reservation a completed interval must be
/// before it is pruned. Callers' virtual clocks are expected to stay within
/// this horizon of each other (the workload drivers' pacer guarantees a far
/// tighter bound).
const PRUNE_HORIZON: SimDuration = SimDuration::from_secs(30);

/// A contended bandwidth resource (e.g. one EBS volume's disk path).
///
/// Reservations are placed into the earliest idle *gap* at or after the
/// requested time, so the outcome depends on virtual-time order rather than
/// call order — concurrent client threads whose clocks are slightly skewed
/// do not convoy behind each other's future reservations.
#[derive(Debug)]
pub struct SharedBandwidth {
    bytes_per_sec: f64,
    /// Busy intervals: start ns → end ns.
    busy: Mutex<BTreeMap<u64, u64>>,
}

/// Outcome of a bandwidth reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the transfer actually started (≥ requested start under queuing).
    pub start: SimTime,
    /// When the transfer completes.
    pub complete: SimTime,
}

impl Reservation {
    /// Total latency experienced by a requester that asked at `asked`.
    pub fn latency_from(&self, asked: SimTime) -> SimDuration {
        self.complete - asked
    }
}

impl SharedBandwidth {
    /// Creates a resource with the given capacity in bytes per second.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0,
            "bandwidth must be positive, got {bytes_per_sec}"
        );
        Self {
            bytes_per_sec,
            busy: Mutex::named("bandwidth.busy", rank::BANDWIDTH_BUSY, BTreeMap::new()),
        }
    }

    /// Device capacity in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Time the device needs to move `bytes` uncontended.
    pub fn service_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Reserves the device for a transfer of `bytes` starting no earlier
    /// than `asked`. FIFO: the transfer begins when the device frees up.
    pub fn reserve(&self, asked: SimTime, bytes: usize) -> Reservation {
        self.reserve_for(asked, self.service_time(bytes))
    }

    /// Reserves the device for an explicit occupancy duration (used when an
    /// operation holds the device for seek/queue time beyond pure transfer).
    ///
    /// The reservation takes the earliest idle gap at or after `asked`.
    pub fn reserve_for(&self, asked: SimTime, occupancy: SimDuration) -> Reservation {
        let occ = occupancy.as_nanos().max(1);
        let asked_ns = asked.as_nanos();
        let mut busy = self.busy.lock();
        // Prune intervals far in the past relative to this request.
        let cutoff = asked_ns.saturating_sub(PRUNE_HORIZON.as_nanos());
        while let Some((&s, &e)) = busy.first_key_value() {
            if e < cutoff {
                busy.remove(&s);
            } else {
                break;
            }
        }
        // Find the earliest gap of length `occ` starting at/after `asked`.
        let mut candidate = asked_ns;
        // Start from the last interval beginning at or before the candidate
        // (it may still overlap the candidate).
        if let Some((_, &e)) = busy.range(..=candidate).next_back() {
            if e > candidate {
                candidate = e;
            }
        }
        for (&s, &e) in busy.range(candidate..) {
            if candidate + occ <= s {
                break; // fits in the gap before this interval
            }
            candidate = candidate.max(e);
        }
        busy.insert(candidate, candidate + occ);
        Reservation {
            start: SimTime::from_nanos(candidate),
            complete: SimTime::from_nanos(candidate + occ),
        }
    }

    /// Earliest instant after every current reservation.
    pub fn next_free(&self) -> SimTime {
        let busy = self.busy.lock();
        SimTime::from_nanos(busy.values().copied().max().unwrap_or(0))
    }

    /// Resets the queue (used when a simulated device is replaced).
    pub fn reset(&self) {
        self.busy.lock().clear();
    }
}

/// A self-imposed rate limit for background transfers, as passed to the
/// paper's `copy` response (`bandwidth: 40KB/s`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthCap {
    /// Maximum transfer rate in bytes per second.
    pub bytes_per_sec: f64,
}

impl BandwidthCap {
    /// Creates a cap from bytes per second.
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive.
    pub fn bytes_per_sec(rate: f64) -> Self {
        assert!(rate > 0.0, "bandwidth cap must be positive, got {rate}");
        Self {
            bytes_per_sec: rate,
        }
    }

    /// Creates a cap from kilobytes per second (the paper's unit).
    pub fn kb_per_sec(kb: f64) -> Self {
        Self::bytes_per_sec(kb * 1000.0)
    }

    /// How long the paced transfer of `bytes` must take under this cap.
    pub fn pace(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_transfer_takes_service_time() {
        let bw = SharedBandwidth::new(1_000_000.0); // 1 MB/s
        let r = bw.reserve(SimTime::from_secs(1), 500_000);
        assert_eq!(r.start, SimTime::from_secs(1));
        assert_eq!(r.complete.as_millis(), 1500);
    }

    #[test]
    fn fifo_queueing_pushes_back_later_requests() {
        let bw = SharedBandwidth::new(1_000_000.0);
        // Background hog: 10 MB starting at t=0 → busy until t=10 s.
        let hog = bw.reserve(SimTime::ZERO, 10_000_000);
        assert_eq!(hog.complete, SimTime::from_secs(10));
        // Foreground 4 KB op asked at t=1 s must wait for the hog.
        let fg = bw.reserve(SimTime::from_secs(1), 4096);
        assert_eq!(fg.start, SimTime::from_secs(10));
        assert!(fg.latency_from(SimTime::from_secs(1)).as_secs_f64() > 8.9);
    }

    #[test]
    fn paced_transfers_barely_disturb_foreground() {
        let bw = SharedBandwidth::new(1_000_000.0);
        let cap = BandwidthCap::kb_per_sec(40.0);
        // A paced copy issues 4 KB chunks spaced at the cap rate: each chunk
        // occupies the device for only ~4 ms.
        let chunk = 4096;
        let spacing = cap.pace(chunk);
        assert!(spacing.as_millis() >= 100, "spacing={spacing}");
        // Reservations are FIFO in virtual-time order: the paced copier and
        // the foreground client interleave as the simulation advances.
        bw.reserve(SimTime::ZERO, chunk); // background chunk at t=0
        let fg = bw.reserve(SimTime::from_millis(50), 4096);
        bw.reserve(SimTime::ZERO + spacing, chunk); // next background chunk
        // The foreground op between chunks sees (almost) no queueing.
        assert!(fg.latency_from(SimTime::from_millis(50)).as_millis() < 10);
    }

    #[test]
    fn cap_pace_matches_rate() {
        let cap = BandwidthCap::kb_per_sec(40.0);
        // 50 MB at 40 KB/s = 1250 s — the slow-backup tradeoff the paper notes.
        assert_eq!(cap.pace(50_000_000).as_secs_f64().round() as u64, 1250);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = SharedBandwidth::new(0.0);
    }

    #[test]
    fn gap_filling_is_call_order_independent() {
        let bw = SharedBandwidth::new(1_000_000.0);
        // A reservation far in the future must not delay an earlier one
        // made later in call order (idle gaps are usable).
        let future = bw.reserve(SimTime::from_secs(10), 4096);
        assert_eq!(future.start, SimTime::from_secs(10));
        let early = bw.reserve(SimTime::from_secs(1), 4096);
        assert_eq!(early.start, SimTime::from_secs(1), "gap before the future slot");
        // A request overlapping the future slot lands right after it.
        let overlapping = bw.reserve(SimTime::from_secs(10), 4096);
        assert_eq!(overlapping.start, future.complete);
    }

    #[test]
    fn gaps_between_slots_are_filled_in_order() {
        let bw = SharedBandwidth::new(1_000_000.0);
        let a = bw.reserve_for(SimTime::ZERO, SimDuration::from_millis(10));
        let c = bw.reserve_for(SimTime::from_millis(30), SimDuration::from_millis(10));
        // Fits exactly between a and c.
        let b = bw.reserve_for(SimTime::from_millis(5), SimDuration::from_millis(15));
        assert_eq!(b.start, a.complete);
        assert_eq!(b.complete, SimTime::from_millis(25));
        // Does not fit between b and c → goes after c.
        let d = bw.reserve_for(SimTime::from_millis(5), SimDuration::from_millis(8));
        assert_eq!(d.start, c.complete);
    }
}
