//! Delayed capacity provisioning.
//!
//! When the paper's `grow` response fires (Figure 6 / Figure 16), a new
//! ElastiCache node must be spawned — which "took approximately 1 minute to
//! complete". The [`Provisioner`] models that: capacity changes are
//! *scheduled* and only become effective after the provisioning delay.
//! Shrinks are immediate (releasing a node needs no spawn).

use crate::clock::{SimDuration, SimTime};
use tiera_support::sync::{rank, Mutex};

/// A pending capacity change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    effective_at: SimTime,
    new_capacity: u64,
}

/// Models a tier's capacity with provisioning delays on growth.
#[derive(Debug)]
pub struct Provisioner {
    spawn_delay: SimDuration,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    capacity: u64,
    pending: Vec<Pending>,
}

impl Provisioner {
    /// Creates a provisioner with an initial capacity (bytes) and a spawn
    /// delay applied to every grow.
    pub fn new(initial_capacity: u64, spawn_delay: SimDuration) -> Self {
        Self {
            spawn_delay,
            state: Mutex::named("provision.state", rank::PROVISION_STATE, State {
                capacity: initial_capacity,
                pending: Vec::new(),
            }),
        }
    }

    /// Convenience: the paper's ~1 minute EC2 node spawn.
    pub fn with_ec2_spawn(initial_capacity: u64) -> Self {
        Self::new(initial_capacity, SimDuration::from_secs(60))
    }

    /// The capacity visible at virtual time `now` (applies matured changes).
    pub fn capacity_at(&self, now: SimTime) -> u64 {
        let mut st = self.state.lock();
        // Apply matured pending changes in scheduling order.
        let mut i = 0;
        while i < st.pending.len() {
            if st.pending[i].effective_at <= now {
                st.capacity = st.pending[i].new_capacity;
                st.pending.remove(i);
            } else {
                i += 1;
            }
        }
        st.capacity
    }

    /// Schedules a grow by `percent` of the *target* capacity at `now`,
    /// effective after the spawn delay. Returns the instant it matures.
    ///
    /// The target capacity is the latest scheduled capacity, so chained
    /// grows compound rather than racing.
    pub fn grow_percent(&self, now: SimTime, percent: f64) -> SimTime {
        let effective_at = now + self.spawn_delay;
        let mut st = self.state.lock();
        let base = st
            .pending
            .last()
            .map(|p| p.new_capacity)
            .unwrap_or(st.capacity);
        let add = (base as f64 * (percent / 100.0).max(0.0)).round() as u64;
        st.pending.push(Pending {
            effective_at,
            new_capacity: base + add,
        });
        effective_at
    }

    /// Shrinks capacity by `percent` immediately (no spawn needed).
    pub fn shrink_percent(&self, percent: f64) {
        let mut st = self.state.lock();
        let cut = (st.capacity as f64 * (percent / 100.0).clamp(0.0, 1.0)) as u64;
        st.capacity = st.capacity.saturating_sub(cut);
        st.pending.clear();
    }

    /// Whether a grow is still in flight at `now`.
    pub fn growing_at(&self, now: SimTime) -> bool {
        let st = self.state.lock();
        st.pending.iter().any(|p| p.effective_at > now)
    }

    /// The configured spawn delay.
    pub fn spawn_delay(&self) -> SimDuration {
        self.spawn_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn grow_matures_after_delay() {
        let p = Provisioner::with_ec2_spawn(200 * MB);
        let t0 = SimTime::from_secs(360); // the paper's t = 6 min trigger
        let matures = p.grow_percent(t0, 100.0);
        assert_eq!(matures, SimTime::from_secs(420));
        assert_eq!(p.capacity_at(SimTime::from_secs(419)), 200 * MB);
        assert_eq!(p.capacity_at(SimTime::from_secs(420)), 400 * MB);
    }

    #[test]
    fn chained_grows_compound() {
        let p = Provisioner::new(100, SimDuration::from_secs(10));
        p.grow_percent(SimTime::ZERO, 100.0); // → 200 at t=10
        p.grow_percent(SimTime::from_secs(1), 50.0); // 50% of 200 → 300 at t=11
        assert_eq!(p.capacity_at(SimTime::from_secs(12)), 300);
    }

    #[test]
    fn shrink_is_immediate() {
        let p = Provisioner::with_ec2_spawn(100);
        p.shrink_percent(25.0);
        assert_eq!(p.capacity_at(SimTime::ZERO), 75);
    }

    #[test]
    fn growing_at_reports_in_flight() {
        let p = Provisioner::new(100, SimDuration::from_secs(60));
        assert!(!p.growing_at(SimTime::ZERO));
        p.grow_percent(SimTime::ZERO, 10.0);
        assert!(p.growing_at(SimTime::from_secs(30)));
        assert!(!p.growing_at(SimTime::from_secs(61)));
    }
}
