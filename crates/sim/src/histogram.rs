//! Log-bucketed latency histogram.
//!
//! The paper reports average and 95th-percentile latencies (Figures 7b, 8b).
//! This is a compact HDR-style histogram: buckets grow geometrically so the
//! relative quantile error is bounded (~4 %) across nine decades of
//! nanoseconds, with O(1) record and O(buckets) quantile queries. It is the
//! single latency-aggregation type used by tiers, instances, and the
//! experiment harness.

use crate::clock::SimDuration;

/// Sub-buckets per power of two (higher = finer resolution).
const SUBBUCKETS_LOG2: u32 = 5; // 32 sub-buckets per octave ⇒ ≤ ~3.1 % error
const SUBBUCKETS: usize = 1 << SUBBUCKETS_LOG2;
/// Number of octaves covered (2^0 .. 2^39 ns ≈ 550 s).
const OCTAVES: usize = 40;
const NBUCKETS: usize = OCTAVES * SUBBUCKETS;

/// A fixed-footprint log-bucketed histogram of durations.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < SUBBUCKETS as u64 {
            return ns as usize;
        }
        let octave = 63 - ns.leading_zeros(); // floor(log2(ns)) ≥ SUBBUCKETS_LOG2
        let shift = octave - SUBBUCKETS_LOG2;
        let sub = (ns >> shift) as usize & (SUBBUCKETS - 1);
        let idx = ((octave - SUBBUCKETS_LOG2 + 1) as usize) * SUBBUCKETS + sub;
        idx.min(NBUCKETS - 1)
    }

    /// Representative (upper-edge) value of a bucket, in nanoseconds.
    fn bucket_value(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let octave = (idx / SUBBUCKETS - 1) as u32 + SUBBUCKETS_LOG2;
        let sub = (idx % SUBBUCKETS) as u64;
        let base = 1u64 << octave;
        base + (sub << (octave - SUBBUCKETS_LOG2))
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of the samples, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / u128::from(self.total)) as u64)
    }

    /// Smallest recorded sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample (bucket-quantized upper bound is exact for max
    /// because we track it separately).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Value at quantile `q ∈ [0, 1]` (e.g. `0.95` for the paper's p95),
    /// accurate to the bucket's relative width (~3 %).
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_nanos(Self::bucket_value(i).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum_ns = 0;
        self.min_ns = u64::MAX;
        self.max_ns = 0;
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p95", &self.quantile(0.95))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.95), SimDuration::ZERO);
    }

    #[test]
    fn mean_of_known_samples() {
        let mut h = Histogram::new();
        for ms in [1u64, 2, 3, 4] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.mean().as_micros(), 2500);
        assert_eq!(h.min(), SimDuration::from_millis(1));
        assert_eq!(h.max(), SimDuration::from_millis(4));
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        let mut rng = SimRng::new(77);
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..20_000 {
            let ns = rng.next_range(1_000, 50_000_000); // 1 us .. 50 ms
            exact.push(ns);
            h.record(SimDuration::from_nanos(ns));
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let true_v = exact[((q * exact.len() as f64).ceil() as usize - 1).min(exact.len() - 1)]
                as f64;
            let est = h.quantile(q).as_nanos() as f64;
            let rel = (est - true_v).abs() / true_v;
            assert!(rel < 0.05, "q={q} rel_err={rel} est={est} true={true_v}");
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let d = SimDuration::from_micros(i * 7 + 1);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean(), whole.mean());
        assert_eq!(a.quantile(0.95), whole.quantile(0.95));
    }

    #[test]
    fn tiny_values_are_exact() {
        let mut h = Histogram::new();
        for ns in 0..SUBBUCKETS as u64 {
            h.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(h.quantile(0.0).as_nanos(), 0);
        assert_eq!(h.max().as_nanos(), SUBBUCKETS as u64 - 1);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_millis(5));
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn huge_values_clamp_to_last_bucket() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_secs(10_000)); // beyond covered range
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > SimDuration::from_secs(100));
    }
}
