//! Deterministic pseudo-random numbers.
//!
//! The implementation lives in [`tiera_support::rng`] — the bottom of the
//! dependency graph — so that `tiera-support`'s property-test harness can
//! drive generators off the same stream without a dependency cycle. This
//! module re-exports it under its historical home; simulation code keeps
//! importing `tiera_sim::SimRng`.

pub use tiera_support::rng::SimRng;

#[cfg(test)]
mod tests {
    use super::*;

    // The re-export must keep sim-visible determinism guarantees intact.
    #[test]
    fn same_seed_same_stream_via_reexport() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SimRng::new(1);
        let mut child = root.split();
        let a: Vec<u64> = (0..8).map(|_| root.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
