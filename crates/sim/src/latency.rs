//! Per-operation latency models for simulated storage services.
//!
//! A storage operation's service time is modeled as
//!
//! ```text
//! latency = (base + bytes * per_byte) * jitter
//! ```
//!
//! where `jitter` is a bounded multiplicative factor sampled from the
//! component's seeded RNG. The default profiles below encode the relative
//! ordering the paper's evaluation relies on (Memcached ≪ EBS ≪ S3); see
//! `DESIGN.md` §1 for the calibration rationale.

use crate::clock::SimDuration;
use crate::rng::SimRng;

/// Latency model: fixed base cost plus linear per-byte transfer cost, with
/// bounded multiplicative jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-operation overhead (network round trip + service dispatch).
    pub base: SimDuration,
    /// Transfer time per byte moved.
    pub per_byte_ns: f64,
    /// Jitter half-width as a fraction of the deterministic latency
    /// (e.g. `0.15` samples uniformly in `[0.85, 1.15]`).
    pub jitter: f64,
}

impl LatencyModel {
    /// A model with zero latency (useful for tests of pure logic).
    pub const ZERO: LatencyModel = LatencyModel {
        base: SimDuration::ZERO,
        per_byte_ns: 0.0,
        jitter: 0.0,
    };

    /// Creates a model from a base latency and a throughput in MiB/s.
    ///
    /// `throughput_mib_s == 0` means "infinite bandwidth" (no per-byte cost).
    pub fn new(base: SimDuration, throughput_mib_s: f64, jitter: f64) -> Self {
        let per_byte_ns = if throughput_mib_s > 0.0 {
            1e9 / (throughput_mib_s * 1024.0 * 1024.0)
        } else {
            0.0
        };
        Self {
            base,
            per_byte_ns,
            jitter,
        }
    }

    /// Deterministic (jitter-free) latency for an operation moving `bytes`.
    pub fn deterministic(&self, bytes: usize) -> SimDuration {
        let transfer = (bytes as f64 * self.per_byte_ns).round() as u64;
        SimDuration::from_nanos(self.base.as_nanos() + transfer)
    }

    /// Samples the latency for an operation moving `bytes`.
    pub fn sample(&self, bytes: usize, rng: &mut SimRng) -> SimDuration {
        let det = self.deterministic(bytes);
        if self.jitter <= 0.0 {
            det
        } else {
            det.mul_f64(rng.jitter(self.jitter))
        }
    }

    // ---- Calibrated profiles (per-4KB numbers quoted in DESIGN.md) ----

    /// Memcached in the client's availability zone: ~0.25 ms RTT + ~250 MiB/s.
    pub fn memcached_same_az() -> Self {
        Self::new(SimDuration::from_micros(250), 250.0, 0.15)
    }

    /// Memcached in a different availability zone: ~1 ms RTT.
    pub fn memcached_cross_az() -> Self {
        Self::new(SimDuration::from_micros(1000), 180.0, 0.20)
    }

    /// EBS-style block store read. 2014-era *standard* (magnetic) EBS under
    /// load: ~9 ms access latency.
    pub fn ebs_read() -> Self {
        Self::new(SimDuration::from_micros(9000), 90.0, 0.30)
    }

    /// EBS-style block store write: ~11 ms.
    pub fn ebs_write() -> Self {
        Self::new(SimDuration::from_micros(11_000), 70.0, 0.30)
    }

    /// S3-style object store GET: ~28 ms per request.
    pub fn s3_read() -> Self {
        Self::new(SimDuration::from_millis(28), 60.0, 0.30)
    }

    /// S3-style object store PUT: ~120 ms per small-object request
    /// (2014-era S3 PUTs of small files through FUSE were slow).
    pub fn s3_write() -> Self {
        Self::new(SimDuration::from_millis(120), 45.0, 0.30)
    }

    /// EC2 ephemeral (instance-store) read: "performance comparable to
    /// EBS" (paper §4.2.3), slightly faster being instance-local.
    pub fn ephemeral_read() -> Self {
        Self::new(SimDuration::from_micros(7000), 110.0, 0.25)
    }

    /// EC2 ephemeral write.
    pub fn ephemeral_write() -> Self {
        Self::new(SimDuration::from_micros(9000), 95.0, 0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_scales_with_bytes() {
        let m = LatencyModel::new(SimDuration::from_micros(100), 100.0, 0.0);
        let small = m.deterministic(4096);
        let big = m.deterministic(4 * 1024 * 1024);
        assert!(big > small);
        // 4 MiB at 100 MiB/s ≈ 40 ms (< 50 ms with base).
        assert!(big.as_millis() >= 39 && big.as_millis() <= 41, "{big}");
    }

    #[test]
    fn zero_model_charges_nothing() {
        let mut rng = SimRng::new(1);
        assert_eq!(LatencyModel::ZERO.sample(1 << 20, &mut rng), SimDuration::ZERO);
    }

    #[test]
    fn jitter_brackets_deterministic() {
        let m = LatencyModel::new(SimDuration::from_millis(10), 0.0, 0.2);
        let mut rng = SimRng::new(2);
        for _ in 0..500 {
            let s = m.sample(0, &mut rng).as_nanos() as f64;
            let d = m.deterministic(0).as_nanos() as f64;
            assert!(s >= d * 0.8 - 1.0 && s <= d * 1.2 + 1.0);
        }
    }

    #[test]
    fn tier_profiles_preserve_paper_ordering() {
        // The evaluation depends on: memcached << ebs << s3 for 4 KB ops.
        let b = 4096;
        let mem = LatencyModel::memcached_same_az().deterministic(b);
        let ebs = LatencyModel::ebs_read().deterministic(b);
        let s3 = LatencyModel::s3_read().deterministic(b);
        assert!(mem < ebs && ebs < s3);
        assert!(s3.as_nanos() > 2 * ebs.as_nanos());
        let cross = LatencyModel::memcached_cross_az().deterministic(b);
        assert!(cross > mem && cross < ebs);
    }

    #[test]
    fn infinite_bandwidth_means_flat_latency() {
        let m = LatencyModel::new(SimDuration::from_millis(1), 0.0, 0.0);
        assert_eq!(m.deterministic(0), m.deterministic(1 << 30));
    }
}
