//! Virtual time.
//!
//! All Tiera experiments run on a virtual clock so that a "14 minute"
//! timeline (paper Figure 16) executes in milliseconds of real time and is
//! byte-for-byte reproducible. Time is a monotone `u64` nanosecond counter.
//!
//! Concurrency model: closed-loop client threads each keep a *thread-local*
//! notion of time (the sum of latencies charged to them) and publish it into
//! the shared [`VirtualClock`] with [`VirtualClock::advance_to`], which is a
//! `fetch_max`. Components that need globally-ordered time (timer events,
//! provisioning deadlines, failure windows) read [`VirtualClock::now`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// A point in virtual time, in nanoseconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds as a float (the unit the paper's figures use).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// Checked integer division of two durations (how many `rhs` fit in `self`).
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        self.0.checked_div(rhs.0).unwrap_or(0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.as_micros())
        }
    }
}

/// Shared monotone virtual clock.
///
/// The clock only moves forward: [`advance_to`](VirtualClock::advance_to)
/// performs an atomic `fetch_max`, so racing client threads can publish
/// their local times in any order without the global time going backwards.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self {
            now_ns: AtomicU64::new(0),
        }
    }

    /// The current global virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_ns.load(Ordering::Acquire))
    }

    /// Publishes `t` as a lower bound on global time.
    ///
    /// Returns the resulting global time (which may exceed `t` if another
    /// thread published a later instant).
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let prev = self.now_ns.fetch_max(t.0, Ordering::AcqRel);
        SimTime(prev.max(t.0))
    }

    /// Advances the global clock by `d` and returns the new time.
    pub fn advance_by(&self, d: SimDuration) -> SimTime {
        let new = self.now_ns.fetch_add(d.0, Ordering::AcqRel) + d.0;
        SimTime(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_under_advance_to() {
        let c = VirtualClock::new();
        c.advance_to(SimTime::from_secs(10));
        // Publishing an older time must not move the clock backwards.
        c.advance_to(SimTime::from_secs(4));
        assert_eq!(c.now(), SimTime::from_secs(10));
    }

    #[test]
    fn advance_by_accumulates() {
        let c = VirtualClock::new();
        c.advance_by(SimDuration::from_millis(3));
        c.advance_by(SimDuration::from_millis(4));
        assert_eq!(c.now().as_millis(), 7);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, SimDuration::from_millis(6));
        // Subtraction saturates rather than panicking.
        assert_eq!(b - a, SimDuration::ZERO);
        assert_eq!(b + SimDuration::from_millis(6), a);
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn concurrent_fetch_max_settles_on_maximum() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let handles: Vec<_> = (1..=8u64)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for k in 0..100 {
                        c.advance_to(SimTime::from_nanos(i * 1000 + k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), SimTime::from_nanos(8 * 1000 + 99));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }
}
