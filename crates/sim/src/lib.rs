//! # tiera-sim — simulation substrate for the Tiera middleware
//!
//! The Tiera paper (Middleware 2014) evaluates its prototype against real
//! Amazon storage services (ElastiCache/Memcached, EBS, S3, EC2 ephemeral
//! volumes) measured from EC2 instances. This crate provides the synthetic
//! stand-ins for everything that was physical in that evaluation:
//!
//! * [`VirtualClock`] / [`SimTime`] — multithread-safe virtual time, so a
//!   "10 minute" experiment (paper Figure 17) runs in milliseconds and is
//!   deterministic.
//! * [`SimRng`] — a seeded, splittable PRNG (SplitMix64 core) so every
//!   latency sample and workload decision is reproducible.
//! * [`LatencyModel`] — per-operation service time: base latency + per-byte
//!   transfer time + bounded multiplicative jitter.
//! * [`SharedBandwidth`] — a virtual-time token bucket modelling a contended
//!   resource such as an EBS volume's disk bandwidth (paper Figure 14).
//! * [`cost`] — the 2014-era AWS price points the paper's cost plots
//!   (Figures 9b, 11b, 13b) are built from.
//! * [`FailureInjector`] — time-windowed fault injection used to reproduce
//!   the EBS outage timeline of Figure 17.
//! * [`Provisioner`] — delayed capacity changes modelling EC2 node spawn
//!   (the "approximately 1 minute" of Figure 16).
//! * [`Histogram`] — log-bucketed latency histogram with percentile queries
//!   (the paper reports averages and 95th percentiles).
//!
//! Nothing in this crate sleeps or reads the wall clock: operations *return*
//! the time they would have taken, and drivers account for it. See
//! `DESIGN.md` §3 ("Virtual time under concurrency").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod clock;
pub mod cost;
pub mod failure;
pub mod histogram;
pub mod latency;
pub mod provision;
pub mod rng;
pub mod serial;

pub use bandwidth::SharedBandwidth;
pub use clock::{SimDuration, SimTime, VirtualClock};
pub use cost::{CostReport, PricePlan, StorageClass};
pub use failure::{FailureInjector, FailureKind, FailureWindow, FaultSpec, Verdict};
pub use histogram::Histogram;
pub use latency::LatencyModel;
pub use provision::Provisioner;
pub use rng::SimRng;
pub use serial::SerialResource;

use std::sync::Arc;

/// Shared simulation environment handed to every simulated component.
///
/// Bundles the global [`VirtualClock`] with the seed from which component
/// RNGs are derived. Cloning is cheap (the clock is shared, the seed is
/// copied).
#[derive(Debug, Clone)]
pub struct SimEnv {
    clock: Arc<VirtualClock>,
    seed: u64,
}

impl SimEnv {
    /// Creates an environment with a fresh clock starting at time zero.
    pub fn new(seed: u64) -> Self {
        Self {
            clock: Arc::new(VirtualClock::new()),
            seed,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The environment's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a deterministic RNG for a named component.
    ///
    /// Different `label`s yield independent streams; the same label always
    /// yields the same stream for a given environment seed.
    pub fn rng_for(&self, label: &str) -> SimRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::new(self.seed ^ h)
    }
}

impl Default for SimEnv {
    fn default() -> Self {
        Self::new(t_seed_default())
    }
}

const fn t_seed_default() -> u64 {
    0x7165_7261_5f73_6565 // "tiera_see(d)" flavoured constant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_for_is_deterministic_per_label() {
        let env = SimEnv::new(42);
        let mut a1 = env.rng_for("memcached");
        let mut a2 = env.rng_for("memcached");
        let mut b = env.rng_for("ebs");
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn env_clone_shares_clock() {
        let env = SimEnv::new(1);
        let env2 = env.clone();
        env.clock().advance_to(SimTime::from_millis(5));
        assert_eq!(env2.clock().now(), SimTime::from_millis(5));
    }
}
