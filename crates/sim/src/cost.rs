//! Monetary cost model (2014-era AWS price points).
//!
//! The paper's cost plots (Figures 9b, 11b, 13b) compare *monthly storage
//! cost per GB* across tier mixes. What matters for every conclusion is the
//! ordering and rough magnitude of the price points:
//!
//! * in-memory cache (ElastiCache/Memcached): dominated by the EC2 cache
//!   node's hourly price amortized per GB — by far the most expensive;
//! * block store (EBS): cents per GB-month plus a per-IO charge;
//! * object store (S3): the cheapest per GB, but PUT/GET requests are
//!   themselves billed (which Figure 12b exploits via deduplication);
//! * ephemeral instance storage: bundled with the instance, $0 marginal.
//!
//! Prices below follow the early-2014 us-east-1 public price sheet the paper
//! cites (<https://aws.amazon.com/ec2/pricing/> at the time).

/// Hours in a (30-day) billing month, used to amortize hourly node prices.
pub const HOURS_PER_MONTH: f64 = 720.0;

/// Broad storage classes with distinct pricing structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageClass {
    /// In-memory cache node (ElastiCache-style).
    MemoryCache,
    /// Network-attached persistent block store (EBS-style).
    BlockStore,
    /// Durable object store (S3-style).
    ObjectStore,
    /// Instance-local ephemeral disk.
    Ephemeral,
}

/// A price plan for one storage class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePlan {
    /// Dollars per GB-month of provisioned capacity.
    pub dollars_per_gb_month: f64,
    /// Dollars per 1,000 PUT-class requests.
    pub dollars_per_1k_puts: f64,
    /// Dollars per 10,000 GET-class requests.
    pub dollars_per_10k_gets: f64,
}

impl PricePlan {
    /// A plan that charges nothing (ephemeral storage).
    pub const FREE: PricePlan = PricePlan {
        dollars_per_gb_month: 0.0,
        dollars_per_1k_puts: 0.0,
        dollars_per_10k_gets: 0.0,
    };

    /// The default plan for a storage class (2014 us-east-1).
    pub fn for_class(class: StorageClass) -> Self {
        match class {
            // cache.m1.small ≈ $0.022/h for ~1.3 GB usable ⇒ ≈ $12–16/GB-month.
            StorageClass::MemoryCache => PricePlan {
                dollars_per_gb_month: 0.022 * HOURS_PER_MONTH / 1.3,
                dollars_per_1k_puts: 0.0,
                dollars_per_10k_gets: 0.0,
            },
            // EBS standard: $0.05/GB-month + $0.05 per million IO
            // (expressed here per 1k/10k to share the accounting shape).
            StorageClass::BlockStore => PricePlan {
                dollars_per_gb_month: 0.05,
                dollars_per_1k_puts: 0.05 / 1000.0,
                dollars_per_10k_gets: 0.05 / 100.0,
            },
            // S3: $0.03/GB-month (first TB), $0.005/1k PUT, $0.004/10k GET.
            StorageClass::ObjectStore => PricePlan {
                dollars_per_gb_month: 0.03,
                dollars_per_1k_puts: 0.005,
                dollars_per_10k_gets: 0.004,
            },
            StorageClass::Ephemeral => PricePlan::FREE,
        }
    }

    /// Monthly capacity cost for `gb` provisioned gigabytes.
    pub fn capacity_cost(&self, gb: f64) -> f64 {
        self.dollars_per_gb_month * gb.max(0.0)
    }

    /// Request cost for the given operation counts.
    pub fn request_cost(&self, puts: u64, gets: u64) -> f64 {
        self.dollars_per_1k_puts * (puts as f64 / 1_000.0)
            + self.dollars_per_10k_gets * (gets as f64 / 10_000.0)
    }
}

/// Monthly cost of a 2014-era *provisioned-IOPS* (io1-style) EBS volume —
/// what a production database deployment provisions: $0.125/GB-month plus
/// $0.065 per provisioned IOPS-month.
pub fn provisioned_iops_monthly(gb: f64, piops: f64) -> f64 {
    0.125 * gb.max(0.0) + 0.065 * piops.max(0.0)
}

/// An itemized monthly cost report for a Tiera instance configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostReport {
    /// `(tier label, monthly dollars)` line items.
    pub items: Vec<(String, f64)>,
}

impl CostReport {
    /// Adds a line item.
    pub fn add(&mut self, label: impl Into<String>, dollars: f64) {
        self.items.push((label.into(), dollars));
    }

    /// Total monthly dollars.
    pub fn total(&self) -> f64 {
        self.items.iter().map(|(_, d)| d).sum()
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (label, d) in &self.items {
            writeln!(f, "  {label:<28} ${d:>8.4}/month")?;
        }
        write!(f, "  {:<28} ${:>8.4}/month", "TOTAL", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_price_ordering_matches_paper() {
        let mem = PricePlan::for_class(StorageClass::MemoryCache).dollars_per_gb_month;
        let ebs = PricePlan::for_class(StorageClass::BlockStore).dollars_per_gb_month;
        let s3 = PricePlan::for_class(StorageClass::ObjectStore).dollars_per_gb_month;
        let eph = PricePlan::for_class(StorageClass::Ephemeral).dollars_per_gb_month;
        assert!(mem > 50.0 * ebs, "memory must dominate: {mem} vs {ebs}");
        assert!(ebs > s3);
        assert_eq!(eph, 0.0);
    }

    #[test]
    fn s3_requests_are_billed() {
        let s3 = PricePlan::for_class(StorageClass::ObjectStore);
        // 100k PUTs + 1M GETs = 100*0.005 + 100*0.004 = $0.9.
        let c = s3.request_cost(100_000, 1_000_000);
        assert!((c - 0.9).abs() < 1e-9, "{c}");
    }

    #[test]
    fn memory_cache_requests_are_free() {
        let mem = PricePlan::for_class(StorageClass::MemoryCache);
        assert_eq!(mem.request_cost(1_000_000, 1_000_000), 0.0);
    }

    #[test]
    fn report_totals_line_items() {
        let mut r = CostReport::default();
        r.add("memcached 0.2GB", 2.4);
        r.add("s3 10GB", 0.3);
        assert!((r.total() - 2.7).abs() < 1e-12);
        let shown = r.to_string();
        assert!(shown.contains("TOTAL"));
        assert!(shown.contains("memcached 0.2GB"));
    }

    #[test]
    fn capacity_cost_clamps_negative() {
        let p = PricePlan::for_class(StorageClass::BlockStore);
        assert_eq!(p.capacity_cost(-3.0), 0.0);
    }
}
