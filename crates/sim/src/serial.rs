//! Serialization of virtual-time critical sections.
//!
//! Models a resource held in *virtual* time: a database's CPU, a table
//! lock. Grants are placed into the earliest idle gap at or after the
//! requested time (like [`crate::SharedBandwidth`]), so slightly skewed
//! client threads do not convoy behind each other's future reservations —
//! only genuine contention queues.

use std::collections::BTreeMap;

use crate::clock::{SimDuration, SimTime};
use tiera_support::sync::{rank, Mutex};

/// Prune horizon for completed intervals (callers stay far closer together
/// than this; the workload drivers' pacer guarantees it).
const PRUNE_HORIZON: SimDuration = SimDuration::from_secs(30);

/// A gap-filling virtual-time lock / serial executor.
#[derive(Debug)]
pub struct SerialResource {
    busy: Mutex<BTreeMap<u64, u64>>,
}

impl Default for SerialResource {
    fn default() -> Self {
        Self {
            busy: Mutex::named("serial.busy", rank::SERIAL_BUSY, BTreeMap::new()),
        }
    }
}

/// Grant returned by [`SerialResource::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the critical section actually started (≥ requested time).
    pub start: SimTime,
    /// When the critical section ends.
    pub end: SimTime,
}

impl Grant {
    /// Total time the acquirer experienced (queueing + hold).
    pub fn latency_from(&self, asked: SimTime) -> SimDuration {
        self.end - asked
    }
}

impl SerialResource {
    /// Creates an uncontended resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the resource at `now` for `hold`, taking the earliest idle
    /// gap at or after `now`.
    pub fn acquire(&self, now: SimTime, hold: SimDuration) -> Grant {
        let occ = hold.as_nanos().max(1);
        let asked = now.as_nanos();
        let mut busy = self.busy.lock();
        let cutoff = asked.saturating_sub(PRUNE_HORIZON.as_nanos());
        while let Some((&s, &e)) = busy.first_key_value() {
            if e < cutoff {
                busy.remove(&s);
            } else {
                break;
            }
        }
        let mut candidate = asked;
        if let Some((_, &e)) = busy.range(..=candidate).next_back() {
            if e > candidate {
                candidate = e;
            }
        }
        for (&s, &e) in busy.range(candidate..) {
            if candidate + occ <= s {
                break;
            }
            candidate = candidate.max(e);
        }
        busy.insert(candidate, candidate + occ);
        Grant {
            start: SimTime::from_nanos(candidate),
            end: SimTime::from_nanos(candidate + occ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_is_immediate() {
        let r = SerialResource::new();
        let g = r.acquire(SimTime::from_secs(1), SimDuration::from_millis(10));
        assert_eq!(g.start, SimTime::from_secs(1));
        assert_eq!(g.latency_from(SimTime::from_secs(1)), SimDuration::from_millis(10));
    }

    #[test]
    fn contended_acquires_serialize() {
        let r = SerialResource::new();
        // Eight "threads" all ask at t=0 for 10 ms each: the last one
        // finishes at 80 ms — the Memory-engine collapse.
        let mut last_end = SimTime::ZERO;
        for _ in 0..8 {
            let g = r.acquire(SimTime::ZERO, SimDuration::from_millis(10));
            assert_eq!(g.start, last_end);
            last_end = g.end;
        }
        assert_eq!(last_end, SimTime::from_millis(80));
    }

    #[test]
    fn idle_gaps_are_not_accumulated() {
        let r = SerialResource::new();
        r.acquire(SimTime::ZERO, SimDuration::from_millis(1));
        // Asking long after the lock freed starts immediately.
        let g = r.acquire(SimTime::from_secs(5), SimDuration::from_millis(1));
        assert_eq!(g.start, SimTime::from_secs(5));
    }

    #[test]
    fn earlier_request_uses_idle_gap_before_future_reservation() {
        let r = SerialResource::new();
        // A thread slightly ahead in virtual time reserves a future slot...
        let future = r.acquire(SimTime::from_millis(100), SimDuration::from_millis(10));
        assert_eq!(future.start, SimTime::from_millis(100));
        // ...a thread slightly behind must not queue behind it.
        let early = r.acquire(SimTime::from_millis(5), SimDuration::from_millis(10));
        assert_eq!(early.start, SimTime::from_millis(5));
        // But an overlapping request does queue.
        let overlap = r.acquire(SimTime::from_millis(12), SimDuration::from_millis(10));
        assert_eq!(overlap.start, SimTime::from_millis(15));
    }
}
