//! Time-windowed failure injection.
//!
//! Reproduces the paper's Figure 17: "We simulate a failure in EBS (similar
//! to [the 2011 outage]) by timing out writes around t = 4 mins." A
//! [`FailureInjector`] holds a set of [`FailureWindow`]s; a simulated tier
//! consults it before each operation and, if a window covers the current
//! virtual time, the operation fails (after a modeled timeout delay, which
//! is what makes the observed throughput collapse rather than error fast).

use crate::clock::{SimDuration, SimTime};
use tiera_support::sync::RwLock;

/// Which operations a failure window affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Reads fail.
    Reads,
    /// Writes fail (the Figure 17 scenario).
    Writes,
    /// Every operation fails.
    All,
}

impl FailureKind {
    /// Whether this kind covers a write operation.
    pub fn covers_write(self) -> bool {
        matches!(self, FailureKind::Writes | FailureKind::All)
    }

    /// Whether this kind covers a read operation.
    pub fn covers_read(self) -> bool {
        matches!(self, FailureKind::Reads | FailureKind::All)
    }
}

/// A failure window over virtual time: `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureWindow {
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive); `None` means "until further notice".
    pub until: Option<SimTime>,
    /// Affected operations.
    pub kind: FailureKind,
    /// How long a client waits before the operation times out.
    pub timeout: SimDuration,
}

impl FailureWindow {
    /// An open-ended write outage starting at `from` with a default
    /// 5-second client timeout.
    pub fn write_outage(from: SimTime) -> Self {
        Self {
            from,
            until: None,
            kind: FailureKind::Writes,
            timeout: SimDuration::from_secs(5),
        }
    }

    fn covers(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }
}

/// The verdict for one operation at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Operation proceeds normally.
    Healthy,
    /// Operation fails after the given timeout delay.
    TimedOut(SimDuration),
}

/// Thread-safe collection of failure windows.
#[derive(Debug, Default)]
pub struct FailureInjector {
    windows: RwLock<Vec<FailureWindow>>,
}

impl FailureInjector {
    /// Creates an injector with no scheduled failures.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a failure window.
    pub fn schedule(&self, w: FailureWindow) {
        self.windows.write().push(w);
    }

    /// Clears every scheduled window (a "repair").
    pub fn clear(&self) {
        self.windows.write().clear();
    }

    /// Verdict for a write at virtual time `now`.
    pub fn check_write(&self, now: SimTime) -> Verdict {
        self.check(now, true)
    }

    /// Verdict for a read at virtual time `now`.
    pub fn check_read(&self, now: SimTime) -> Verdict {
        self.check(now, false)
    }

    fn check(&self, now: SimTime, is_write: bool) -> Verdict {
        let windows = self.windows.read();
        for w in windows.iter() {
            let covered = if is_write {
                w.kind.covers_write()
            } else {
                w.kind.covers_read()
            };
            if covered && w.covers(now) {
                return Verdict::TimedOut(w.timeout);
            }
        }
        Verdict::Healthy
    }

    /// Whether any window is active at `now`.
    pub fn any_active(&self, now: SimTime) -> bool {
        let windows = self.windows.read();
        windows.iter().any(|w| w.covers(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_before_window() {
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow::write_outage(SimTime::from_secs(240)));
        assert_eq!(inj.check_write(SimTime::from_secs(239)), Verdict::Healthy);
    }

    #[test]
    fn writes_time_out_inside_window_reads_unaffected() {
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow::write_outage(SimTime::from_secs(240)));
        match inj.check_write(SimTime::from_secs(300)) {
            Verdict::TimedOut(d) => assert_eq!(d, SimDuration::from_secs(5)),
            v => panic!("expected timeout, got {v:?}"),
        }
        assert_eq!(inj.check_read(SimTime::from_secs(300)), Verdict::Healthy);
    }

    #[test]
    fn bounded_window_ends() {
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow {
            from: SimTime::from_secs(10),
            until: Some(SimTime::from_secs(20)),
            kind: FailureKind::All,
            timeout: SimDuration::from_secs(1),
        });
        assert_ne!(inj.check_read(SimTime::from_secs(15)), Verdict::Healthy);
        assert_eq!(inj.check_read(SimTime::from_secs(20)), Verdict::Healthy);
    }

    #[test]
    fn clear_repairs_everything() {
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow::write_outage(SimTime::ZERO));
        assert_ne!(inj.check_write(SimTime::from_secs(1)), Verdict::Healthy);
        inj.clear();
        assert_eq!(inj.check_write(SimTime::from_secs(1)), Verdict::Healthy);
    }
}
