//! The fault plane: deterministic, seed-replayable failure injection.
//!
//! Two fault models compose here:
//!
//! * **Time windows** ([`FailureWindow`]) reproduce the paper's Figure 17:
//!   "We simulate a failure in EBS (similar to [the 2011 outage]) by timing
//!   out writes around t = 4 mins." A window deterministically fails every
//!   covered operation inside `[from, until)` — no randomness is consulted,
//!   so window-only schedules are byte-identical run to run.
//!
//! * **Probabilistic fault specs** ([`FaultSpec`]) generalize the windows
//!   into a per-operation fault plane: inside the spec's active interval
//!   each covered operation draws exactly one number from the injector's
//!   seeded [`SimRng`] and may time out, tear (a write that mutates nothing
//!   but still costs the client its timeout), report a transient
//!   `TierFull`, or suffer a latency spike. Because every draw comes from
//!   one seeded stream in op order, an entire fault schedule replays
//!   byte-identically from its seed (`FailureInjector::set_seed`).
//!
//! The healthy path — no specs installed — draws nothing from the RNG, so
//! enabling the fault plane in the build costs nothing when it is unused.

use crate::clock::{SimDuration, SimTime};
use tiera_support::SimRng;
use tiera_support::sync::{rank, Mutex, RwLock};

/// Which operations a failure window affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Reads fail.
    Reads,
    /// Writes fail (the Figure 17 scenario).
    Writes,
    /// Every operation fails.
    All,
}

impl FailureKind {
    /// Whether this kind covers a write operation.
    pub fn covers_write(self) -> bool {
        matches!(self, FailureKind::Writes | FailureKind::All)
    }

    /// Whether this kind covers a read operation.
    pub fn covers_read(self) -> bool {
        matches!(self, FailureKind::Reads | FailureKind::All)
    }
}

/// A failure window over virtual time: `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureWindow {
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive); `None` means "until further notice".
    pub until: Option<SimTime>,
    /// Affected operations.
    pub kind: FailureKind,
    /// How long a client waits before the operation times out.
    pub timeout: SimDuration,
}

impl FailureWindow {
    /// An open-ended write outage starting at `from` with a default
    /// 5-second client timeout.
    pub fn write_outage(from: SimTime) -> Self {
        Self {
            from,
            until: None,
            kind: FailureKind::Writes,
            timeout: SimDuration::from_secs(5),
        }
    }

    fn covers(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }
}

/// A probabilistic fault description active over `[from, until)`.
///
/// Probabilities are per-operation and mutually exclusive: each covered
/// operation draws one uniform number and lands in at most one fault band
/// (timeout, then torn, then transient-full, then spike, in that fixed
/// order). Read operations only sample the timeout and spike bands — torn
/// writes and `TierFull` are write-path faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Affected operations.
    pub ops: FailureKind,
    /// Start of the faulty interval (inclusive).
    pub from: SimTime,
    /// End of the faulty interval (exclusive); `None` means open-ended.
    pub until: Option<SimTime>,
    /// Probability an operation times out entirely.
    pub error_prob: f64,
    /// Probability a write is torn: the client waits `timeout` and gets an
    /// error, and the tier rolls back any partial mutation.
    pub torn_prob: f64,
    /// Probability a write fails with a transient `TierFull`.
    pub full_prob: f64,
    /// Probability the operation succeeds but takes `spike` extra latency.
    pub spike_prob: f64,
    /// Extra latency charged by a spike.
    pub spike: SimDuration,
    /// Client-observed wait for timed-out and torn operations.
    pub timeout: SimDuration,
}

impl FaultSpec {
    /// A spec with every probability at zero (a no-op until configured via
    /// the builder methods).
    pub fn new(ops: FailureKind, from: SimTime, until: Option<SimTime>) -> Self {
        Self {
            ops,
            from,
            until,
            error_prob: 0.0,
            torn_prob: 0.0,
            full_prob: 0.0,
            spike_prob: 0.0,
            spike: SimDuration::from_millis(200),
            timeout: SimDuration::from_secs(5),
        }
    }

    /// Sets the per-op timeout probability.
    pub fn error(mut self, p: f64) -> Self {
        self.error_prob = p;
        self
    }

    /// Sets the per-write torn-write probability.
    pub fn torn(mut self, p: f64) -> Self {
        self.torn_prob = p;
        self
    }

    /// Sets the per-write transient `TierFull` probability.
    pub fn transient_full(mut self, p: f64) -> Self {
        self.full_prob = p;
        self
    }

    /// Sets the per-op latency-spike probability and magnitude.
    pub fn spikes(mut self, p: f64, extra: SimDuration) -> Self {
        self.spike_prob = p;
        self.spike = extra;
        self
    }

    /// Sets the client timeout charged by timed-out and torn operations.
    pub fn timeout(mut self, d: SimDuration) -> Self {
        self.timeout = d;
        self
    }

    fn covers(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }
}

/// The verdict for one operation at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Operation proceeds normally.
    Healthy,
    /// Operation fails after the given timeout delay.
    TimedOut(SimDuration),
    /// A torn write: the tier must roll back any partial mutation and fail
    /// the operation after the given delay.
    Torn(SimDuration),
    /// A transient out-of-space error (capacity is actually fine).
    TransientFull,
    /// Operation succeeds but suffers the given extra latency.
    Spiked(SimDuration),
}

/// Thread-safe fault plane: deterministic windows plus seeded
/// probabilistic fault specs.
#[derive(Debug)]
pub struct FailureInjector {
    windows: RwLock<Vec<FailureWindow>>,
    specs: RwLock<Vec<FaultSpec>>,
    rng: Mutex<SimRng>,
}

impl Default for FailureInjector {
    fn default() -> Self {
        Self {
            windows: RwLock::named("failure.windows", rank::FAILURE_WINDOWS, Vec::new()),
            specs: RwLock::named("failure.specs", rank::FAILURE_SPECS, Vec::new()),
            rng: Mutex::named("failure.rng", rank::FAILURE_RNG, SimRng::new(0)),
        }
    }
}

impl FailureInjector {
    /// Creates an injector with no scheduled failures.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-seeds the probabilistic draw stream. Call before installing
    /// [`FaultSpec`]s so a failing schedule replays byte-identically.
    pub fn set_seed(&self, seed: u64) {
        *self.rng.lock() = SimRng::new(seed);
    }

    /// Schedules a failure window.
    pub fn schedule(&self, w: FailureWindow) {
        self.windows.write().push(w);
    }

    /// Installs a probabilistic fault spec.
    pub fn install(&self, spec: FaultSpec) {
        self.specs.write().push(spec);
    }

    /// Schedules `cycles` alternating down/up windows starting at `start`
    /// (tier flapping): down for `down`, then up for `up`, repeated.
    pub fn schedule_flap(
        &self,
        start: SimTime,
        down: SimDuration,
        up: SimDuration,
        cycles: u32,
        kind: FailureKind,
        timeout: SimDuration,
    ) {
        let mut at = start;
        let mut windows = self.windows.write();
        for _ in 0..cycles {
            windows.push(FailureWindow {
                from: at,
                until: Some(at + down),
                kind,
                timeout,
            });
            at = at + down + up;
        }
    }

    /// Clears every scheduled window and fault spec (a "repair").
    pub fn clear(&self) {
        self.windows.write().clear();
        self.specs.write().clear();
    }

    /// Verdict for a write at virtual time `now`.
    pub fn check_write(&self, now: SimTime) -> Verdict {
        self.check(now, true)
    }

    /// Verdict for a read at virtual time `now`.
    pub fn check_read(&self, now: SimTime) -> Verdict {
        self.check(now, false)
    }

    fn check(&self, now: SimTime, is_write: bool) -> Verdict {
        {
            let windows = self.windows.read();
            for w in windows.iter() {
                let covered = if is_write {
                    w.kind.covers_write()
                } else {
                    w.kind.covers_read()
                };
                if covered && w.covers(now) {
                    return Verdict::TimedOut(w.timeout);
                }
            }
        }
        let specs = self.specs.read();
        if specs.is_empty() {
            return Verdict::Healthy;
        }
        for s in specs.iter() {
            let covered = if is_write {
                s.ops.covers_write()
            } else {
                s.ops.covers_read()
            };
            if !covered || !s.covers(now) {
                continue;
            }
            // One draw per covering spec per op: the bands partition [0, 1)
            // so the faults are mutually exclusive, and the draw count is a
            // pure function of the op sequence (seed-replayable).
            let x = self.rng.lock().next_f64();
            let mut edge = s.error_prob;
            if x < edge {
                return Verdict::TimedOut(s.timeout);
            }
            if is_write {
                edge += s.torn_prob;
                if x < edge {
                    return Verdict::Torn(s.timeout);
                }
                edge += s.full_prob;
                if x < edge {
                    return Verdict::TransientFull;
                }
            }
            edge += s.spike_prob;
            if x < edge {
                return Verdict::Spiked(s.spike);
            }
        }
        Verdict::Healthy
    }

    /// Whether any window or spec is active at `now`.
    pub fn any_active(&self, now: SimTime) -> bool {
        self.windows.read().iter().any(|w| w.covers(now))
            || self.specs.read().iter().any(|s| s.covers(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_before_window() {
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow::write_outage(SimTime::from_secs(240)));
        assert_eq!(inj.check_write(SimTime::from_secs(239)), Verdict::Healthy);
    }

    #[test]
    fn writes_time_out_inside_window_reads_unaffected() {
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow::write_outage(SimTime::from_secs(240)));
        match inj.check_write(SimTime::from_secs(300)) {
            Verdict::TimedOut(d) => assert_eq!(d, SimDuration::from_secs(5)),
            v => panic!("expected timeout, got {v:?}"),
        }
        assert_eq!(inj.check_read(SimTime::from_secs(300)), Verdict::Healthy);
    }

    #[test]
    fn bounded_window_ends() {
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow {
            from: SimTime::from_secs(10),
            until: Some(SimTime::from_secs(20)),
            kind: FailureKind::All,
            timeout: SimDuration::from_secs(1),
        });
        assert_ne!(inj.check_read(SimTime::from_secs(15)), Verdict::Healthy);
        assert_eq!(inj.check_read(SimTime::from_secs(20)), Verdict::Healthy);
    }

    #[test]
    fn clear_repairs_everything() {
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow::write_outage(SimTime::ZERO));
        inj.install(FaultSpec::new(FailureKind::All, SimTime::ZERO, None).error(1.0));
        assert_ne!(inj.check_write(SimTime::from_secs(1)), Verdict::Healthy);
        inj.clear();
        assert_eq!(inj.check_write(SimTime::from_secs(1)), Verdict::Healthy);
        assert!(!inj.any_active(SimTime::from_secs(1)));
    }

    #[test]
    fn certain_error_spec_times_out_every_op() {
        let inj = FailureInjector::new();
        inj.set_seed(7);
        inj.install(
            FaultSpec::new(FailureKind::All, SimTime::ZERO, None)
                .error(1.0)
                .timeout(SimDuration::from_secs(2)),
        );
        for i in 0..20 {
            assert_eq!(
                inj.check_write(SimTime::from_secs(i)),
                Verdict::TimedOut(SimDuration::from_secs(2))
            );
            assert_eq!(
                inj.check_read(SimTime::from_secs(i)),
                Verdict::TimedOut(SimDuration::from_secs(2))
            );
        }
    }

    #[test]
    fn torn_and_full_bands_apply_to_writes_only() {
        let inj = FailureInjector::new();
        inj.set_seed(11);
        inj.install(
            FaultSpec::new(FailureKind::All, SimTime::ZERO, None)
                .torn(0.5)
                .transient_full(0.5),
        );
        let mut saw_torn = false;
        let mut saw_full = false;
        for i in 0..64 {
            match inj.check_write(SimTime::from_secs(i)) {
                Verdict::Torn(_) => saw_torn = true,
                Verdict::TransientFull => saw_full = true,
                v => panic!("write must tear or report full, got {v:?}"),
            }
            // Reads draw from the same stream but never land in the
            // write-only bands.
            assert_eq!(inj.check_read(SimTime::from_secs(i)), Verdict::Healthy);
        }
        assert!(saw_torn && saw_full);
    }

    #[test]
    fn spike_band_adds_latency_without_failing() {
        let inj = FailureInjector::new();
        inj.set_seed(3);
        inj.install(
            FaultSpec::new(FailureKind::Reads, SimTime::ZERO, None)
                .spikes(1.0, SimDuration::from_millis(300)),
        );
        assert_eq!(
            inj.check_read(SimTime::ZERO),
            Verdict::Spiked(SimDuration::from_millis(300))
        );
        // Writes are not covered by a Reads spec and draw nothing.
        assert_eq!(inj.check_write(SimTime::ZERO), Verdict::Healthy);
    }

    #[test]
    fn spec_draws_replay_identically_from_seed() {
        let run = |seed: u64| {
            let inj = FailureInjector::new();
            inj.set_seed(seed);
            inj.install(
                FaultSpec::new(FailureKind::All, SimTime::ZERO, None)
                    .error(0.2)
                    .torn(0.2)
                    .transient_full(0.2)
                    .spikes(0.2, SimDuration::from_millis(50)),
            );
            (0..200)
                .map(|i| inj.check_write(SimTime::from_millis(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99), "same seed → same verdict stream");
        assert_ne!(run(99), run(100), "different seed → different stream");
    }

    #[test]
    fn healthy_path_draws_no_rng_with_only_windows_installed() {
        // Window-only schedules must stay byte-identical to the pre-fault-
        // plane behavior: verdicts are pure functions of time, no RNG.
        let inj = FailureInjector::new();
        inj.schedule(FailureWindow::write_outage(SimTime::from_secs(100)));
        let before: Vec<Verdict> = (0..50)
            .map(|i| inj.check_write(SimTime::from_secs(i)))
            .collect();
        inj.set_seed(1234); // would shift results if windows consumed draws
        let after: Vec<Verdict> = (0..50)
            .map(|i| inj.check_write(SimTime::from_secs(i)))
            .collect();
        assert_eq!(before, after);
        assert!(before.iter().all(|v| *v == Verdict::Healthy));
    }

    #[test]
    fn flap_schedule_alternates_down_and_up() {
        let inj = FailureInjector::new();
        inj.schedule_flap(
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
            3,
            FailureKind::All,
            SimDuration::from_secs(1),
        );
        // Down: [10,15) [20,25) [30,35); up otherwise.
        for (t, down) in [
            (9, false),
            (10, true),
            (14, true),
            (15, false),
            (22, true),
            (27, false),
            (31, true),
            (35, false),
        ] {
            let v = inj.check_write(SimTime::from_secs(t));
            assert_eq!(v != Verdict::Healthy, down, "t={t}");
        }
    }

    #[test]
    fn spec_interval_is_half_open() {
        let inj = FailureInjector::new();
        inj.set_seed(5);
        inj.install(
            FaultSpec::new(
                FailureKind::Writes,
                SimTime::from_secs(10),
                Some(SimTime::from_secs(20)),
            )
            .error(1.0),
        );
        assert_eq!(inj.check_write(SimTime::from_secs(9)), Verdict::Healthy);
        assert_ne!(inj.check_write(SimTime::from_secs(10)), Verdict::Healthy);
        assert_ne!(inj.check_write(SimTime::from_secs(19)), Verdict::Healthy);
        assert_eq!(inj.check_write(SimTime::from_secs(20)), Verdict::Healthy);
    }
}
