//! # tiera-fs — a POSIX-style file layer over Tiera
//!
//! Paper §3/§4.1.1: "Since we need to provide a POSIX interface to MySQL,
//! we used the FUSE filesystem interface we developed to interface MySQL
//! with the Tiera instances. The FUSE filesystem we developed splits the
//! database files into 4 KB objects (OS page size) and stores them in
//! Tiera."
//!
//! [`TieraFs`] is that layer, minus the kernel: byte-addressed files are
//! chunked into fixed-size objects (`<path>#<chunk>`), reads and writes do
//! the chunk-aligned read-modify-write dance, and every chunk access goes
//! through the instance's PUT/GET path — so the instance's policy (caching,
//! write-back, dedup) transparently applies to file data, exactly as it did
//! for MySQL in the paper.
//!
//! Like the paper's driver, file lengths live in a local table (the FUSE
//! process's in-memory inode map) that can be persisted as a manifest
//! object ([`TieraFs::flush_manifest`] / [`TieraFs::recover`], the role of
//! S3FS's bucket-resident metadata); object data is entirely in the
//! instance. When the instance's policy stores via `storeOnce`, chunk
//! writes deduplicate transparently (the S3FS-like setup of Figure 12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use tiera_support::Bytes;
use tiera_support::sync::{rank, RwLock};

use tiera_core::error::{Result, TieraError};
use tiera_core::instance::Instance;
use tiera_sim::{SimDuration, SimTime};

/// Default chunk size: the OS page size the paper used.
pub const DEFAULT_CHUNK: usize = 4096;

/// Key of the manifest object holding the serialized file table.
pub const MANIFEST_KEY: &str = "__tierafs_manifest";

/// A chunking filesystem facade over a Tiera instance.
pub struct TieraFs {
    instance: Arc<Instance>,
    chunk_size: usize,
    files: RwLock<HashMap<String, u64>>, // path → length in bytes
}

/// Result of a filesystem operation: payload plus charged virtual latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsReceipt<T> {
    /// Operation result.
    pub value: T,
    /// Total storage latency charged.
    pub latency: SimDuration,
}

impl TieraFs {
    /// Creates a filesystem over `instance` with 4 KB chunks.
    pub fn new(instance: Arc<Instance>) -> Self {
        Self::with_chunk_size(instance, DEFAULT_CHUNK)
    }

    /// Creates a filesystem with an explicit chunk size.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn with_chunk_size(instance: Arc<Instance>, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            instance,
            chunk_size,
            files: RwLock::named("fs.files", rank::FS_FILES, HashMap::new()),
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Arc<Instance> {
        &self.instance
    }

    /// The chunk size in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn chunk_key(path: &str, idx: u64) -> String {
        format!("{path}#{idx}")
    }

    /// Creates an empty file (truncates if it exists).
    pub fn create(&self, path: &str, now: SimTime) -> Result<FsReceipt<()>> {
        let mut latency = SimDuration::ZERO;
        if let Some(len) = self.files.read().get(path).copied() {
            latency += self.remove_chunks(path, len, now)?;
        }
        self.files.write().insert(path.to_string(), 0);
        Ok(FsReceipt { value: (), latency })
    }

    /// Whether the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// File length in bytes.
    pub fn len(&self, path: &str) -> Result<u64> {
        self.files
            .read()
            .get(path)
            .copied()
            .ok_or_else(|| TieraError::NoSuchObject(path.to_string()))
    }

    /// Lists files whose paths start with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .files
            .read()
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        v.sort_unstable();
        v
    }

    /// Writes `data` at `offset`, extending the file as needed
    /// (chunk-aligned read-modify-write).
    pub fn write(&self, path: &str, offset: u64, data: &[u8], now: SimTime) -> Result<FsReceipt<usize>> {
        if !self.exists(path) {
            self.files.write().entry(path.to_string()).or_insert(0);
        }
        let old_len = self.len(path)?;
        let mut latency = SimDuration::ZERO;
        let cs = self.chunk_size as u64;
        let mut pos = 0usize;
        let mut t = now;

        while pos < data.len() {
            let abs = offset + pos as u64;
            let chunk_idx = abs / cs;
            let within = (abs % cs) as usize;
            let take = (self.chunk_size - within).min(data.len() - pos);
            let key = Self::chunk_key(path, chunk_idx);

            let full_overwrite = within == 0 && take == self.chunk_size;
            let chunk_exists = chunk_idx * cs < old_len;
            let payload: Bytes = if full_overwrite || !chunk_exists {
                if within == 0 && take == self.chunk_size {
                    Bytes::copy_from_slice(&data[pos..pos + take])
                } else {
                    // New chunk written at an offset: zero-fill the gap.
                    let mut buf = vec![0u8; within + take];
                    buf[within..].copy_from_slice(&data[pos..pos + take]);
                    Bytes::from(buf)
                }
            } else {
                // Read-modify-write of an existing chunk. A hole in a
                // sparse file reads as a zero chunk.
                let mut buf = match self.instance.get(key.as_str(), t) {
                    Ok((old, receipt)) => {
                        t += receipt.latency;
                        latency += receipt.latency;
                        old.to_vec()
                    }
                    Err(TieraError::NoSuchObject(_)) => Vec::new(),
                    Err(e) => return Err(e),
                };
                if buf.len() < within + take {
                    buf.resize(within + take, 0);
                }
                buf[within..within + take].copy_from_slice(&data[pos..pos + take]);
                Bytes::from(buf)
            };

            let receipt = self.instance.put(key.as_str(), payload, t)?;
            t += receipt.latency;
            latency += receipt.latency;
            pos += take;
        }

        let end = offset + data.len() as u64;
        {
            let mut files = self.files.write();
            let len = files.get_mut(path).expect("file created above");
            if end > *len {
                *len = end;
            }
        }
        Ok(FsReceipt {
            value: data.len(),
            latency,
        })
    }

    /// Appends `data` to the end of the file.
    pub fn append(&self, path: &str, data: &[u8], now: SimTime) -> Result<FsReceipt<usize>> {
        let offset = self.files.read().get(path).copied().unwrap_or(0);
        self.write(path, offset, data, now)
    }

    /// Reads up to `len` bytes from `offset`. Short reads happen only at
    /// end-of-file.
    pub fn read(&self, path: &str, offset: u64, len: usize, now: SimTime) -> Result<FsReceipt<Vec<u8>>> {
        let file_len = self.len(path)?;
        if offset >= file_len {
            return Ok(FsReceipt {
                value: Vec::new(),
                latency: SimDuration::ZERO,
            });
        }
        let want = len.min((file_len - offset) as usize);
        let cs = self.chunk_size as u64;
        let mut out = Vec::with_capacity(want);
        let mut latency = SimDuration::ZERO;
        let mut t = now;
        let mut pos = 0usize;
        while pos < want {
            let abs = offset + pos as u64;
            let chunk_idx = abs / cs;
            let within = (abs % cs) as usize;
            let take = (self.chunk_size - within).min(want - pos);
            let key = Self::chunk_key(path, chunk_idx);
            match self.instance.get(key.as_str(), t) {
                Ok((chunk, receipt)) => {
                    t += receipt.latency;
                    latency += receipt.latency;
                    let end = (within + take).min(chunk.len());
                    if within < chunk.len() {
                        out.extend_from_slice(&chunk[within..end]);
                    }
                    // Sparse region beyond stored chunk bytes reads as zeros.
                    out.resize(pos + take, 0);
                }
                Err(TieraError::NoSuchObject(_)) => {
                    // Hole in a sparse file.
                    out.resize(pos + take, 0);
                }
                Err(e) => return Err(e),
            }
            pos += take;
        }
        Ok(FsReceipt { value: out, latency })
    }

    /// Reads the whole file.
    pub fn read_all(&self, path: &str, now: SimTime) -> Result<FsReceipt<Vec<u8>>> {
        let len = self.len(path)? as usize;
        self.read(path, 0, len, now)
    }

    /// Removes a file and its chunks.
    pub fn unlink(&self, path: &str, now: SimTime) -> Result<FsReceipt<()>> {
        let len = self
            .files
            .write()
            .remove(path)
            .ok_or_else(|| TieraError::NoSuchObject(path.to_string()))?;
        let latency = self.remove_chunks(path, len, now)?;
        Ok(FsReceipt { value: (), latency })
    }

    /// Renames a file (metadata-only: chunks are re-keyed through the
    /// instance, charging copy latency — renames of big files are not free,
    /// matching object-store semantics).
    pub fn rename(&self, from: &str, to: &str, now: SimTime) -> Result<FsReceipt<()>> {
        let len = self.len(from)?;
        let data = self.read_all(from, now)?;
        let mut latency = data.latency;
        let mut t = now + latency;
        if self.exists(to) {
            let r = self.unlink(to, t)?;
            latency += r.latency;
            t += r.latency;
        }
        self.create(to, t)?;
        let w = self.write(to, 0, &data.value, t)?;
        latency += w.latency;
        t += w.latency;
        let u = self.unlink(from, t)?;
        latency += u.latency;
        debug_assert_eq!(self.len(to)?, len);
        Ok(FsReceipt { value: (), latency })
    }

    /// Truncates the file to `new_len` bytes.
    pub fn truncate(&self, path: &str, new_len: u64, now: SimTime) -> Result<FsReceipt<()>> {
        let old_len = self.len(path)?;
        let mut latency = SimDuration::ZERO;
        if new_len < old_len {
            let cs = self.chunk_size as u64;
            let first_dead = new_len.div_ceil(cs);
            let last = old_len.div_ceil(cs);
            let mut t = now;
            for idx in first_dead..last {
                let key = Self::chunk_key(path, idx);
                if self.instance.contains(key.as_str()) {
                    let d = self.instance.delete(key.as_str(), t)?;
                    t += d;
                    latency += d;
                }
            }
        }
        self.files.write().insert(path.to_string(), new_len);
        Ok(FsReceipt { value: (), latency })
    }

    /// Persists the file table as a manifest object in the instance, so a
    /// new `TieraFs` over the same (durable) tiers can recover it — the
    /// role S3FS's bucket-resident metadata plays.
    pub fn flush_manifest(&self, now: SimTime) -> Result<SimDuration> {
        let files = self.files.read();
        let mut buf = Vec::with_capacity(files.len() * 32);
        buf.extend_from_slice(&(files.len() as u32).to_le_bytes());
        let mut entries: Vec<(&String, &u64)> = files.iter().collect();
        entries.sort_unstable();
        for (path, len) in entries {
            buf.extend_from_slice(&(path.len() as u32).to_le_bytes());
            buf.extend_from_slice(path.as_bytes());
            buf.extend_from_slice(&len.to_le_bytes());
        }
        drop(files);
        let receipt = self.instance.put(MANIFEST_KEY, buf, now)?;
        Ok(receipt.latency)
    }

    /// Builds a filesystem over `instance`, recovering the file table from
    /// a previously flushed manifest.
    pub fn recover(instance: Arc<Instance>, now: SimTime) -> Result<Self> {
        let fs = Self::new(Arc::clone(&instance));
        let (data, _) = instance.get(MANIFEST_KEY, now)?;
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > data.len() {
                return Err(TieraError::Codec("manifest truncated".into()));
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut files = HashMap::with_capacity(count);
        for _ in 0..count {
            let plen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let path = String::from_utf8(take(&mut pos, plen)?.to_vec())
                .map_err(|_| TieraError::Codec("manifest path not utf-8".into()))?;
            let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            files.insert(path, len);
        }
        *fs.files.write() = files;
        Ok(fs)
    }

    fn remove_chunks(&self, path: &str, len: u64, now: SimTime) -> Result<SimDuration> {
        let cs = self.chunk_size as u64;
        let chunks = len.div_ceil(cs);
        let mut latency = SimDuration::ZERO;
        let mut t = now;
        for idx in 0..chunks {
            let key = Self::chunk_key(path, idx);
            if self.instance.contains(key.as_str()) {
                let d = self.instance.delete(key.as_str(), t)?;
                t += d;
                latency += d;
            }
        }
        Ok(latency)
    }
}

/// A POSIX-style file handle: a cursor over a [`TieraFs`] file, tracking
/// its own virtual time so sequential IO charges accumulate naturally.
pub struct File<'fs> {
    fs: &'fs TieraFs,
    path: String,
    pos: u64,
    now: SimTime,
}

/// Seek origins (a miniature `std::io::SeekFrom`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    /// From the start of the file.
    Start(u64),
    /// From the end of the file (negative offsets seek backwards).
    End(i64),
    /// From the current position.
    Current(i64),
}

impl TieraFs {
    /// Opens an existing file at `path`, positioned at the start.
    pub fn open(&self, path: &str, now: SimTime) -> Result<File<'_>> {
        if !self.exists(path) {
            return Err(TieraError::NoSuchObject(path.to_string()));
        }
        Ok(File {
            fs: self,
            path: path.to_string(),
            pos: 0,
            now,
        })
    }

    /// Creates (truncating) and opens a file.
    pub fn create_open(&self, path: &str, now: SimTime) -> Result<File<'_>> {
        let r = self.create(path, now)?;
        Ok(File {
            fs: self,
            path: path.to_string(),
            pos: 0,
            now: now + r.latency,
        })
    }
}

impl File<'_> {
    /// Current cursor position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The handle's current virtual time (start time + charged IO).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the cursor; returns the new position.
    pub fn seek(&mut self, from: SeekFrom) -> Result<u64> {
        let len = self.fs.len(&self.path)? as i64;
        let target = match from {
            SeekFrom::Start(n) => n as i64,
            SeekFrom::End(off) => len + off,
            SeekFrom::Current(off) => self.pos as i64 + off,
        };
        if target < 0 {
            return Err(TieraError::InvalidConfig(format!(
                "seek before start of {}",
                self.path
            )));
        }
        self.pos = target as u64;
        Ok(self.pos)
    }

    /// Reads up to `len` bytes at the cursor, advancing it.
    pub fn read(&mut self, len: usize) -> Result<Vec<u8>> {
        let r = self.fs.read(&self.path, self.pos, len, self.now)?;
        self.pos += r.value.len() as u64;
        self.now += r.latency;
        Ok(r.value)
    }

    /// Writes at the cursor, advancing it.
    pub fn write(&mut self, data: &[u8]) -> Result<usize> {
        let r = self.fs.write(&self.path, self.pos, data, self.now)?;
        self.pos += r.value as u64;
        self.now += r.latency;
        Ok(r.value)
    }

    /// Reads from the cursor to end-of-file.
    pub fn read_to_end(&mut self) -> Result<Vec<u8>> {
        let len = self.fs.len(&self.path)?.saturating_sub(self.pos) as usize;
        self.read(len)
    }
}

impl std::fmt::Debug for File<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("File")
            .field("path", &self.path)
            .field("pos", &self.pos)
            .finish()
    }
}

impl std::fmt::Debug for TieraFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieraFs")
            .field("files", &self.files.read().len())
            .field("chunk_size", &self.chunk_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiera_core::prelude::*;
    use tiera_sim::SimEnv;

    const T0: SimTime = SimTime::ZERO;

    fn fs() -> TieraFs {
        let inst = InstanceBuilder::new("fs", SimEnv::new(9))
            .tier(MemTier::with_capacity("t1", 64 << 20))
            .build()
            .unwrap();
        TieraFs::new(inst)
    }

    #[test]
    fn write_read_roundtrip_within_chunk() {
        let fs = fs();
        fs.create("/db/file", T0).unwrap();
        fs.write("/db/file", 0, b"hello world", T0).unwrap();
        let r = fs.read("/db/file", 0, 11, T0).unwrap();
        assert_eq!(r.value, b"hello world");
        assert_eq!(fs.len("/db/file").unwrap(), 11);
    }

    #[test]
    fn write_spanning_chunk_boundaries() {
        let fs = fs();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        fs.create("/big", T0).unwrap();
        // Write at an unaligned offset spanning three chunks.
        fs.write("/big", 3000, &data, T0).unwrap();
        let r = fs.read("/big", 3000, data.len(), T0).unwrap();
        assert_eq!(r.value, data);
        // The zero-filled prefix reads back as zeros.
        let prefix = fs.read("/big", 0, 3000, T0).unwrap();
        assert!(prefix.value.iter().all(|&b| b == 0));
        assert_eq!(fs.len("/big").unwrap(), 13_000);
    }

    #[test]
    fn partial_overwrite_preserves_neighbors() {
        let fs = fs();
        fs.create("/f", T0).unwrap();
        fs.write("/f", 0, &[0xAA; 8192], T0).unwrap();
        fs.write("/f", 4000, &[0xBB; 200], T0).unwrap();
        let r = fs.read_all("/f", T0).unwrap().value;
        assert_eq!(r.len(), 8192);
        assert!(r[..4000].iter().all(|&b| b == 0xAA));
        assert!(r[4000..4200].iter().all(|&b| b == 0xBB));
        assert!(r[4200..].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn append_grows_file() {
        let fs = fs();
        fs.create("/log", T0).unwrap();
        for i in 0..100u32 {
            fs.append("/log", format!("entry-{i};").as_bytes(), T0).unwrap();
        }
        let content = String::from_utf8(fs.read_all("/log", T0).unwrap().value).unwrap();
        assert!(content.starts_with("entry-0;entry-1;"));
        assert!(content.ends_with("entry-99;"));
    }

    #[test]
    fn reads_past_eof_are_short() {
        let fs = fs();
        fs.create("/s", T0).unwrap();
        fs.write("/s", 0, b"abc", T0).unwrap();
        assert_eq!(fs.read("/s", 1, 100, T0).unwrap().value, b"bc");
        assert!(fs.read("/s", 10, 4, T0).unwrap().value.is_empty());
    }

    #[test]
    fn unlink_removes_chunks_from_instance() {
        let fs = fs();
        fs.create("/gone", T0).unwrap();
        fs.write("/gone", 0, &[1u8; 12_000], T0).unwrap();
        assert!(fs.instance().contains("/gone#0"));
        fs.unlink("/gone", T0).unwrap();
        assert!(!fs.exists("/gone"));
        for idx in 0..3 {
            assert!(
                !fs.instance().contains(format!("/gone#{idx}").as_str()),
                "chunk {idx} must be deleted"
            );
        }
        assert!(fs.unlink("/gone", T0).is_err());
    }

    #[test]
    fn rename_moves_content() {
        let fs = fs();
        fs.create("/old", T0).unwrap();
        fs.write("/old", 0, b"content", T0).unwrap();
        fs.rename("/old", "/new", T0).unwrap();
        assert!(!fs.exists("/old"));
        assert_eq!(fs.read_all("/new", T0).unwrap().value, b"content");
    }

    #[test]
    fn truncate_shrinks_and_frees() {
        let fs = fs();
        fs.create("/t", T0).unwrap();
        fs.write("/t", 0, &[7u8; 10_000], T0).unwrap();
        fs.truncate("/t", 4096, T0).unwrap();
        assert_eq!(fs.len("/t").unwrap(), 4096);
        assert!(!fs.instance().contains("/t#1"));
        assert!(!fs.instance().contains("/t#2"));
        let r = fs.read_all("/t", T0).unwrap().value;
        assert_eq!(r.len(), 4096);
        assert!(r.iter().all(|&b| b == 7));
    }

    #[test]
    fn list_by_prefix() {
        let fs = fs();
        for p in ["/db/a", "/db/b", "/tmp/x"] {
            fs.create(p, T0).unwrap();
        }
        assert_eq!(fs.list("/db/"), vec!["/db/a", "/db/b"]);
    }

    #[test]
    fn create_truncates_existing() {
        let fs = fs();
        fs.create("/f", T0).unwrap();
        fs.write("/f", 0, &[1u8; 5000], T0).unwrap();
        fs.create("/f", T0).unwrap();
        assert_eq!(fs.len("/f").unwrap(), 0);
        assert!(!fs.instance().contains("/f#0"));
    }

    #[test]
    fn file_handle_seek_read_write() {
        let fs = fs();
        let mut f = fs.create_open("/h", T0).unwrap();
        f.write(b"hello world").unwrap();
        assert_eq!(f.position(), 11);
        f.seek(SeekFrom::Start(6)).unwrap();
        assert_eq!(f.read(5).unwrap(), b"world");
        f.seek(SeekFrom::End(-5)).unwrap();
        f.write(b"earth").unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        assert_eq!(f.read_to_end().unwrap(), b"hello earth");
        // Relative seeks and bounds.
        f.seek(SeekFrom::Start(2)).unwrap();
        f.seek(SeekFrom::Current(3)).unwrap();
        assert_eq!(f.position(), 5);
        assert!(f.seek(SeekFrom::Current(-100)).is_err());
        // Opening a missing file fails; opening an existing one works.
        assert!(fs.open("/missing", T0).is_err());
        let mut g = fs.open("/h", T0).unwrap();
        assert_eq!(g.read(5).unwrap(), b"hello");
    }

    #[test]
    fn manifest_flush_and_recover() {
        let inst = InstanceBuilder::new("fs-manifest", SimEnv::new(10))
            .tier(MemTier::with_capacity("t1", 64 << 20))
            .build()
            .unwrap();
        let fs = TieraFs::new(Arc::clone(&inst));
        fs.create("/a", T0).unwrap();
        fs.write("/a", 0, b"hello", T0).unwrap();
        fs.create("/b/nested", T0).unwrap();
        fs.write("/b/nested", 0, &[7u8; 9000], T0).unwrap();
        fs.flush_manifest(T0).unwrap();

        // A fresh filesystem over the same instance recovers everything.
        let fs2 = TieraFs::recover(Arc::clone(&inst), T0).unwrap();
        assert_eq!(fs2.len("/a").unwrap(), 5);
        assert_eq!(fs2.len("/b/nested").unwrap(), 9000);
        assert_eq!(fs2.read_all("/a", T0).unwrap().value, b"hello");
        assert_eq!(fs2.list("/"), vec!["/a", "/b/nested"]);
        // Without a manifest, recovery reports the missing object.
        let empty = InstanceBuilder::new("no-manifest", SimEnv::new(11))
            .tier(MemTier::with_capacity("t1", 1 << 20))
            .build()
            .unwrap();
        assert!(TieraFs::recover(empty, T0).is_err());
    }

    #[test]
    fn latency_accumulates_across_chunks() {
        // With a latency-free MemTier latency is zero; use the receipt shape
        // to confirm accounting plumbs through.
        let fs = fs();
        fs.create("/f", T0).unwrap();
        let w = fs.write("/f", 0, &[0u8; 8192], T0).unwrap();
        assert_eq!(w.value, 8192);
        assert_eq!(w.latency, SimDuration::ZERO);
    }

    #[test]
    fn prop_random_writes_match_model() {
        use tiera_support::prop::gen;
        tiera_support::prop_check!(cases = 16, |rng| {
            let ops = gen::vec_of(rng, 1..25, |rng| {
                (rng.next_below(20_000), gen::byte_vec(rng, 1..3000))
            });
            let fs = fs();
            fs.create("/m", T0).unwrap();
            let mut model: Vec<u8> = Vec::new();
            for (offset, data) in &ops {
                fs.write("/m", *offset, data, T0).unwrap();
                let end = *offset as usize + data.len();
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[*offset as usize..end].copy_from_slice(data);
            }
            let got = fs.read_all("/m", T0).unwrap().value;
            assert_eq!(got, model);
        });
    }
}
