//! Regression tests: the registry's dedup-leaf path (`storeOnce`, which
//! content-addresses *logical* objects and skips tier writes for known
//! digests) must compose with [`DedupTier`] (which content-addresses
//! *physical* payloads inside one tier). Both layers key blobs by
//! `sha256:<hex>`; stacking them must neither double-count bytes nor
//! desynchronize the registry's incremental aggregates from a full
//! recount.

use std::sync::Arc;

use tiera_core::event::{ActionOp, EventKind};
use tiera_core::prelude::*;
use tiera_core::tier::TierTraits;
use tiera_sim::{SimEnv, StorageClass};
use tiera_support::Bytes;
use tiera_tierx::DedupTier;

const T0: SimTime = SimTime::ZERO;

/// A durable in-memory tier wrapped in a `DedupTier`, plus the wrapper
/// handle for white-box assertions.
fn dedup_durable(name: &str, cap: u64) -> Arc<DedupTier> {
    DedupTier::new(MemTier::with_traits(
        name,
        cap,
        TierTraits {
            durable: true,
            availability_zone: "zone-a".into(),
            class: StorageClass::BlockStore,
        },
    ))
}

fn store_once_instance(seed: u64) -> (Arc<Instance>, Arc<DedupTier>) {
    let tier = dedup_durable("t", 1 << 20);
    let inst = InstanceBuilder::new("dd-compose", SimEnv::new(seed))
        .tier_handle(tier.clone())
        .rule(
            Rule::on(EventKind::action(ActionOp::Put))
                .respond(ResponseSpec::store_once(Selector::Inserted, ["t"])),
        )
        .build()
        .unwrap();
    (inst, tier)
}

/// storeOnce over a dedup'd tier stores each distinct payload exactly
/// once: the registry's digest leaf elides the duplicate tier writes, and
/// the bytes that do land are not counted twice anywhere. Incremental
/// aggregates stay equal to a full recount with the wrapper in the chain.
#[test]
fn store_once_over_dedup_tier_does_not_double_count() {
    let (inst, tier) = store_once_instance(41);
    let payload = vec![0xA5u8; 4096];

    for key in ["a", "b", "c"] {
        inst.put(key, Bytes::from(payload.clone()), T0).unwrap();
    }
    inst.put("d", Bytes::from(vec![0x5Au8; 2048]), T0).unwrap();

    // Registry-level dedup already elided the duplicate writes, so the
    // wrapper saw each distinct payload once: two unique blobs, no
    // wrapper-level hits, physical == logical at this layer.
    let profile = tier.capacity_profile().unwrap();
    assert_eq!(profile.unique_blobs, 2);
    assert_eq!(profile.dedup_hits, 0);
    assert_eq!(profile.logical_bytes, 4096 + 2048);
    assert_eq!(inst.tier("t").unwrap().used(), 4096 + 2048);
    // One tier PUT per distinct content, not per logical key.
    assert_eq!(inst.tier("t").unwrap().request_counts().puts, 2);

    // Every logical key reads back byte-identically through both layers.
    for key in ["a", "b", "c"] {
        let (data, _) = inst.get(key, SimTime::from_secs(1)).unwrap();
        assert_eq!(&data[..], &payload[..], "{key}");
    }

    // The incremental aggregates match an O(n) recount, and the wrapper's
    // refcount map is internally consistent.
    assert_eq!(
        inst.registry().aggregates("t"),
        inst.registry().recount_aggregates("t")
    );
    assert_eq!(tier.check_integrity(), Vec::<String>::new());
}

/// Deleting logical references reclaims physical space only when the
/// *registry's* refcount reaches zero — and that final release flows
/// through the wrapper's own refcounting down to the backing tier.
#[test]
fn last_reference_delete_reclaims_through_both_layers() {
    let (inst, tier) = store_once_instance(42);
    let payload = vec![0xC3u8; 1024];
    inst.put("x", Bytes::from(payload.clone()), T0).unwrap();
    inst.put("y", Bytes::from(payload.clone()), T0).unwrap();

    // Dropping one of two references frees nothing.
    inst.delete("x", SimTime::from_secs(1)).unwrap();
    assert_eq!(inst.tier("t").unwrap().used(), 1024);
    let (data, _) = inst.get("y", SimTime::from_secs(2)).unwrap();
    assert_eq!(&data[..], &payload[..]);

    // Dropping the last reference reclaims all the way down.
    inst.delete("y", SimTime::from_secs(3)).unwrap();
    assert_eq!(inst.tier("t").unwrap().used(), 0);
    let profile = tier.capacity_profile().unwrap();
    assert_eq!(profile.unique_blobs, 0);
    assert_eq!(profile.logical_bytes, 0);
    assert_eq!(
        inst.registry().aggregates("t"),
        inst.registry().recount_aggregates("t")
    );
    assert_eq!(tier.check_integrity(), Vec::<String>::new());
}

/// A plain `store` rule (no registry dedup) over the same wrapped tier:
/// here the *wrapper* is the layer that collapses duplicates, and the
/// registry's per-object accounting still reconciles with a recount even
/// though the tier's physical usage is smaller than the logical sum.
#[test]
fn plain_store_lets_the_wrapper_do_the_deduplication() {
    let tier = dedup_durable("t", 1 << 20);
    let inst = InstanceBuilder::new("dd-plain", SimEnv::new(43))
        .tier_handle(tier.clone())
        .rule(
            Rule::on(EventKind::action(ActionOp::Put))
                .respond(ResponseSpec::store(Selector::Inserted, ["t"])),
        )
        .build()
        .unwrap();
    let payload = vec![0x96u8; 512];
    for key in ["p", "q", "r"] {
        inst.put(key, Bytes::from(payload.clone()), T0).unwrap();
    }

    let profile = tier.capacity_profile().unwrap();
    assert_eq!(profile.unique_blobs, 1);
    assert_eq!(profile.dedup_hits, 2);
    assert_eq!(profile.logical_bytes, 3 * 512);
    assert_eq!(inst.tier("t").unwrap().used(), 512);
    for key in ["p", "q", "r"] {
        let (data, _) = inst.get(key, SimTime::from_secs(1)).unwrap();
        assert_eq!(&data[..], &payload[..], "{key}");
    }
    assert_eq!(
        inst.registry().aggregates("t"),
        inst.registry().recount_aggregates("t")
    );
    assert_eq!(tier.check_integrity(), Vec::<String>::new());
}
