//! The stored-object header for [`CompressedTier`].
//!
//! Every payload a `CompressedTier` writes into its backing tier is
//! prefixed with a fixed 6-byte header so reads can tell how to undo the
//! transform and verify integrity:
//!
//! ```text
//! byte 0      MAGIC (0xC7)
//! byte 1      flags (bit 0: body is an lzss stream; else raw payload)
//! bytes 2..6  crc32 of the *logical* payload, little-endian
//! bytes 6..   body
//! ```
//!
//! The raw-body form is the incompressibility escape hatch: when lzss
//! would expand a payload the wrapper stores it verbatim and records that
//! in the flags byte.
//!
//! This module is on `tiera-analyze`'s panic-free list (A004): decode
//! consumes bytes that may have been corrupted in the backing store, so
//! every malformed input must surface as [`HeaderError`], never a panic.
//!
//! [`CompressedTier`]: crate::CompressedTier

/// First stored byte of every wrapped object.
pub const MAGIC: u8 = 0xC7;

/// Flags bit: the body is an lzss stream (clear = raw payload).
pub const FLAG_COMPRESSED: u8 = 0b0000_0001;

/// Stored bytes preceding the body.
pub const HEADER_LEN: usize = 6;

/// Decoded header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Whether the body is an lzss stream.
    pub compressed: bool,
    /// crc32 of the logical (pre-transform) payload.
    pub crc32: u32,
}

/// Why a stored object's header failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Fewer than [`HEADER_LEN`] stored bytes.
    Truncated,
    /// First byte is not [`MAGIC`].
    BadMagic(u8),
    /// Flags byte has bits outside [`FLAG_COMPRESSED`] set.
    UnknownFlags(u8),
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::Truncated => write!(f, "stored object shorter than its header"),
            HeaderError::BadMagic(b) => write!(f, "bad object header magic {b:#04x}"),
            HeaderError::UnknownFlags(b) => write!(f, "unknown object header flags {b:#04x}"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// Serializes a header followed by `body`.
pub fn encode(compressed: bool, crc32: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.push(MAGIC);
    out.push(if compressed { FLAG_COMPRESSED } else { 0 });
    out.extend_from_slice(&crc32.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits stored bytes into the decoded [`Header`] and the body.
pub fn decode(stored: &[u8]) -> Result<(Header, &[u8]), HeaderError> {
    let (magic, rest) = stored.split_first().ok_or(HeaderError::Truncated)?;
    if *magic != MAGIC {
        return Err(HeaderError::BadMagic(*magic));
    }
    let (flags, rest) = rest.split_first().ok_or(HeaderError::Truncated)?;
    if *flags & !FLAG_COMPRESSED != 0 {
        return Err(HeaderError::UnknownFlags(*flags));
    }
    let crc_bytes = rest.get(..4).ok_or(HeaderError::Truncated)?;
    let mut crc = [0u8; 4];
    crc.copy_from_slice(crc_bytes);
    let body = rest.get(4..).ok_or(HeaderError::Truncated)?;
    Ok((
        Header {
            compressed: *flags & FLAG_COMPRESSED != 0,
            crc32: u32::from_le_bytes(crc),
        },
        body,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_both_forms() {
        for compressed in [false, true] {
            let stored = encode(compressed, 0xDEADBEEF, b"body bytes");
            let (h, body) = decode(&stored).unwrap();
            assert_eq!(h.compressed, compressed);
            assert_eq!(h.crc32, 0xDEADBEEF);
            assert_eq!(body, b"body bytes");
        }
    }

    #[test]
    fn empty_body_roundtrips() {
        let stored = encode(true, 7, b"");
        assert_eq!(stored.len(), HEADER_LEN);
        let (h, body) = decode(&stored).unwrap();
        assert!(h.compressed);
        assert!(body.is_empty());
    }

    #[test]
    fn truncation_at_every_prefix_is_rejected() {
        let stored = encode(true, 0x01020304, b"x");
        for cut in 0..HEADER_LEN {
            assert_eq!(decode(&stored[..cut]), Err(HeaderError::Truncated), "cut {cut}");
        }
        // Exactly HEADER_LEN bytes is a valid empty body.
        assert!(decode(&stored[..HEADER_LEN]).is_ok());
    }

    #[test]
    fn bad_magic_and_flags_rejected() {
        let mut stored = encode(false, 0, b"y");
        stored[0] ^= 0xFF;
        assert!(matches!(decode(&stored), Err(HeaderError::BadMagic(_))));
        let mut stored = encode(false, 0, b"y");
        stored[1] = 0x80;
        assert!(matches!(decode(&stored), Err(HeaderError::UnknownFlags(0x80))));
    }
}
