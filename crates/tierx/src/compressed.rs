//! Transparent lzss compression over any tier.

use std::collections::HashMap;
use std::sync::Arc;

use tiera_codec::{crc32, lzss};
use tiera_core::error::{Result, TieraError};
use tiera_core::object::ObjectKey;
use tiera_core::tier::{CapacityProfile, OpReceipt, RequestCounts, Tier, TierHandle, TierTraits};
use tiera_sim::SimTime;
use tiera_support::sync::{rank, Mutex};
use tiera_support::Bytes;

use crate::header;

/// A [`Tier`]-transparent wrapper that lzss-compresses every payload on
/// write and decompresses (with crc32 verification) on read.
///
/// Stored objects carry the [`crate::header`] prefix. Payloads that lzss
/// would *expand* — already-compressed or high-entropy data — are stored
/// raw instead, flagged in the header, so physical usage never exceeds
/// logical usage by more than [`header::HEADER_LEN`] per object.
///
/// The wrapper keeps a per-key ledger of logical and physical sizes so
/// [`Tier::capacity_profile`] can report the effective capacity
/// multiplier; `used()`, `capacity()`, cost, and latency all delegate to
/// the inner tier (the backing store sees only the transformed bytes).
pub struct CompressedTier {
    inner: TierHandle,
    state: Mutex<CompressState>,
}

#[derive(Default)]
struct CompressState {
    /// Per-key `(logical, physical, stored_raw)`.
    ledger: HashMap<ObjectKey, Entry>,
    logical_bytes: u64,
    physical_bytes: u64,
    raw_fallback: u64,
}

#[derive(Clone, Copy)]
struct Entry {
    logical: u64,
    physical: u64,
    raw: bool,
}

impl CompressedTier {
    /// Wraps `inner`; all traffic through the handle is transparently
    /// compressed.
    pub fn new(inner: TierHandle) -> Arc<Self> {
        Arc::new(Self {
            inner,
            state: Mutex::named("tierx.compress", rank::TIERX_COMPRESS, CompressState::default()),
        })
    }

    /// The wrapped tier.
    pub fn inner(&self) -> &TierHandle {
        &self.inner
    }

    fn remove_entry(st: &mut CompressState, key: &ObjectKey) {
        if let Some(old) = st.ledger.remove(key) {
            st.logical_bytes -= old.logical;
            st.physical_bytes -= old.physical;
            if old.raw {
                st.raw_fallback -= 1;
            }
        }
    }
}

impl Tier for CompressedTier {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tier_traits(&self) -> TierTraits {
        self.inner.tier_traits()
    }

    fn capacity(&self, now: SimTime) -> u64 {
        self.inner.capacity(now)
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn put(&self, key: &ObjectKey, data: Bytes, now: SimTime) -> Result<OpReceipt> {
        let raw = data.as_slice();
        let crc = crc32::checksum(raw);
        let compressed = lzss::compress(raw);
        // Escape hatch: store raw when compression does not shrink the
        // payload (the header is paid either way).
        let use_compressed = compressed.len() < raw.len();
        let stored = if use_compressed {
            Bytes::from(header::encode(true, crc, &compressed))
        } else {
            Bytes::from(header::encode(false, crc, raw))
        };
        let physical = stored.len() as u64;

        // Hold the ledger lock across the inner put so the ledger can
        // never disagree with the backing store; the lock ranks below
        // every inner tier lock (see `rank::TIERX_COMPRESS`).
        let mut st = self.state.lock();
        let receipt = self.inner.put(key, stored, now)?;
        Self::remove_entry(&mut st, key);
        st.logical_bytes += raw.len() as u64;
        st.physical_bytes += physical;
        if !use_compressed {
            st.raw_fallback += 1;
        }
        st.ledger.insert(
            key.clone(),
            Entry {
                logical: raw.len() as u64,
                physical,
                raw: !use_compressed,
            },
        );
        Ok(receipt)
    }

    fn get(&self, key: &ObjectKey, now: SimTime) -> Result<(Bytes, OpReceipt)> {
        let (stored, receipt) = self.inner.get(key, now)?;
        let (h, body) = header::decode(stored.as_slice())
            .map_err(|e| TieraError::Codec(format!("{key}: {e}")))?;
        let logical = if h.compressed {
            let raw = lzss::decompress(body)
                .map_err(|e| TieraError::Codec(format!("{key}: lzss: {e:?}")))?;
            Bytes::from(raw)
        } else {
            stored.slice(header::HEADER_LEN..)
        };
        let actual = crc32::checksum(logical.as_slice());
        if actual != h.crc32 {
            return Err(TieraError::Codec(format!(
                "{key}: crc32 mismatch (stored {:#010x}, computed {actual:#010x})",
                h.crc32
            )));
        }
        Ok((logical, receipt))
    }

    fn delete(&self, key: &ObjectKey, now: SimTime) -> Result<OpReceipt> {
        let mut st = self.state.lock();
        let receipt = self.inner.delete(key, now)?;
        Self::remove_entry(&mut st, key);
        Ok(receipt)
    }

    fn contains(&self, key: &ObjectKey) -> bool {
        self.inner.contains(key)
    }

    fn grow(&self, percent: f64, now: SimTime) -> SimTime {
        self.inner.grow(percent, now)
    }

    fn shrink(&self, percent: f64, now: SimTime) {
        self.inner.shrink(percent, now)
    }

    fn request_counts(&self) -> RequestCounts {
        self.inner.request_counts()
    }

    fn capacity_profile(&self) -> Option<CapacityProfile> {
        let st = self.state.lock();
        Some(CapacityProfile {
            logical_bytes: st.logical_bytes,
            physical_bytes: st.physical_bytes,
            objects: st.ledger.len() as u64,
            raw_fallback_objects: st.raw_fallback,
            ..CapacityProfile::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiera_core::tier::MemTier;

    fn key(s: &str) -> ObjectKey {
        ObjectKey::new(s)
    }

    /// Low-entropy payload lzss shrinks well.
    fn compressible(len: usize) -> Bytes {
        let text = b"the quick brown fox jumps over the lazy dog. ";
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            let take = text.len().min(len - v.len());
            v.extend_from_slice(&text[..take]);
        }
        Bytes::from(v)
    }

    /// High-entropy payload lzss cannot shrink.
    fn incompressible(len: usize, seed: u64) -> Bytes {
        let mut x = seed | 1;
        let v: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect();
        Bytes::from(v)
    }

    #[test]
    fn compressible_payload_shrinks_and_roundtrips() {
        let mem = MemTier::with_capacity("t", 1 << 20);
        let t = CompressedTier::new(mem.clone());
        let data = compressible(8192);
        t.put(&key("a"), data.clone(), SimTime::ZERO).unwrap();

        let p = t.capacity_profile().unwrap();
        assert_eq!(p.logical_bytes, 8192);
        assert!(p.physical_bytes < p.logical_bytes / 2, "physical {}", p.physical_bytes);
        assert_eq!(p.raw_fallback_objects, 0);
        assert!(p.compression_ratio() > 2.0);
        // The backing tier holds exactly the physical bytes.
        assert_eq!(mem.used(), p.physical_bytes);

        let (read, _) = t.get(&key("a"), SimTime::ZERO).unwrap();
        assert_eq!(read.as_slice(), data.as_slice());
    }

    #[test]
    fn incompressible_payload_uses_raw_fallback() {
        let t = CompressedTier::new(MemTier::with_capacity("t", 1 << 20));
        let data = incompressible(4096, 42);
        t.put(&key("a"), data.clone(), SimTime::ZERO).unwrap();

        let p = t.capacity_profile().unwrap();
        assert_eq!(p.raw_fallback_objects, 1);
        assert_eq!(p.physical_bytes, 4096 + header::HEADER_LEN as u64);

        let (read, _) = t.get(&key("a"), SimTime::ZERO).unwrap();
        assert_eq!(read.as_slice(), data.as_slice());
    }

    #[test]
    fn overwrite_and_delete_keep_ledger_exact() {
        let mem = MemTier::with_capacity("t", 1 << 20);
        let t = CompressedTier::new(mem.clone());
        t.put(&key("a"), compressible(4096), SimTime::ZERO).unwrap();
        t.put(&key("a"), incompressible(100, 7), SimTime::ZERO).unwrap();

        let p = t.capacity_profile().unwrap();
        assert_eq!(p.objects, 1);
        assert_eq!(p.logical_bytes, 100);
        assert_eq!(p.raw_fallback_objects, 1);
        assert_eq!(mem.used(), p.physical_bytes);

        t.delete(&key("a"), SimTime::ZERO).unwrap();
        let p = t.capacity_profile().unwrap();
        assert_eq!(p, CapacityProfile::default());
        assert_eq!(mem.used(), 0);
        // Deleting an absent key stays silent, per the trait contract.
        t.delete(&key("missing"), SimTime::ZERO).unwrap();
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let mem = MemTier::with_capacity("t", 1 << 20);
        let t = CompressedTier::new(mem.clone());
        t.put(&key("a"), compressible(2048), SimTime::ZERO).unwrap();

        // Corrupt the stored bytes behind the wrapper's back.
        let (stored, _) = mem.get(&key("a"), SimTime::ZERO).unwrap();
        let mut bad = stored.to_vec();
        for b in bad.iter_mut().skip(header::HEADER_LEN) {
            *b ^= 0x5A;
        }
        mem.put(&key("a"), Bytes::from(bad), SimTime::ZERO).unwrap();
        let err = t.get(&key("a"), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, TieraError::Codec(_)), "{err}");

        // A flipped crc byte on an otherwise-valid stream is also caught.
        let mut bad = stored.to_vec();
        bad[2] ^= 0xFF;
        mem.put(&key("a"), Bytes::from(bad), SimTime::ZERO).unwrap();
        let err = t.get(&key("a"), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, TieraError::Codec(ref m) if m.contains("crc32")), "{err}");
    }

    #[test]
    fn capacity_pressure_propagates_tier_full() {
        let t = CompressedTier::new(MemTier::with_capacity("t", 256));
        // Incompressible data cannot be squeezed in.
        let err = t
            .put(&key("a"), incompressible(512, 3), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, TieraError::TierFull { .. }));
        assert_eq!(t.capacity_profile().unwrap(), CapacityProfile::default());
        // But compressible data of the same logical size fits: effective
        // capacity exceeds physical capacity.
        t.put(&key("a"), compressible(512), SimTime::ZERO).unwrap();
        assert!(t.capacity_profile().unwrap().logical_bytes > t.capacity(SimTime::ZERO));
    }

    #[test]
    fn delegates_identity_and_sizing() {
        let mem = MemTier::with_capacity("backing", 1024);
        let t = CompressedTier::new(mem.clone());
        assert_eq!(t.name(), "backing");
        assert_eq!(t.capacity(SimTime::ZERO), 1024);
        assert_eq!(t.tier_traits(), mem.tier_traits());
        t.grow(100.0, SimTime::ZERO);
        assert_eq!(mem.capacity(SimTime::ZERO), 2048);
        t.shrink(50.0, SimTime::ZERO);
        assert_eq!(mem.capacity(SimTime::ZERO), 1024);
    }
}
