//! Payload-transforming tier wrappers.
//!
//! "Taming Server Memory TCO with Multiple Software-Defined Compressed
//! Tiers" argues that software-defined compressed memory tiers with
//! policy-driven placement cut memory TCO by 33–50%. Tiera's tier
//! abstraction (paper §2.2, "a tier can be any source or sink for data
//! with a prescribed interface") makes that a wrapper, not a new backend:
//! this crate provides two composable wrappers that implement
//! [`tiera_core::tier::Tier`] around any inner [`TierHandle`], so every
//! existing tier — simulated Memcached, EBS, S3, `MemTier` — can opt into
//! transparent compression or content-addressed deduplication via the
//! spec DSL (`compress` / `dedup` tier attributes, lints T013–T015).
//!
//! - [`CompressedTier`]: lzss on write, decompress + crc32 verification
//!   on read, per-object raw fallback when compression would expand the
//!   payload. Effective capacity is ~Nx the backing tier on compressible
//!   data; the logical/physical split is reported through
//!   [`tiera_core::tier::CapacityProfile`].
//! - [`DedupTier`]: content-addressed by sha256 with a refcounted blob
//!   store — identical payloads are stored once, deletes reclaim physical
//!   space only at refcount zero.
//!
//! # Canonical stacking and lock order
//!
//! When both transforms apply to one tier the canonical stack is
//! `Dedup(Compressed(inner))` — dedup outermost, so content identity is
//! computed on the raw payload and each unique blob is compressed once.
//! The declared lock ranks encode exactly that order (`TIERX_DEDUP` <
//! `TIERX_COMPRESS` < the inner tier locks); composing the other way
//! around panics under the `lockcheck` sanitizer.
//!
//! [`TierHandle`]: tiera_core::tier::TierHandle

#![forbid(unsafe_code)]

pub mod compressed;
pub mod dedup;
pub mod header;

pub use compressed::CompressedTier;
pub use dedup::DedupTier;
