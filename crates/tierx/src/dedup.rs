//! Content-addressed deduplication over any tier.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use tiera_codec::Digest;
use tiera_core::error::{Result, TieraError};
use tiera_core::object::ObjectKey;
use tiera_core::tier::{CapacityProfile, OpReceipt, RequestCounts, Tier, TierHandle, TierTraits};
use tiera_sim::SimTime;
use tiera_support::sync::{rank, Mutex};
use tiera_support::Bytes;

/// A [`Tier`]-transparent wrapper that stores payloads content-addressed
/// by sha256: identical payloads occupy one refcounted physical blob, and
/// a blob's physical bytes are reclaimed only when its refcount drops to
/// zero.
///
/// Physically the inner tier holds one object per *distinct payload*,
/// keyed `sha256:<hex digest>`; this wrapper owns the key→digest mapping
/// and the refcount table. A put whose payload already exists touches no
/// inner storage at all (and charges no request), which is where both the
/// capacity and the cost savings come from.
///
/// In debug builds every dedup hit re-reads the existing blob and
/// byte-compares it against the incoming payload — collision paranoia for
/// the (cryptographically negligible) case of two payloads sharing a
/// sha256 digest. Release builds trust the digest.
///
/// When composed with [`crate::CompressedTier`], dedup goes *outermost*
/// (`Dedup(Compressed(inner))`): identity is computed on the raw payload
/// and each unique blob is compressed once. The lock ranks
/// (`rank::TIERX_DEDUP` < `rank::TIERX_COMPRESS`) enforce that order
/// under the lockcheck sanitizer.
pub struct DedupTier {
    inner: TierHandle,
    state: Mutex<DedupState>,
}

#[derive(Default)]
struct DedupState {
    /// Live client keys and the content they point at.
    keys: HashMap<ObjectKey, Digest>,
    /// Refcounted physical blobs, by content digest.
    blobs: HashMap<Digest, BlobEntry>,
    /// Sum of live keys' logical payload sizes.
    logical_bytes: u64,
    /// Puts answered by an existing blob.
    dedup_hits: u64,
}

#[derive(Clone, Copy)]
struct BlobEntry {
    /// Live keys pointing at this blob.
    refs: u64,
    /// Logical payload size in bytes.
    len: u64,
}

/// Inner-tier key for a content blob.
fn blob_key(digest: &Digest) -> ObjectKey {
    ObjectKey::new(format!("sha256:{}", digest.to_hex()))
}

impl DedupTier {
    /// Wraps `inner`; all traffic through the handle is content-addressed.
    pub fn new(inner: TierHandle) -> Arc<Self> {
        Arc::new(Self {
            inner,
            state: Mutex::named("tierx.dedup", rank::TIERX_DEDUP, DedupState::default()),
        })
    }

    /// The wrapped tier.
    pub fn inner(&self) -> &TierHandle {
        &self.inner
    }

    /// Checks the refcount invariants against the inner tier: every live
    /// key's blob must exist physically with a refcount equal to the
    /// number of keys pointing at it, and no blob entry may have a zero
    /// refcount. Returns human-readable violations (empty = healthy);
    /// used by the chaos harness.
    pub fn check_integrity(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut violations = Vec::new();
        let mut counted: HashMap<Digest, u64> = HashMap::new();
        for (key, digest) in &st.keys {
            *counted.entry(*digest).or_insert(0) += 1;
            match st.blobs.get(digest) {
                None => violations.push(format!("key {key} points at untracked blob {digest}")),
                Some(b) if b.refs == 0 => {
                    violations.push(format!("key {key} points at zero-ref blob {digest}"))
                }
                Some(_) => {
                    if !self.inner.contains(&blob_key(digest)) {
                        violations
                            .push(format!("key {key}: blob {digest} missing from inner tier"));
                    }
                }
            }
        }
        for (digest, blob) in &st.blobs {
            let live = counted.get(digest).copied().unwrap_or(0);
            if blob.refs != live {
                violations.push(format!(
                    "blob {digest}: refcount {} but {live} live keys",
                    blob.refs
                ));
            }
        }
        violations
    }

    /// Decrements `digest`'s refcount; at zero, removes the blob entry and
    /// best-effort deletes the physical blob (a failed reclaim delete
    /// leaks physical bytes but never a live key's data).
    fn release(&self, st: &mut DedupState, digest: Digest, now: SimTime) {
        if let Some(blob) = st.blobs.get_mut(&digest) {
            blob.refs -= 1;
            if blob.refs == 0 {
                st.blobs.remove(&digest);
                let _ = self.inner.delete(&blob_key(&digest), now);
            }
        }
    }
}

impl Tier for DedupTier {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tier_traits(&self) -> TierTraits {
        self.inner.tier_traits()
    }

    fn capacity(&self, now: SimTime) -> u64 {
        self.inner.capacity(now)
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn put(&self, key: &ObjectKey, data: Bytes, now: SimTime) -> Result<OpReceipt> {
        let digest = Digest::of(data.as_slice());
        let len = data.len() as u64;

        let mut st = self.state.lock();
        let old = st.keys.get(key).copied();
        if old == Some(digest) {
            // Same content rewritten under the same key: nothing changes,
            // not even the refcount.
            st.dedup_hits += 1;
            return Ok(OpReceipt::FREE);
        }

        let receipt = if st.blobs.contains_key(&digest) {
            #[cfg(debug_assertions)]
            {
                // Collision paranoia: confirm the resident blob really is
                // this payload before aliasing to it.
                let (existing, _) = self.inner.get(&blob_key(&digest), now)?;
                if existing.as_slice() != data.as_slice() {
                    return Err(TieraError::Codec(format!(
                        "{key}: sha256 collision on {digest}"
                    )));
                }
            }
            if let Some(blob) = st.blobs.get_mut(&digest) {
                blob.refs += 1;
            }
            st.dedup_hits += 1;
            OpReceipt::FREE
        } else {
            // New content: the physical write happens first, so a failed
            // put leaves every map untouched.
            let receipt = self.inner.put(&blob_key(&digest), data, now)?;
            st.blobs.insert(digest, BlobEntry { refs: 1, len });
            receipt
        };

        st.keys.insert(key.clone(), digest);
        st.logical_bytes += len;
        if let Some(old_digest) = old {
            let old_len = st.blobs.get(&old_digest).map(|b| b.len).unwrap_or(0);
            st.logical_bytes -= old_len;
            self.release(&mut st, old_digest, now);
        }
        Ok(receipt)
    }

    fn get(&self, key: &ObjectKey, now: SimTime) -> Result<(Bytes, OpReceipt)> {
        let digest = {
            let st = self.state.lock();
            st.keys
                .get(key)
                .copied()
                .ok_or_else(|| TieraError::NoSuchObject(key.to_string()))?
        };
        self.inner.get(&blob_key(&digest), now)
    }

    fn delete(&self, key: &ObjectKey, now: SimTime) -> Result<OpReceipt> {
        let mut st = self.state.lock();
        if let Some(digest) = st.keys.remove(key) {
            let len = st.blobs.get(&digest).map(|b| b.len).unwrap_or(0);
            st.logical_bytes -= len;
            self.release(&mut st, digest, now);
        }
        Ok(OpReceipt::FREE)
    }

    fn contains(&self, key: &ObjectKey) -> bool {
        self.state.lock().keys.contains_key(key)
    }

    fn grow(&self, percent: f64, now: SimTime) -> SimTime {
        self.inner.grow(percent, now)
    }

    fn shrink(&self, percent: f64, now: SimTime) {
        self.inner.shrink(percent, now)
    }

    fn request_counts(&self) -> RequestCounts {
        self.inner.request_counts()
    }

    fn capacity_profile(&self) -> Option<CapacityProfile> {
        let st = self.state.lock();
        let mut histogram: BTreeMap<u64, u64> = BTreeMap::new();
        for blob in st.blobs.values() {
            *histogram.entry(blob.refs).or_insert(0) += 1;
        }
        // Physical accounting comes from beneath us: the inner tier's own
        // profile when it transforms payloads too (canonical
        // Dedup(Compressed(_)) stack), its raw usage otherwise.
        let inner_profile = self.inner.capacity_profile();
        let (physical, raw_fallback) = match &inner_profile {
            Some(p) => (p.physical_bytes, p.raw_fallback_objects),
            None => (self.inner.used(), 0),
        };
        Some(CapacityProfile {
            logical_bytes: st.logical_bytes,
            physical_bytes: physical,
            objects: st.keys.len() as u64,
            raw_fallback_objects: raw_fallback,
            dedup_hits: st.dedup_hits,
            unique_blobs: st.blobs.len() as u64,
            refcount_histogram: histogram.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressedTier;
    use tiera_core::tier::MemTier;

    fn key(s: &str) -> ObjectKey {
        ObjectKey::new(s)
    }

    fn payload(tag: u8, len: usize) -> Bytes {
        Bytes::from(vec![tag; len])
    }

    #[test]
    fn identical_payloads_share_one_blob() {
        let mem = MemTier::with_capacity("t", 1 << 20);
        let t = DedupTier::new(mem.clone());
        t.put(&key("a"), payload(1, 1000), SimTime::ZERO).unwrap();
        t.put(&key("b"), payload(1, 1000), SimTime::ZERO).unwrap();

        assert_eq!(mem.used(), 1000, "one physical blob");
        let p = t.capacity_profile().unwrap();
        assert_eq!(p.logical_bytes, 2000);
        assert_eq!(p.physical_bytes, 1000);
        assert_eq!(p.unique_blobs, 1);
        assert_eq!(p.dedup_hits, 1);
        assert_eq!(p.refcount_histogram, vec![(2, 1)]);
        assert!((p.dedup_hit_rate() - 0.5).abs() < 1e-9);
        assert!(t.check_integrity().is_empty());
    }

    #[test]
    fn deletes_reclaim_only_at_refcount_zero() {
        let mem = MemTier::with_capacity("t", 1 << 20);
        let t = DedupTier::new(mem.clone());
        t.put(&key("a"), payload(1, 500), SimTime::ZERO).unwrap();
        t.put(&key("b"), payload(1, 500), SimTime::ZERO).unwrap();

        t.delete(&key("a"), SimTime::ZERO).unwrap();
        assert!(!t.contains(&key("a")));
        assert_eq!(mem.used(), 500, "blob survives while b lives");
        let (read, _) = t.get(&key("b"), SimTime::ZERO).unwrap();
        assert_eq!(read.as_slice(), payload(1, 500).as_slice());

        t.delete(&key("b"), SimTime::ZERO).unwrap();
        assert_eq!(mem.used(), 0, "last ref reclaims the blob");
        let p = t.capacity_profile().unwrap();
        assert_eq!(p.logical_bytes, 0);
        assert_eq!(p.unique_blobs, 0);
        assert!(t.check_integrity().is_empty());
        // Deleting an absent key stays silent, per the trait contract.
        t.delete(&key("a"), SimTime::ZERO).unwrap();
    }

    #[test]
    fn overwrite_rebinds_and_releases_old_content() {
        let mem = MemTier::with_capacity("t", 1 << 20);
        let t = DedupTier::new(mem.clone());
        t.put(&key("a"), payload(1, 100), SimTime::ZERO).unwrap();
        t.put(&key("a"), payload(2, 200), SimTime::ZERO).unwrap();

        assert_eq!(mem.used(), 200, "old sole-ref blob reclaimed");
        let p = t.capacity_profile().unwrap();
        assert_eq!(p.objects, 1);
        assert_eq!(p.logical_bytes, 200);
        let (read, _) = t.get(&key("a"), SimTime::ZERO).unwrap();
        assert_eq!(read.as_slice(), payload(2, 200).as_slice());
        assert!(t.check_integrity().is_empty());
    }

    #[test]
    fn same_content_rewrite_is_a_stable_hit() {
        let t = DedupTier::new(MemTier::with_capacity("t", 1 << 20));
        t.put(&key("a"), payload(3, 64), SimTime::ZERO).unwrap();
        t.put(&key("a"), payload(3, 64), SimTime::ZERO).unwrap();
        let p = t.capacity_profile().unwrap();
        assert_eq!(p.dedup_hits, 1);
        assert_eq!(p.refcount_histogram, vec![(1, 1)]);
        assert!(t.check_integrity().is_empty());
        // The single delete fully clears it.
        t.delete(&key("a"), SimTime::ZERO).unwrap();
        assert_eq!(t.capacity_profile().unwrap().unique_blobs, 0);
    }

    #[test]
    fn missing_key_is_no_such_object() {
        let t = DedupTier::new(MemTier::with_capacity("t", 1 << 20));
        let err = t.get(&key("nope"), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, TieraError::NoSuchObject(ref k) if k == "nope"));
    }

    #[test]
    fn failed_put_leaves_state_untouched() {
        let mem = MemTier::with_capacity("t", 100);
        let t = DedupTier::new(mem.clone());
        let err = t.put(&key("a"), payload(1, 200), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, TieraError::TierFull { .. }));
        assert!(!t.contains(&key("a")));
        let p = t.capacity_profile().unwrap();
        assert_eq!(p.unique_blobs, 0);
        assert_eq!(p.logical_bytes, 0);
        assert!(t.check_integrity().is_empty());
    }

    #[test]
    fn canonical_stack_dedup_over_compressed() {
        let mem = MemTier::with_capacity("t", 1 << 20);
        let t = DedupTier::new(CompressedTier::new(mem.clone()));
        // Four keys, two distinct highly-compressible payloads.
        let v1 = Bytes::from(b"abcabcabc".repeat(300));
        let v2 = Bytes::from(b"xyzxyzxyz".repeat(300));
        for (k, v) in [("a", &v1), ("b", &v1), ("c", &v2), ("d", &v2)] {
            t.put(&key(k), v.clone(), SimTime::ZERO).unwrap();
        }

        let p = t.capacity_profile().unwrap();
        assert_eq!(p.objects, 4);
        assert_eq!(p.logical_bytes, 4 * 2700);
        assert_eq!(p.unique_blobs, 2);
        assert_eq!(p.dedup_hits, 2);
        // Dedup halves, compression shrinks further: > 4x combined.
        assert!(
            p.physical_bytes < p.logical_bytes / 4,
            "physical {} logical {}",
            p.physical_bytes,
            p.logical_bytes
        );
        assert_eq!(mem.used(), p.physical_bytes);

        for (k, v) in [("a", &v1), ("b", &v1), ("c", &v2), ("d", &v2)] {
            let (read, _) = t.get(&key(k), SimTime::ZERO).unwrap();
            assert_eq!(read.as_slice(), v.as_slice(), "key {k}");
        }
        assert!(t.check_integrity().is_empty());

        for k in ["a", "b", "c", "d"] {
            t.delete(&key(k), SimTime::ZERO).unwrap();
        }
        assert_eq!(mem.used(), 0);
    }
}
