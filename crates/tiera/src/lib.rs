//! # Tiera — flexible multi-tiered cloud storage instances
//!
//! A Rust reproduction of *"Tiera: Towards Flexible Multi-Tiered Cloud
//! Storage Instances"* (Raghavan, Chandra, Weissman — ACM Middleware 2014).
//!
//! Tiera is a lightweight middleware that encapsulates multiple cloud
//! storage tiers (memory cache, block store, object store, ephemeral disk)
//! behind one PUT/GET object API, and manages the life cycle of stored data
//! with programmable **event → response** policies that can be replaced at
//! runtime.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`] | `tiera-core` | object model, tiers, events, responses, instances |
//! | [`tiers`] | `tiera-tiers` | simulated Memcached / EBS / S3 / ephemeral tiers |
//! | [`spec`] | `tiera-spec` | the instance-specification DSL (paper Figs 3–6) |
//! | [`fs`] | `tiera-fs` | POSIX-style chunking file layer (the FUSE driver) |
//! | [`db`] | `tiera-db` | minidb — the evaluation's MySQL stand-in |
//! | [`rpc`] | `tiera-rpc` | framed TCP server/client (the Thrift server) |
//! | [`workloads`] | `tiera-workloads` | sysbench / YCSB / TPC-W / fio drivers |
//! | [`sim`] | `tiera-sim` | virtual time, latency/cost models, failure injection |
//! | [`codec`] | `tiera-codec` | SHA-256, CRC-32, ChaCha20, LZSS |
//! | [`metastore`] | `tiera-metastore` | embedded log-structured metadata store |
//!
//! ## Quickstart
//!
//! ```
//! use tiera::prelude::*;
//! use std::sync::Arc;
//!
//! // Build the paper's Figure 3 LowLatencyInstance from its spec text.
//! let env = SimEnv::new(42);
//! let catalog = tiera::tiers::default_catalog(&env);
//! let spec = tiera::spec::parse(r#"
//!     Tiera LowLatencyInstance(time t) {
//!         tier1: { name: Memcached, size: 64M };
//!         tier2: { name: EBS, size: 64M };
//!         event(insert.into) : response {
//!             store(what: insert.object, to: tier1);
//!         }
//!         event(time=t) : response {
//!             copy(what: object.location == tier1 && object.dirty == true,
//!                  to: tier2);
//!         }
//!     }
//! "#).unwrap();
//! let instance = tiera::spec::Compiler::new(&catalog, env.clone())
//!     .bind("t", tiera::spec::ParamValue::Duration(SimDuration::from_secs(30)))
//!     .compile(&spec)
//!     .unwrap();
//!
//! instance.put("hello", &b"world"[..], SimTime::ZERO).unwrap();
//! let (data, receipt) = instance.get("hello", SimTime::from_millis(1)).unwrap();
//! assert_eq!(&data[..], b"world");
//! assert_eq!(receipt.served_by, "tier1"); // served from the cache tier
//!
//! // The write-back policy persists dirty data on the timer.
//! instance.pump(SimTime::from_secs(30)).unwrap();
//! let meta = instance.registry().get(&"hello".into()).unwrap();
//! assert!(meta.in_tier("tier2") && !meta.dirty);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tiera_cluster as cluster;
pub use tiera_codec as codec;
pub use tiera_core as core;
pub use tiera_db as db;
pub use tiera_fs as fs;
pub use tiera_metastore as metastore;
pub use tiera_rpc as rpc;
pub use tiera_sim as sim;
pub use tiera_spec as spec;
pub use tiera_tiers as tiers;
pub use tiera_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use tiera_core::prelude::*;
    pub use tiera_sim::{SimDuration, SimEnv, SimTime};
}
