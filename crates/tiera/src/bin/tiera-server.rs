//! The Tiera server binary — the paper's deployment (§3): "When the server
//! starts up, it begins by reading the configuration file that is used to
//! indicate the different tiers (and their capacities) that would
//! constitute the instance, the size of the thread pool dedicated to
//! service client requests, the size of thread pool dedicated to service
//! responses and evaluate events, and the location to persistently store
//! metadata..."
//!
//! ```text
//! tiera-server --spec instance.tiera [--bind time:t=30s ...]
//!              [--listen 127.0.0.1:7427] [--threads 4]
//!              [--metadata-dir /var/lib/tiera] [--dump-spec]
//! ```
//!
//! Tier type names in the spec resolve against the simulated catalog
//! (`Memcached`, `MemcachedRemote`, `EBS`, `S3`, `EphemeralStorage`).

use std::process::exit;

use tiera::prelude::*;
use tiera::rpc::{ServerConfig, TieraServer};
use tiera::spec::{parse, print_spec, Compiler, ParamValue};

struct Args {
    spec_path: String,
    listen: String,
    threads: usize,
    bindings: Vec<(String, ParamValue)>,
    metadata_dir: Option<String>,
    dump_spec: bool,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: tiera-server --spec <file> [--listen ADDR] [--threads N]\n\
         \x20                 [--bind time:NAME=30s | size:NAME=512M | percent:NAME=75]...\n\
         \x20                 [--metadata-dir DIR] [--seed N] [--dump-spec]"
    );
    exit(2)
}

fn parse_binding(arg: &str) -> Option<(String, ParamValue)> {
    let (kind, rest) = arg.split_once(':')?;
    let (name, value) = rest.split_once('=')?;
    let value = match kind {
        "time" => {
            let (digits, unit) = value.split_at(value.find(|c: char| !c.is_ascii_digit())?);
            let n: u64 = digits.parse().ok()?;
            let d = match unit {
                "ms" => SimDuration::from_millis(n),
                "s" | "sec" => SimDuration::from_secs(n),
                "min" => SimDuration::from_secs(n * 60),
                "h" => SimDuration::from_secs(n * 3600),
                _ => return None,
            };
            ParamValue::Duration(d)
        }
        "size" => {
            let (digits, unit) = value.split_at(
                value
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(value.len()),
            );
            let n: u64 = digits.parse().ok()?;
            let bytes = match unit {
                "" | "B" => n,
                "K" | "KB" => n << 10,
                "M" | "MB" => n << 20,
                "G" | "GB" => n << 30,
                _ => return None,
            };
            ParamValue::Size(bytes)
        }
        "percent" => ParamValue::Percent(value.parse().ok()?),
        _ => return None,
    };
    Some((name.to_string(), value))
}

fn parse_args() -> Args {
    let mut args = Args {
        spec_path: String::new(),
        listen: "127.0.0.1:7427".into(),
        threads: 4,
        bindings: Vec::new(),
        metadata_dir: None,
        dump_spec: false,
        seed: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => args.spec_path = it.next().unwrap_or_else(|| usage()),
            "--listen" => args.listen = it.next().unwrap_or_else(|| usage()),
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--bind" => {
                let raw = it.next().unwrap_or_else(|| usage());
                match parse_binding(&raw) {
                    Some(b) => args.bindings.push(b),
                    None => {
                        eprintln!("bad --bind value: {raw}");
                        usage()
                    }
                }
            }
            "--metadata-dir" => args.metadata_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--dump-spec" => args.dump_spec = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if args.spec_path.is_empty() {
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    let source = match std::fs::read_to_string(&args.spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.spec_path);
            exit(1)
        }
    };
    let spec = match parse(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            exit(1)
        }
    };
    if args.dump_spec {
        print!("{}", print_spec(&spec));
        return;
    }

    let env = SimEnv::new(args.seed);
    let catalog = tiera::tiers::default_catalog(&env);
    let mut compiler = Compiler::new(&catalog, env.clone());
    for (name, value) in args.bindings {
        compiler = compiler.bind(name, value);
    }
    // Metadata persistence (the BerkeleyDB role) is wired through the
    // builder; the compiler path recompiles with it when requested.
    let instance = match compiler.compile(&spec) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            exit(1)
        }
    };
    if let Some(dir) = &args.metadata_dir {
        eprintln!(
            "note: metadata persistence requested at {dir}; object metadata will be flushed there on sync"
        );
    }

    println!(
        "tiera-server: instance `{}` with tiers {:?} and {} rule(s)",
        instance.name(),
        instance.tier_names(),
        instance.policy().len()
    );
    let handle = match TieraServer::start(
        instance,
        &args.listen,
        ServerConfig {
            request_threads: args.threads,
            ..ServerConfig::default()
        },
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot listen on {}: {e}", args.listen);
            exit(1)
        }
    };
    println!("listening on {} ({} request threads)", handle.addr(), args.threads);
    println!("press ctrl-c to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
