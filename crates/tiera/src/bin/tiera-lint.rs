//! `tiera-lint` — the specification analyzer as a command-line gate.
//!
//! Runs the `tiera-spec` semantic analysis pass (lint codes `T001`–`T012`,
//! see DESIGN.md) over one or more `.tiera` files and renders rustc-style
//! diagnostics:
//!
//! ```text
//! tiera-lint [--deny-warnings] [--quiet] <file.tiera>...
//! tiera-lint --explain
//! ```
//!
//! Exit status: 0 when every file parses and has no analyzer errors, 1
//! otherwise. `--deny-warnings` promotes warnings to failures (the mode
//! `scripts/verify.sh` uses over the shipped `specs/`), `--quiet`
//! suppresses the per-file `ok` lines, and `--explain` prints the lint
//! code table.

use std::process::exit;

use tiera::spec::{analyze, parse, LintCode};

fn usage() -> ! {
    eprintln!(
        "usage: tiera-lint [--deny-warnings] [--quiet] <file.tiera>...\n\
         \x20      tiera-lint --explain"
    );
    exit(2)
}

fn explain() {
    println!("{:<6} {}", "code", "summary");
    for code in LintCode::ALL {
        println!(
            "{:<6} {} ({} by default)",
            code.code(),
            code.summary(),
            code.default_severity()
        );
    }
}

fn main() {
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--quiet" | "-q" => quiet = true,
            "--explain" => {
                explain();
                return;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown argument: {other}");
                usage()
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        usage()
    }

    let mut failed = false;
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let spec = match parse(&source) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let analysis = analyze(&spec);
        if !analysis.is_clean() {
            print!("{}", analysis.render(&source, path));
        }
        let errors = analysis.errors().count();
        let warnings = analysis.warnings().count();
        if errors > 0 || (deny_warnings && warnings > 0) {
            eprintln!("{path}: {errors} error(s), {warnings} warning(s)");
            failed = true;
        } else if !quiet {
            let suffix = if warnings > 0 {
                format!(" ({warnings} warning(s))")
            } else {
                String::new()
            };
            println!("{path}: ok{suffix}");
        }
    }
    if failed {
        exit(1)
    }
}
