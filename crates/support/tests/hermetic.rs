//! Hermeticity guard and workspace source lint.
//!
//! Manifest half: the workspace must never regrow a crates-io dependency.
//! Parses every `crates/*/Cargo.toml` plus the workspace root and fails if
//! any dependency entry is not an in-repo `tiera-*` path crate. `cargo
//! build --offline` on a bare toolchain is the contract (see DESIGN.md,
//! "Hermetic dependency policy").
//!
//! Source half: every crate must carry `#![forbid(unsafe_code)]`, and the
//! source-lint rules that used to be hand-rolled here (std::sync
//! containment, panic-free wire decoding, hot-path hashing) now run
//! through `tiera-analyze` — the analyzer library is the single source of
//! truth for the A004/A005/A006 rules, and these tests pin that the
//! workspace stays clean under them even when `scripts/verify.sh` is not
//! in the loop.

use std::fs;
use std::path::{Path, PathBuf};
use tiera_analyze::{analyze_workspace, collect_rust_sources, Config, FileInput, FileReport};

fn workspace_root() -> PathBuf {
    // crates/support -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("support crate lives two levels below the workspace root")
        .to_path_buf()
}

/// Extracts dependency names from the `[dependencies]`,
/// `[dev-dependencies]`, `[build-dependencies]`, and
/// `[workspace.dependencies]` sections of a manifest. A deliberately
/// simple line-based parse: every dependency the workspace uses is
/// declared as `name.workspace = true`, `name = { path = … }`, or
/// `name = "version"` on its own line.
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_dep_section = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            );
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name.workspace = true` or `name = …`
        let name = line
            .split(['=', '.', ' '])
            .next()
            .unwrap_or_default()
            .trim();
        if !name.is_empty() {
            deps.push(name.to_string());
        }
    }
    deps
}

/// Analyzer reports for every `.rs` file under `crates/`, with the
/// workspace lint policy. Paths are repo-relative so the analyzer's
/// path-scoping rules (support exemption, panic-free/hot-path suffixes)
/// apply exactly as they do for `tiera-analyze --deny-warnings crates`.
fn analyzer_reports() -> Vec<FileReport> {
    let root = workspace_root();
    let inputs: Vec<FileInput> = collect_rust_sources(&root.join("crates"))
        .into_iter()
        .map(|p| {
            let source =
                fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {p:?}: {e}"));
            let path = p
                .strip_prefix(&root)
                .map(|r| r.to_string_lossy().into_owned())
                .unwrap_or_else(|_| p.to_string_lossy().into_owned());
            FileInput { path, source }
        })
        .collect();
    assert!(
        inputs.iter().any(|i| i.path.ends_with("crates/rpc/src/proto.rs")),
        "workspace walk must reach proto.rs"
    );
    analyze_workspace(&inputs, &Config::workspace())
}

/// Findings carrying `code` across the whole workspace, formatted for a
/// failure message.
fn findings_with_code(reports: &[FileReport], code: &str) -> Vec<String> {
    reports
        .iter()
        .flat_map(|r| {
            r.analysis
                .diagnostics()
                .iter()
                .filter(|d| d.code.code() == code)
                .map(move |d| format!("{}:{}: {}", r.path, d.line, d.message))
        })
        .collect()
}

/// Crate directories under `crates/`, sorted for stable failure output.
fn crate_dirs() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))
        .expect("crates/ directory")
        .map(|e| e.expect("read crates/ entry").path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

#[test]
fn no_external_dependencies_anywhere() {
    let root = workspace_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).expect("crates/ directory") {
        let path = entry.expect("read crates/ entry").path().join("Cargo.toml");
        assert!(
            path.is_file(),
            "every crates/* directory must have a Cargo.toml: {path:?}"
        );
        manifests.push(path);
    }
    assert!(
        manifests.len() >= 18,
        "expected the workspace root and 17+ member manifests (including \
         crates/tierx), found {}",
        manifests.len()
    );

    let mut violations = Vec::new();
    for manifest_path in &manifests {
        let text = fs::read_to_string(manifest_path)
            .unwrap_or_else(|e| panic!("read {manifest_path:?}: {e}"));
        for dep in dependency_names(&text) {
            if !dep.starts_with("tiera-") && dep != "tiera" {
                violations.push(format!("{}: `{dep}`", manifest_path.display()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (only in-repo `tiera-*` path crates \
         are allowed; add the needed functionality to `tiera-support` instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn banned_crate_names_absent_from_manifests() {
    // Belt and braces for the review-time grep: the historical crates-io
    // names must not appear in any member manifest in any form.
    let banned = [
        "parking_lot",
        "crossbeam",
        "proptest",
        "criterion",
        "rand",
        "bytes",
    ];
    let root = workspace_root();
    for entry in fs::read_dir(root.join("crates")).expect("crates/ directory") {
        let path = entry.expect("read crates/ entry").path().join("Cargo.toml");
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('#') {
                continue;
            }
            for name in banned {
                // Word-boundary match so e.g. the description "replaces
                // criterion" in prose is caught too only when it names the
                // crate as a dependency key.
                if line.starts_with(name)
                    && line[name.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c == '.' || c == ' ' || c == '=')
                {
                    panic!("banned dependency `{name}` named in {path:?}: {line}");
                }
            }
        }
    }
}

#[test]
fn every_crate_forbids_unsafe_code() {
    let mut missing = Vec::new();
    for dir in crate_dirs() {
        let lib = dir.join("src").join("lib.rs");
        let text =
            fs::read_to_string(&lib).unwrap_or_else(|e| panic!("read {lib:?}: {e}"));
        if !text.contains("#![forbid(unsafe_code)]") {
            missing.push(lib.display().to_string());
        }
    }
    assert!(
        missing.is_empty(),
        "crates without `#![forbid(unsafe_code)]`:\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn std_sync_locks_only_in_support() {
    // `tiera_support::sync::{Mutex, RwLock}` are the only lock types the
    // workspace may use; reaching for std's directly bypasses the support
    // crate's non-poisoning policy, lock naming, and the lockcheck
    // sanitizer. The rule is analyzer lint A006 (the support crate itself
    // wraps std's primitives and is exempt).
    let violations = findings_with_code(&analyzer_reports(), "A006");
    assert!(
        violations.is_empty(),
        "direct std::sync lock usage outside tiera-support \
         (use `tiera_support::sync` instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn wire_decoders_cannot_panic_on_hostile_input() {
    // `crates/rpc/src/proto.rs` and `crates/cluster/src/wire.rs` are the
    // only code that parses bytes an untrusted peer controls; every decode
    // path there must return a `Result`, never panic. The fuzz suites
    // exercise this dynamically; analyzer lint A004 pins it statically:
    // outside the `#[cfg(test)]` module, no panicking construct may appear
    // in those files at all. (Even `unwrap` on a value "known" to be fine
    // is banned — refactors have a way of breaking such knowledge
    // silently.)
    let violations = findings_with_code(&analyzer_reports(), "A004");
    assert!(
        violations.is_empty(),
        "panicking construct reachable from wire input in a panic-free file \
         (return a Result instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn registry_hot_path_uses_fx_hash_maps() {
    // The sharded registry hashes every key twice per operation (shard
    // pick + in-shard probe); `tiera_support::collections::FxHashMap` is
    // the sanctioned map type there — a default-hashed
    // `std::collections::HashMap` would silently reintroduce SipHash *and*
    // per-process-random iteration order, which previously made experiment
    // output drift run to run. Analyzer lint A005 enforces this; every
    // crate other than the registry keeps default hashing for DoS
    // resistance.
    let violations = findings_with_code(&analyzer_reports(), "A005");
    assert!(
        violations.is_empty(),
        "default-hashed HashMap in the registry hot path \
         (use `tiera_support::collections::FxHashMap`):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn workspace_is_clean_under_the_full_analyzer() {
    // The whole A001–A007 gate, not just the migrated rules: a rank
    // inversion or an unnamed lock anywhere in shipped code fails the
    // hermetic suite, not only `scripts/verify.sh`.
    let reports = analyzer_reports();
    let dirty: Vec<String> = reports
        .iter()
        .filter(|r| !r.analysis.is_clean())
        .flat_map(|r| {
            r.analysis
                .diagnostics()
                .iter()
                .map(move |d| format!("{}:{}: [{}] {}", r.path, d.line, d.code, d.message))
        })
        .collect();
    assert!(
        dirty.is_empty(),
        "`tiera-analyze --deny-warnings` would fail on shipped sources:\n  {}",
        dirty.join("\n  ")
    );
}
