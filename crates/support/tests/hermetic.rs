//! Hermeticity guard: the workspace must never regrow a crates-io
//! dependency. Parses every `crates/*/Cargo.toml` plus the workspace
//! root and fails if any dependency entry is not an in-repo `tiera-*`
//! path crate. `cargo build --offline` on a bare toolchain is the
//! contract (see DESIGN.md, "Hermetic dependency policy").

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/support -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("support crate lives two levels below the workspace root")
        .to_path_buf()
}

/// Extracts dependency names from the `[dependencies]`,
/// `[dev-dependencies]`, `[build-dependencies]`, and
/// `[workspace.dependencies]` sections of a manifest. A deliberately
/// simple line-based parse: every dependency the workspace uses is
/// declared as `name.workspace = true`, `name = { path = … }`, or
/// `name = "version"` on its own line.
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_dep_section = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            );
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name.workspace = true` or `name = …`
        let name = line
            .split(['=', '.', ' '])
            .next()
            .unwrap_or_default()
            .trim();
        if !name.is_empty() {
            deps.push(name.to_string());
        }
    }
    deps
}

#[test]
fn no_external_dependencies_anywhere() {
    let root = workspace_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).expect("crates/ directory") {
        let path = entry.expect("read crates/ entry").path().join("Cargo.toml");
        assert!(
            path.is_file(),
            "every crates/* directory must have a Cargo.toml: {path:?}"
        );
        manifests.push(path);
    }
    assert!(
        manifests.len() >= 13,
        "expected the workspace root and 12+ member manifests, found {}",
        manifests.len()
    );

    let mut violations = Vec::new();
    for manifest_path in &manifests {
        let text = fs::read_to_string(manifest_path)
            .unwrap_or_else(|e| panic!("read {manifest_path:?}: {e}"));
        for dep in dependency_names(&text) {
            if !dep.starts_with("tiera-") && dep != "tiera" {
                violations.push(format!("{}: `{dep}`", manifest_path.display()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (only in-repo `tiera-*` path crates \
         are allowed; add the needed functionality to `tiera-support` instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn banned_crate_names_absent_from_manifests() {
    // Belt and braces for the review-time grep: the historical crates-io
    // names must not appear in any member manifest in any form.
    let banned = [
        "parking_lot",
        "crossbeam",
        "proptest",
        "criterion",
        "rand",
        "bytes",
    ];
    let root = workspace_root();
    for entry in fs::read_dir(root.join("crates")).expect("crates/ directory") {
        let path = entry.expect("read crates/ entry").path().join("Cargo.toml");
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('#') {
                continue;
            }
            for name in banned {
                // Word-boundary match so e.g. the description "replaces
                // criterion" in prose is caught too only when it names the
                // crate as a dependency key.
                if line.starts_with(name)
                    && line[name.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c == '.' || c == ' ' || c == '=')
                {
                    panic!("banned dependency `{name}` named in {path:?}: {line}");
                }
            }
        }
    }
}
