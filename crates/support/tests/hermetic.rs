//! Hermeticity guard and workspace source lint.
//!
//! Manifest half: the workspace must never regrow a crates-io dependency.
//! Parses every `crates/*/Cargo.toml` plus the workspace root and fails if
//! any dependency entry is not an in-repo `tiera-*` path crate. `cargo
//! build --offline` on a bare toolchain is the contract (see DESIGN.md,
//! "Hermetic dependency policy").
//!
//! Source half: every crate must carry `#![forbid(unsafe_code)]`, and no
//! crate outside `tiera-support` may name `std::sync::Mutex` /
//! `std::sync::RwLock` directly — the support crate's deadline-aware
//! wrappers (`tiera_support::sync`) are the only sanctioned lock types, so
//! lock-acquisition policy stays in one place.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/support -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("support crate lives two levels below the workspace root")
        .to_path_buf()
}

/// Extracts dependency names from the `[dependencies]`,
/// `[dev-dependencies]`, `[build-dependencies]`, and
/// `[workspace.dependencies]` sections of a manifest. A deliberately
/// simple line-based parse: every dependency the workspace uses is
/// declared as `name.workspace = true`, `name = { path = … }`, or
/// `name = "version"` on its own line.
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_dep_section = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            );
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name.workspace = true` or `name = …`
        let name = line
            .split(['=', '.', ' '])
            .next()
            .unwrap_or_default()
            .trim();
        if !name.is_empty() {
            deps.push(name.to_string());
        }
    }
    deps
}

/// All `.rs` files under `dir`, recursively (src/bin/, tests/, ...).
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries {
        let path = entry.expect("read dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Crate directories under `crates/`, sorted for stable failure output.
fn crate_dirs() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))
        .expect("crates/ directory")
        .map(|e| e.expect("read crates/ entry").path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

#[test]
fn no_external_dependencies_anywhere() {
    let root = workspace_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).expect("crates/ directory") {
        let path = entry.expect("read crates/ entry").path().join("Cargo.toml");
        assert!(
            path.is_file(),
            "every crates/* directory must have a Cargo.toml: {path:?}"
        );
        manifests.push(path);
    }
    assert!(
        manifests.len() >= 14,
        "expected the workspace root and 13+ member manifests (including \
         crates/chaos), found {}",
        manifests.len()
    );

    let mut violations = Vec::new();
    for manifest_path in &manifests {
        let text = fs::read_to_string(manifest_path)
            .unwrap_or_else(|e| panic!("read {manifest_path:?}: {e}"));
        for dep in dependency_names(&text) {
            if !dep.starts_with("tiera-") && dep != "tiera" {
                violations.push(format!("{}: `{dep}`", manifest_path.display()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (only in-repo `tiera-*` path crates \
         are allowed; add the needed functionality to `tiera-support` instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn banned_crate_names_absent_from_manifests() {
    // Belt and braces for the review-time grep: the historical crates-io
    // names must not appear in any member manifest in any form.
    let banned = [
        "parking_lot",
        "crossbeam",
        "proptest",
        "criterion",
        "rand",
        "bytes",
    ];
    let root = workspace_root();
    for entry in fs::read_dir(root.join("crates")).expect("crates/ directory") {
        let path = entry.expect("read crates/ entry").path().join("Cargo.toml");
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('#') {
                continue;
            }
            for name in banned {
                // Word-boundary match so e.g. the description "replaces
                // criterion" in prose is caught too only when it names the
                // crate as a dependency key.
                if line.starts_with(name)
                    && line[name.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c == '.' || c == ' ' || c == '=')
                {
                    panic!("banned dependency `{name}` named in {path:?}: {line}");
                }
            }
        }
    }
}

#[test]
fn every_crate_forbids_unsafe_code() {
    let mut missing = Vec::new();
    for dir in crate_dirs() {
        let lib = dir.join("src").join("lib.rs");
        let text =
            fs::read_to_string(&lib).unwrap_or_else(|e| panic!("read {lib:?}: {e}"));
        if !text.contains("#![forbid(unsafe_code)]") {
            missing.push(lib.display().to_string());
        }
    }
    assert!(
        missing.is_empty(),
        "crates without `#![forbid(unsafe_code)]`:\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn std_sync_locks_only_in_support() {
    // `tiera_support::sync::{Mutex, RwLock}` are the only lock types the
    // workspace may use; reaching for std's directly bypasses the support
    // crate's poisoning policy. The support crate itself wraps them and is
    // exempt.
    let mut violations = Vec::new();
    for dir in crate_dirs() {
        if dir.file_name().is_some_and(|n| n == "support") {
            continue;
        }
        let mut sources = Vec::new();
        rust_sources(&dir, &mut sources);
        sources.sort();
        for path in sources {
            let text =
                fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
            for (i, raw) in text.lines().enumerate() {
                let line = raw.trim();
                if line.starts_with("//") || line.starts_with("//!") {
                    continue;
                }
                if line.contains("std::sync::")
                    && (line.contains("Mutex") || line.contains("RwLock"))
                {
                    violations.push(format!("{}:{}: {line}", path.display(), i + 1));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "direct std::sync lock usage outside tiera-support \
         (use `tiera_support::sync` instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn wire_decoders_cannot_panic_on_hostile_input() {
    // `crates/rpc/src/proto.rs` is the only code that parses bytes an
    // untrusted peer controls; every decode path there must return
    // `io::Result`, never panic. The proto fuzz suite exercises this
    // dynamically; this lint pins it statically: outside the `#[cfg(test)]`
    // module, no panicking construct may appear in the file at all. (Even
    // `unwrap` on a value "known" to be fine is banned — refactors have a
    // way of breaking such knowledge silently.)
    let proto = workspace_root()
        .join("crates")
        .join("rpc")
        .join("src")
        .join("proto.rs");
    let text = fs::read_to_string(&proto).unwrap_or_else(|e| panic!("read {proto:?}: {e}"));
    // Everything from the test-module marker onward is non-shipping code.
    let shipping = match text.find("#[cfg(test)]") {
        Some(idx) => &text[..idx],
        None => &text[..],
    };
    let banned = [
        ".unwrap(",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
        "assert!(",
        "assert_eq!(",
        "assert_ne!(",
        "[0]", // direct indexing is a panic in disguise
    ];
    let mut violations = Vec::new();
    for (i, raw) in shipping.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("//") || line.starts_with("//!") {
            continue;
        }
        for pat in banned {
            if line.contains(pat) {
                violations.push(format!("{}:{}: {line}", proto.display(), i + 1));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "panicking construct reachable from wire input in proto.rs \
         (return io::Result instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn registry_hot_path_uses_fx_hash_maps() {
    // The sharded registry hashes every key twice per operation (shard
    // pick + in-shard probe); `tiera_support::collections::FxHashMap` is
    // the sanctioned map type there — a default-hashed
    // `std::collections::HashMap` would silently reintroduce SipHash *and*
    // per-process-random iteration order, which previously made experiment
    // output drift run to run. Exemption: `matches`/`select` may build a
    // transient `HashSet` for `Not`-complement evaluation (attacker-ignorant,
    // not per-key hot), and every crate other than the registry keeps
    // default hashing for DoS resistance.
    let registry = workspace_root()
        .join("crates")
        .join("core")
        .join("src")
        .join("registry.rs");
    let text =
        fs::read_to_string(&registry).unwrap_or_else(|e| panic!("read {registry:?}: {e}"));
    let mut violations = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("//") {
            continue;
        }
        // A bare `HashMap<` (not Fx-prefixed, not explicitly parameterized
        // with a hasher) in the registry is a default-hashed map.
        if line.contains("HashMap<") && !line.contains("FxHashMap<") {
            violations.push(format!("{}:{}: {line}", registry.display(), i + 1));
        }
        if line.contains("use std::collections::HashMap") {
            violations.push(format!("{}:{}: {line}", registry.display(), i + 1));
        }
    }
    assert!(
        violations.is_empty(),
        "default-hashed HashMap in the registry hot path \
         (use `tiera_support::collections::FxHashMap`):\n  {}",
        violations.join("\n  ")
    );
}
