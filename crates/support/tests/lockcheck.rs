//! Runtime lock-order sanitizer tests (`--features lockcheck`).
//!
//! Each test uses its own lock names: the acquired-while-held edge set is
//! process-global, so reusing a name across tests would entangle their
//! graphs.

#![cfg(feature = "lockcheck")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use tiera_support::sync::{Mutex, RwLock, LOCKCHECK};

fn panic_message(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a lockcheck panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn lockcheck_flag_is_on_in_this_build() {
    assert!(LOCKCHECK);
}

#[test]
fn seeded_rank_inversion_panics_with_both_sites() {
    let hi = Mutex::named("inv.hi", 200, 0u32);
    let lo = Mutex::named("inv.lo", 100, 0u32);
    let msg = panic_message(|| {
        let _h = hi.lock();
        let _l = lo.lock(); // rank 100 under rank 200: inversion
    });
    assert!(msg.contains("order inversion"), "message: {msg}");
    assert!(msg.contains("`inv.lo` (rank 100)"), "message: {msg}");
    assert!(msg.contains("`inv.hi` (rank 200)"), "message: {msg}");
    // Both acquisition sites are cited.
    assert_eq!(msg.matches("lockcheck.rs").count(), 2, "message: {msg}");
}

#[test]
fn reacquiring_the_same_name_panics() {
    // All registry shards share the name "registry.shard"; this rule is
    // what forbids holding two shards at once.
    let a = Mutex::named("dup.x", 300, 0u32);
    let b = Mutex::named("dup.x", 300, 0u32);
    let msg = panic_message(|| {
        let _a = a.lock();
        let _b = b.lock();
    });
    assert!(msg.contains("re-acquiring `dup.x`"), "message: {msg}");
}

#[test]
fn equal_rank_cycle_closing_edge_panics() {
    // Equal ranks pass the rank gate, so ordering between them is enforced
    // by the global edge set: whichever order a process uses first wins.
    let a = RwLock::named("cyc.a", 400, 0u32);
    let b = RwLock::named("cyc.b", 400, 0u32);
    {
        let _a = a.write();
        let _b = b.read(); // records cyc.a → cyc.b
    }
    let msg = panic_message(|| {
        let _b = b.write();
        let _a = a.read(); // would record cyc.b → cyc.a: a cycle
    });
    assert!(msg.contains("closes a cycle"), "message: {msg}");
    assert!(msg.contains("`cyc.a`"), "message: {msg}");
    assert!(msg.contains("`cyc.b`"), "message: {msg}");
}

#[test]
fn ordered_acquisition_is_clean() {
    let outer = Mutex::named("ok.outer", 500, 0u32);
    let inner = RwLock::named("ok.inner", 510, 0u32);
    for _ in 0..3 {
        let o = outer.lock();
        let i = inner.write();
        assert_eq!(*o + *i, 0);
    }
}

#[test]
fn sequential_acquisition_ignores_rank() {
    // Ranks order *nested* acquisition only; once the high-rank guard is
    // dropped, taking a lower-ranked lock is fine.
    let hi = Mutex::named("seq.hi", 600, 0u32);
    let lo = Mutex::named("seq.lo", 590, 0u32);
    drop(hi.lock());
    drop(lo.lock());
}

#[test]
fn anonymous_locks_are_exempt_from_checking() {
    // Unnamed locks have no metadata; nesting them any way round is not
    // the sanitizer's business (A007 nudges shipped code to name them).
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    let _b = b.lock();
    let _a = a.lock();
}

#[test]
fn held_stack_survives_a_caught_inversion() {
    // The inversion panic fires before any bookkeeping is pushed, so after
    // catching it the outer guard still releases cleanly and ordinary
    // locking continues to work on this thread.
    let hi = Mutex::named("rec.hi", 700, 0u32);
    let lo = Mutex::named("rec.lo", 690, 0u32);
    {
        let _h = hi.lock();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _l = lo.lock();
        }));
        assert!(err.is_err());
    }
    // Correct order now succeeds.
    let _l = lo.lock();
    let _h = hi.lock();
}
