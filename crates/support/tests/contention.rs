//! Multi-threaded behaviour of the tiera-support primitives: lock
//! exclusion and fairness under contention, mpmc channel ordering and
//! disconnect semantics, and `Bytes` aliasing across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use tiera_support::channel::{self, RecvError};
use tiera_support::sync::{Mutex, RwLock};
use tiera_support::Bytes;

#[test]
fn mutex_counter_under_contention() {
    let counter = Arc::new(Mutex::new(0u64));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let counter = Arc::clone(&counter);
        handles.push(thread::spawn(move || {
            for _ in 0..10_000 {
                *counter.lock() += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*counter.lock(), 80_000);
}

#[test]
fn mutex_guard_is_exclusive() {
    // Two threads alternately extend a vector by non-atomic read-modify-
    // write; exclusion is violated iff an index is skipped or repeated.
    let v = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let v = Arc::clone(&v);
        handles.push(thread::spawn(move || {
            for _ in 0..2_000 {
                let mut g = v.lock();
                let next = g.len();
                g.push(next);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let v = v.lock();
    assert_eq!(v.len(), 8_000);
    assert!(v.iter().enumerate().all(|(i, &x)| i == x));
}

#[test]
fn rwlock_readers_share_writers_exclude() {
    let data = Arc::new(RwLock::new(vec![0u64; 64]));
    let writes = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    // Writers keep every slot equal; readers assert they never observe a
    // torn (mixed-value) snapshot.
    for w in 0..2u64 {
        let data = Arc::clone(&data);
        let writes = Arc::clone(&writes);
        handles.push(thread::spawn(move || {
            for i in 0..1_000 {
                let mut g = data.write();
                let value = w * 1_000_000 + i;
                for slot in g.iter_mut() {
                    *slot = value;
                }
                writes.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for _ in 0..4 {
        let data = Arc::clone(&data);
        handles.push(thread::spawn(move || {
            for _ in 0..2_000 {
                let g = data.read();
                let first = g[0];
                assert!(
                    g.iter().all(|&x| x == first),
                    "reader observed a torn write"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(writes.load(Ordering::Relaxed), 2_000);
}

#[test]
fn channel_mpmc_delivers_every_message_once() {
    let (tx, rx) = channel::unbounded::<u64>();
    let mut producers = Vec::new();
    for p in 0..4u64 {
        let tx = tx.clone();
        producers.push(thread::spawn(move || {
            for i in 0..5_000 {
                tx.send(p * 5_000 + i).unwrap();
            }
        }));
    }
    drop(tx);
    let mut consumers = Vec::new();
    for _ in 0..4 {
        let rx = rx.clone();
        consumers.push(thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    let mut all: Vec<u64> = consumers
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..20_000).collect::<Vec<u64>>());
}

#[test]
fn channel_preserves_per_sender_order() {
    let (tx, rx) = channel::unbounded::<u64>();
    let sender = thread::spawn(move || {
        for i in 0..10_000 {
            tx.send(i).unwrap();
        }
    });
    // Single consumer: the sequence must arrive strictly in send order.
    let mut expected = 0;
    while let Ok(v) = rx.recv() {
        assert_eq!(v, expected);
        expected += 1;
    }
    assert_eq!(expected, 10_000);
    sender.join().unwrap();
}

#[test]
fn channel_disconnect_wakes_all_blocked_receivers() {
    let (tx, rx) = channel::unbounded::<u64>();
    let mut waiters = Vec::new();
    for _ in 0..4 {
        let rx = rx.clone();
        waiters.push(thread::spawn(move || rx.recv()));
    }
    // Give the receivers time to block, then disconnect.
    thread::sleep(std::time::Duration::from_millis(50));
    drop(tx);
    for w in waiters {
        assert_eq!(w.join().unwrap(), Err(RecvError));
    }
}

#[test]
fn bytes_clones_share_storage_across_threads() {
    let payload = Bytes::from(vec![7u8; 1 << 20]);
    let mut handles = Vec::new();
    for _ in 0..8 {
        let view = payload.clone();
        handles.push(thread::spawn(move || {
            let mid = view.slice(1024..2048);
            assert_eq!(mid.len(), 1024);
            assert!(view.iter().all(|&b| b == 7));
            mid
        }));
    }
    for h in handles {
        let mid = h.join().unwrap();
        assert!(mid.iter().all(|&b| b == 7));
    }
    // The original is untouched by concurrent slicing.
    assert_eq!(payload.len(), 1 << 20);
}
