//! An unbounded multi-producer multi-consumer channel.
//!
//! Replacement for the `crossbeam::channel` API subset Tiera uses: both
//! [`Sender`] and [`Receiver`] are cloneable, so a pool of worker threads
//! can share one receiver (the RPC server's accept→worker hand-off).
//! Disconnection follows crossbeam's rules: `send` fails once every
//! receiver is gone; `recv` drains buffered messages and only then reports
//! disconnection once every sender is gone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Error returned by [`Sender::send`] when all receivers have dropped.
/// Carries the rejected message back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message buffered right now, but senders remain.
    Empty,
    /// No message buffered and every sender has dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// No message buffered and every sender has dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    available: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel. Cloneable (mpmc).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded mpmc channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, waking one blocked receiver. Fails only when every
    /// receiver has dropped, handing the value back.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.shared.lock().push_back(value);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers so they can
            // observe the disconnect.
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender has dropped.
    /// Buffered messages are always delivered before a disconnect error.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .available
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(v) = queue.pop_front() {
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .available
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn drained_then_disconnected() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
