//! Non-poisoning lock wrappers over `std::sync`, with an optional
//! lock-order sanitizer.
//!
//! Drop-in for the `parking_lot` API subset Tiera uses: `Mutex::lock`,
//! `RwLock::read` / `RwLock::write` returning guards directly rather than
//! `Result`s. Where `parking_lot` never poisons by construction, these
//! wrappers recover from std's poisoning: a panic while holding a guard
//! leaves the protected data in whatever state the panicking section
//! reached, and subsequent lockers proceed — exactly the semantics the
//! seed was written against.
//!
//! ## Named, ranked locks
//!
//! A lock constructed with [`Mutex::named`] / [`RwLock::named`] carries a
//! `&'static str` name and a `u16` rank from the workspace [`rank`] table.
//! Names make the lock visible to the `tiera-analyze` static pass (which
//! extracts per-function acquisition sequences and checks them against the
//! declared ranks), and they arm the runtime sanitizer below. `new()` stays
//! available for anonymous leaf locks in single-lock modules.
//!
//! ## The `lockcheck` sanitizer
//!
//! With the `lockcheck` cargo feature enabled, every acquisition of a
//! *named* lock is checked against a per-thread held-lock stack and a
//! global acquired-while-held edge set:
//!
//! * acquiring a lock of **strictly lower rank** than any lock the thread
//!   already holds panics (order inversion), naming both acquisition
//!   sites;
//! * acquiring a lock with the **same name** as one already held panics
//!   (self-cycle — this is what enforces "never two registry shards at
//!   once": all shards share one name);
//! * recording an acquired-while-held edge that **closes a cycle** in the
//!   global edge graph panics, again with both sites.
//!
//! Checks run *before* blocking on the underlying lock, so a potential
//! deadlock is reported even on interleavings where it would not have
//! deadlocked. With the feature disabled (the default, and the only
//! configuration benchmarks may use) the name/rank metadata is not even
//! stored and every hook compiles to nothing.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// The workspace lock-rank table: the single source of truth shared by the
/// runtime sanitizer and the `tiera-analyze` static pass.
///
/// Rank increases "inward": a thread may only acquire locks of equal or
/// higher rank than everything it already holds (equal-rank acquisitions
/// of *differently named* locks are ordered by the dynamic edge set
/// instead). The tiers of the table, outermost first:
///
/// 1. facade crates that call into an [`Instance`] while holding their own
///    state (`tiera-db`, `tiera-fs`), and the cluster plane above them
///    (documented order **ring → meta → node**; node state may be held
///    across a call into the node's backing instance, ring/meta never
///    across node IO — see `crates/cluster/src/coordinator.rs`);
/// 2. the policy rule list, held while metrics are evaluated;
/// 3. instance-level state (`tiers`, `keyring`, `background`, `retry`,
///    `retry_rng`, `alerts`);
/// 4. the registry (documented order **shard → order → aggregates**, with
///    `dedup` an independent leaf — see `crates/core/src/registry.rs`);
/// 5. the metastore shards (documented order **commit → queue → index**;
///    every shard of a kind shares one name, so two shards' same-kind
///    locks can never be held together);
/// 6. tier internals (simulated + in-memory tiers, provisioner, fault
///    injector, shared-bandwidth and serial resources);
/// 7. the stats stripes (pure leaves).
///
/// The RPC server holds no locks of its own — its worker and writer
/// threads synchronize exclusively through `tiera_support::channel`, whose
/// internal queue lock is below every name here and never held across a
/// call into ranked code.
///
/// [`Instance`]: ../../tiera_core/instance/struct.Instance.html
pub mod rank {
    /// `tiera-db` engine shared state (buffer pool, journal); held across
    /// page faults into the backing instance.
    pub const DB_SHARED: u16 = 10;
    /// `tiera-db` in-memory table rows.
    pub const DB_ROWS: u16 = 12;
    /// `tiera-fs` path → length table; held across instance IO on the
    /// manifest path.
    pub const FS_FILES: u16 = 16;
    /// The cluster hash ring + rebalance plan (`tiera-cluster`); snapshot
    /// owners out and drop before any node IO.
    pub const CLUSTER_RING: u16 = 17;
    /// The coordinator's authoritative per-key metadata (version,
    /// checksum, tombstones); never held across node IO.
    pub const CLUSTER_META: u16 = 18;
    /// One cluster node's local state (fault flags, idempotency table).
    /// All nodes share the name: holding two nodes' state locks at once
    /// is a self-cycle and panics under lockcheck.
    pub const CLUSTER_NODE: u16 = 19;
    /// The installed policy rule list; held while rule guards and metrics
    /// are evaluated against the registry and tiers.
    pub const POLICY_RULES: u16 = 20;
    /// The instance's attached-tier list.
    pub const INSTANCE_TIERS: u16 = 30;
    /// The instance's encryption keyring.
    pub const INSTANCE_KEYRING: u16 = 32;
    /// The background work queue.
    pub const INSTANCE_BACKGROUND: u16 = 34;
    /// The installed retry policy.
    pub const INSTANCE_RETRY: u16 = 36;
    /// The retry-jitter RNG.
    pub const INSTANCE_RETRY_RNG: u16 = 38;
    /// The failure-alert buffer.
    pub const INSTANCE_ALERTS: u16 = 40;
    /// One registry key shard (all [`SHARD_COUNT`] shards share this name:
    /// holding two at once is a self-cycle and panics under lockcheck).
    ///
    /// [`SHARD_COUNT`]: ../../tiera_core/registry/constant.SHARD_COUNT.html
    pub const REGISTRY_SHARD: u16 = 50;
    /// The registry's cross-shard order indexes.
    pub const REGISTRY_ORDER: u16 = 52;
    /// The registry's per-tier aggregates.
    pub const REGISTRY_AGGREGATES: u16 = 54;
    /// The `storeOnce` dedup digest table (leaf: never held together with
    /// the other registry locks).
    pub const REGISTRY_DEDUP: u16 = 56;
    /// A metastore shard's durability state (log writer, segment chain);
    /// held across file IO by design (the log write *is* the critical
    /// section). All shards share the name, so holding two shards' commit
    /// locks at once is itself a violation.
    pub const METASTORE_COMMIT: u16 = 58;
    /// A metastore shard's group-commit queue (drained by the batch
    /// leader under the commit lock; only ever `try_recv`-style
    /// non-blocking work happens under it).
    pub const METASTORE_QUEUE: u16 = 60;
    /// A metastore shard's read index (`RwLock`; readers never touch the
    /// commit or queue locks).
    pub const METASTORE_INDEX: u16 = 62;
    /// `DedupTier` wrapper state (key→digest map, refcounted blob table).
    /// Held across inner-tier IO by design, so it must rank below every
    /// inner tier lock (`SIMTIER_*`, `MEMTIER_*`) *and* below
    /// `TIERX_COMPRESS`: the canonical wrapper stack is
    /// `Dedup(Compressed(inner))`, dedup outermost.
    pub const TIERX_DEDUP: u16 = 64;
    /// `CompressedTier` wrapper state (per-key logical/physical byte
    /// ledger). Held across inner-tier IO; ranks above `TIERX_DEDUP`
    /// (compress is the inner wrapper) and below the tier locks proper.
    pub const TIERX_COMPRESS: u16 = 66;
    /// Simulated tier: last observed capacity (reshard detection).
    pub const SIMTIER_LAST_SEEN: u16 = 74;
    /// Simulated tier: latency-model RNG.
    pub const SIMTIER_RNG: u16 = 76;
    /// Simulated tier: object map + usage counters.
    pub const SIMTIER_STATE: u16 = 78;
    /// In-memory test tier: object map + usage counters.
    pub const MEMTIER_STATE: u16 = 80;
    /// In-memory test tier: capacity cell (acquired under `MEMTIER_STATE`
    /// on the admission path).
    pub const MEMTIER_CAPACITY: u16 = 82;
    /// Provisioner state (acquired under `SIMTIER_STATE` on the admission
    /// path).
    pub const PROVISION_STATE: u16 = 84;
    /// Fault injector: scheduled failure windows.
    pub const FAILURE_WINDOWS: u16 = 86;
    /// Fault injector: probabilistic fault specs.
    pub const FAILURE_SPECS: u16 = 88;
    /// Fault injector: seeded draw stream (acquired under
    /// `FAILURE_SPECS`).
    pub const FAILURE_RNG: u16 = 90;
    /// Shared-bandwidth reservation map.
    pub const BANDWIDTH_BUSY: u16 = 92;
    /// Serial-resource reservation map.
    pub const SERIAL_BUSY: u16 = 94;
    /// One stats stripe (leaf; stripes are never nested).
    pub const STATS_STRIPE: u16 = 96;

    /// Every named lock in the workspace with its declared rank, sorted by
    /// rank. `tiera-analyze` checks static acquisition sequences against
    /// this table; the lockcheck sanitizer asserts each `named()` site
    /// passes the rank declared here.
    pub const RANK_TABLE: &[(&str, u16)] = &[
        ("db.shared", DB_SHARED),
        ("db.rows", DB_ROWS),
        ("fs.files", FS_FILES),
        ("cluster.ring", CLUSTER_RING),
        ("cluster.meta", CLUSTER_META),
        ("cluster.node", CLUSTER_NODE),
        ("policy.rules", POLICY_RULES),
        ("instance.tiers", INSTANCE_TIERS),
        ("instance.keyring", INSTANCE_KEYRING),
        ("instance.background", INSTANCE_BACKGROUND),
        ("instance.retry", INSTANCE_RETRY),
        ("instance.retry_rng", INSTANCE_RETRY_RNG),
        ("instance.alerts", INSTANCE_ALERTS),
        ("registry.shard", REGISTRY_SHARD),
        ("registry.order", REGISTRY_ORDER),
        ("registry.aggregates", REGISTRY_AGGREGATES),
        ("registry.dedup", REGISTRY_DEDUP),
        ("metastore.commit", METASTORE_COMMIT),
        ("metastore.queue", METASTORE_QUEUE),
        ("metastore.index", METASTORE_INDEX),
        ("tierx.dedup", TIERX_DEDUP),
        ("tierx.compress", TIERX_COMPRESS),
        ("simtier.last_seen", SIMTIER_LAST_SEEN),
        ("simtier.rng", SIMTIER_RNG),
        ("simtier.state", SIMTIER_STATE),
        ("memtier.state", MEMTIER_STATE),
        ("memtier.capacity", MEMTIER_CAPACITY),
        ("provision.state", PROVISION_STATE),
        ("failure.windows", FAILURE_WINDOWS),
        ("failure.specs", FAILURE_SPECS),
        ("failure.rng", FAILURE_RNG),
        ("bandwidth.busy", BANDWIDTH_BUSY),
        ("serial.busy", SERIAL_BUSY),
        ("stats.stripe", STATS_STRIPE),
    ];

    /// The declared rank of a lock name, if it is in the table.
    pub fn of(name: &str) -> Option<u16> {
        RANK_TABLE
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, r)| r)
    }
}

/// Whether this build of `tiera-support` carries the lockcheck sanitizer.
/// Benchmarks refuse to run when this is `true` (`scripts/bench.sh`):
/// sanitized numbers are not comparable to the committed baselines.
pub const LOCKCHECK: bool = cfg!(feature = "lockcheck");

#[cfg(feature = "lockcheck")]
mod lockcheck {
    //! The runtime lock-order sanitizer (see the module docs above).
    //!
    //! A per-thread stack records every named lock the thread holds, with
    //! the `#[track_caller]` acquisition site. A process-global edge set
    //! records, for every ordered pair of names, the first acquisition
    //! sites that established "B acquired while A held". Rank inversions
    //! and cycle-closing edges panic before the underlying lock is even
    //! attempted, so the report fires deterministically — not just on the
    //! interleaving that happens to deadlock.

    use std::cell::{Cell, RefCell};
    use std::collections::{HashMap, HashSet};
    use std::panic::Location;
    use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

    /// A held named lock.
    struct Held {
        id: u64,
        name: &'static str,
        rank: u16,
        at: &'static Location<'static>,
    }

    /// Handle identifying one acquisition on the holding thread's stack;
    /// returned by [`acquire`], consumed by [`release`] from guard `Drop`.
    pub(super) struct Token(u64);

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    }

    /// `held name → (acquired name → (holding site, acquiring site))`.
    type EdgeMap = HashMap<
        &'static str,
        HashMap<&'static str, (&'static Location<'static>, &'static Location<'static>)>,
    >;

    fn edges() -> &'static StdMutex<EdgeMap> {
        static EDGES: OnceLock<StdMutex<EdgeMap>> = OnceLock::new();
        EDGES.get_or_init(|| StdMutex::new(HashMap::new()))
    }

    /// Whether `to` is reachable from `from` in the edge graph.
    fn reaches(map: &EdgeMap, from: &'static str, to: &'static str) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = map.get(n) {
                stack.extend(next.keys().copied());
            }
        }
        false
    }

    /// Checks and records the acquisition of `(name, rank)` at `at`.
    pub(super) fn acquire(
        meta: Option<(&'static str, u16)>,
        at: &'static Location<'static>,
    ) -> Option<Token> {
        let (name, rank) = meta?;
        debug_assert!(
            super::rank::of(name).is_none_or(|declared| declared == rank),
            "lock `{name}` constructed with rank {rank}, but the rank table \
             declares {:?}",
            super::rank::of(name)
        );
        // `try_with`: guards dropped during thread teardown (after TLS
        // destruction) silently skip the bookkeeping rather than abort.
        HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            for h in held.iter() {
                if rank < h.rank {
                    panic!(
                        "lockcheck: order inversion — acquiring `{name}` (rank {rank}) \
                         at {at} while holding `{}` (rank {}) acquired at {}",
                        h.name, h.rank, h.at
                    );
                }
                if h.name == name {
                    panic!(
                        "lockcheck: cycle — re-acquiring `{name}` at {at} while \
                         already holding it (acquired at {})",
                        h.at
                    );
                }
            }
            if !held.is_empty() {
                let mut edges = edges().lock().unwrap_or_else(PoisonError::into_inner);
                for h in held.iter() {
                    if edges.get(h.name).is_some_and(|m| m.contains_key(name)) {
                        continue; // edge already known (and acyclic)
                    }
                    if reaches(&edges, name, h.name) {
                        let (prior_hold, prior_acq) = edges
                            .get(name)
                            .and_then(|m| m.values().next())
                            .map(|&(a, b)| (a, b))
                            .unwrap_or((at, at));
                        panic!(
                            "lockcheck: cycle — acquiring `{name}` at {at} while \
                             holding `{}` (acquired at {}) closes a cycle: `{name}` \
                             was previously held first (e.g. held at {prior_hold}, \
                             acquiring at {prior_acq})",
                            h.name, h.at
                        );
                    }
                    edges.entry(h.name).or_default().insert(name, (h.at, at));
                }
            }
            let id = NEXT_ID.with(|n| {
                let id = n.get();
                n.set(id + 1);
                id
            });
            held.push(Held { id, name, rank, at });
            Token(id)
        })
        .ok()
    }

    /// Pops the acquisition identified by `token` off the holder's stack.
    pub(super) fn release(token: Token) {
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.id == token.0) {
                held.remove(pos);
            }
        });
    }
}

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    meta: Option<(&'static str, u16)>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    token: Option<lockcheck::Token>,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new anonymous mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lockcheck")]
            meta: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a named mutex with a declared rank (see [`rank`]). The name
    /// makes the lock visible to `tiera-analyze` and to the lockcheck
    /// sanitizer; with the `lockcheck` feature disabled the metadata is
    /// not stored at all.
    pub const fn named(name: &'static str, rank: u16, value: T) -> Self {
        #[cfg(not(feature = "lockcheck"))]
        let _ = (name, rank);
        Self {
            #[cfg(feature = "lockcheck")]
            meta: Some((name, rank)),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let token = lockcheck::acquire(self.meta, std::panic::Location::caller());
        MutexGuard {
            #[cfg(feature = "lockcheck")]
            token,
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            lockcheck::release(token);
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    meta: Option<(&'static str, u16)>,
    inner: std::sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    token: Option<lockcheck::Token>,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    token: Option<lockcheck::Token>,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new anonymous lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lockcheck")]
            meta: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a named lock with a declared rank (see [`rank`] and
    /// [`Mutex::named`]). Read acquisitions participate in order checking
    /// exactly like writes: reader/writer inversions deadlock too.
    pub const fn named(name: &'static str, rank: u16, value: T) -> Self {
        #[cfg(not(feature = "lockcheck"))]
        let _ = (name, rank);
        Self {
            #[cfg(feature = "lockcheck")]
            meta: Some((name, rank)),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let token = lockcheck::acquire(self.meta, std::panic::Location::caller());
        RwLockReadGuard {
            #[cfg(feature = "lockcheck")]
            token,
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access. Never poisons.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let token = lockcheck::acquire(self.meta, std::panic::Location::caller());
        RwLockWriteGuard {
            #[cfg(feature = "lockcheck")]
            token,
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            lockcheck::release(token);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            lockcheck::release(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // std would poison here; the wrapper must recover.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_survives_panicking_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("die holding the write lock");
        })
        .join();
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn named_locks_behave_like_anonymous_ones() {
        let m = Mutex::named("test.sync.basic_m", 1, 5u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
        let l = RwLock::named("test.sync.basic_l", 2, vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn rank_table_is_sorted_and_unique() {
        for pair in rank::RANK_TABLE.windows(2) {
            assert!(
                pair[0].1 < pair[1].1,
                "rank table must be strictly increasing: {:?} then {:?}",
                pair[0],
                pair[1]
            );
            assert_ne!(pair[0].0, pair[1].0);
        }
        assert_eq!(rank::of("registry.shard"), Some(rank::REGISTRY_SHARD));
        assert_eq!(rank::of("no.such.lock"), None);
    }

    #[test]
    fn registry_rank_order_matches_documented_comment() {
        // crates/core/src/registry.rs documents "shard → order →
        // aggregates", dedup leaf-only. The declared ranks must agree.
        assert!(rank::REGISTRY_SHARD < rank::REGISTRY_ORDER);
        assert!(rank::REGISTRY_ORDER < rank::REGISTRY_AGGREGATES);
        assert!(rank::REGISTRY_AGGREGATES < rank::REGISTRY_DEDUP);
    }
}
