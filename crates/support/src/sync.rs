//! Non-poisoning lock wrappers over `std::sync`.
//!
//! Drop-in for the `parking_lot` API subset Tiera uses: `Mutex::lock`,
//! `RwLock::read` / `RwLock::write` returning guards directly rather than
//! `Result`s. Where `parking_lot` never poisons by construction, these
//! wrappers recover from std's poisoning: a panic while holding a guard
//! leaves the protected data in whatever state the panicking section
//! reached, and subsequent lockers proceed — exactly the semantics the
//! seed was written against.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // std would poison here; the wrapper must recover.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_survives_panicking_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("die holding the write lock");
        })
        .join();
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
