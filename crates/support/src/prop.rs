//! A tiny property-testing harness driven by [`SimRng`].
//!
//! Replacement for the `proptest` usage in the workspace's dev-tests. A
//! property is an ordinary closure over a [`SimRng`]; the [`prop_check!`]
//! macro runs it for a fixed number of cases, deriving each case's
//! generator deterministically from a base seed and the case index. A
//! failing case therefore prints the exact seed that reproduces it, and
//! reruns are bit-identical — no shrink corpus files, no OS entropy.
//!
//! Generators are plain functions in [`gen`] rather than a combinator DSL:
//! where proptest wrote `vec(any::<u8>(), 0..512)` a property here writes
//! `gen::byte_vec(rng, 0..512)`.

use crate::rng::SimRng;

/// Default number of cases run by [`prop_check!`] when unspecified.
pub const DEFAULT_CASES: u64 = 64;

/// Default base seed for [`prop_check!`]; override with `seed = …` or the
/// `TIERA_PROP_SEED` environment variable to explore other schedules.
pub const DEFAULT_SEED: u64 = 0x7_1E2A_5EED;

/// Runs `cases` deterministic cases of `property`. Used via [`prop_check!`].
///
/// Each case gets `SimRng::new(seed ^ splitmix(case_index))` so cases are
/// independent streams. On panic the failing case index and its exact
/// reproduction seed are printed before the panic propagates.
pub fn run_cases<F>(cases: u64, base_seed: u64, mut property: F)
where
    F: FnMut(&mut SimRng),
{
    let base_seed = std::env::var("TIERA_PROP_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(base_seed);
    for case in 0..cases {
        // Decorrelate case streams: feed the index through the same mixer
        // SimRng seeds with, so seeds 0,1,2… don't yield sibling states.
        let mut mix = case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ base_seed;
        mix ^= mix >> 29;
        let case_seed = mix.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let mut rng = SimRng::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "prop_check: case {case}/{cases} failed; reproduce with \
                 TIERA_PROP_SEED={base_seed} (case seed {case_seed:#x})"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Runs a property for many deterministic cases.
///
/// ```
/// use tiera_support::{prop_check, prop::gen};
/// prop_check!(cases = 32, |rng| {
///     let v = gen::byte_vec(rng, 0..64);
///     assert!(v.len() < 64);
/// });
/// ```
///
/// Accepted forms: `prop_check!(|rng| {…})`,
/// `prop_check!(cases = N, |rng| {…})`, and
/// `prop_check!(cases = N, seed = S, |rng| {…})`.
#[macro_export]
macro_rules! prop_check {
    (|$rng:ident| $body:expr) => {
        $crate::prop::run_cases($crate::prop::DEFAULT_CASES, $crate::prop::DEFAULT_SEED, |$rng| {
            $body
        })
    };
    (cases = $cases:expr, |$rng:ident| $body:expr) => {
        $crate::prop::run_cases($cases, $crate::prop::DEFAULT_SEED, |$rng| { $body })
    };
    (cases = $cases:expr, seed = $seed:expr, |$rng:ident| $body:expr) => {
        $crate::prop::run_cases($cases, $seed, |$rng| { $body })
    };
}

/// Generator functions for common shapes of random test data.
pub mod gen {
    use super::SimRng;
    use std::ops::Range;

    /// Uniform `usize` in `range` (half-open). An empty range yields its
    /// start.
    pub fn usize_in(rng: &mut SimRng, range: Range<usize>) -> usize {
        if range.is_empty() {
            return range.start;
        }
        range.start + rng.next_below((range.end - range.start) as u64) as usize
    }

    /// Uniform `u64` in `range` (half-open).
    pub fn u64_in(rng: &mut SimRng, range: Range<u64>) -> u64 {
        if range.is_empty() {
            return range.start;
        }
        range.start + rng.next_below(range.end - range.start)
    }

    /// A random byte vector with length drawn from `len` (half-open).
    pub fn byte_vec(rng: &mut SimRng, len: Range<usize>) -> Vec<u8> {
        let n = usize_in(rng, len);
        bytes(rng, n)
    }

    /// Exactly `n` random bytes.
    pub fn bytes(rng: &mut SimRng, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() + 8 <= n {
            out.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        while out.len() < n {
            out.push(rng.next_u64() as u8);
        }
        out
    }

    /// A random element of `choices` (panics on an empty slice, like
    /// indexing).
    pub fn pick<'a, T>(rng: &mut SimRng, choices: &'a [T]) -> &'a T {
        &choices[usize_in(rng, 0..choices.len())]
    }

    /// A string of characters drawn from `alphabet`, with length drawn
    /// from `len` (half-open).
    pub fn string_of(rng: &mut SimRng, alphabet: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = usize_in(rng, len);
        (0..n).map(|_| *pick(rng, &chars)).collect()
    }

    /// A string of printable ASCII (space through `~`, plus newline — the
    /// shape proptest's `"[ -~\n]"` regex generated).
    pub fn printable_ascii(rng: &mut SimRng, len: Range<usize>) -> String {
        let n = usize_in(rng, len);
        (0..n)
            .map(|_| {
                if rng.chance(0.03) {
                    '\n'
                } else {
                    (b' ' + rng.next_below(95) as u8) as char
                }
            })
            .collect()
    }

    /// A random boolean.
    pub fn boolean(rng: &mut SimRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    /// A vector of `len`-drawn length whose elements come from `item`.
    pub fn vec_of<T>(
        rng: &mut SimRng,
        len: Range<usize>,
        mut item: impl FnMut(&mut SimRng) -> T,
    ) -> Vec<T> {
        let n = usize_in(rng, len);
        (0..n).map(|_| item(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::gen;
    use crate::SimRng;

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            crate::prop_check!(cases = 5, seed = 42, |rng| {
                seen.push(rng.next_u64());
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn cases_differ_from_each_other() {
        let mut seen = std::collections::HashSet::new();
        crate::prop_check!(cases = 16, seed = 1, |rng| {
            assert!(seen.insert(rng.next_u64()), "case streams must differ");
        });
    }

    #[test]
    fn generators_respect_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..200 {
            assert!(gen::usize_in(&mut rng, 3..9) < 9);
            assert!(gen::usize_in(&mut rng, 3..9) >= 3);
            let v = gen::byte_vec(&mut rng, 0..17);
            assert!(v.len() < 17);
            let s = gen::string_of(&mut rng, "ab", 1..4);
            assert!((1..4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            let p = gen::printable_ascii(&mut rng, 0..40);
            assert!(p.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_bytes_length() {
        let mut rng = SimRng::new(4);
        for n in [0, 1, 7, 8, 9, 64, 1000] {
            assert_eq!(gen::bytes(&mut rng, n).len(), n);
        }
    }
}
