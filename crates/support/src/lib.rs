//! # tiera-support — hermetic stand-ins for external crates
//!
//! The reproduction environment has no network access, so the workspace
//! cannot fetch crates-io packages. Every external dependency the seed
//! leaned on is replaced here with a minimal, well-tested in-workspace
//! implementation of exactly the API subset Tiera uses:
//!
//! * [`Bytes`] — a cheaply-cloneable, `Arc`-backed immutable byte buffer
//!   (replaces the `bytes` crate).
//! * [`sync`] — non-poisoning [`sync::Mutex`] / [`sync::RwLock`] wrappers
//!   over `std::sync` (replaces the `parking_lot` API surface used).
//! * [`collections`] — [`collections::FxHashMap`] et al.: deterministic
//!   fast-hash maps for metadata hot paths (replaces `rustc-hash`/`fxhash`).
//! * [`channel`] — an unbounded mpmc channel with cloneable senders *and*
//!   receivers (replaces `crossbeam::channel`).
//! * [`rng`] — [`rng::SimRng`], the workspace's single deterministic
//!   randomness source (re-exported by `tiera-sim`; replaces `rand`).
//! * [`prop`] — the [`prop_check!`] property-testing harness driving
//!   generators off [`rng::SimRng`] (replaces `proptest`).
//! * [`bench`] — a micro-benchmark timer with a criterion-shaped API
//!   (replaces `criterion`).
//!
//! This crate sits at the bottom of the dependency graph and must stay
//! dependency-free: `cargo build --offline` on a bare Rust toolchain is the
//! contract, enforced by the hermeticity guard test. Determinism flows from
//! [`rng::SimRng`]: everything randomized — simulation jitter, workload key
//! sequences, property-test case generation — derives from explicit 64-bit
//! seeds, never from the wall clock or the OS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod bytes;
pub mod channel;
pub mod collections;
pub mod prop;
pub mod rng;
pub mod sync;

pub use bytes::Bytes;
pub use rng::SimRng;
