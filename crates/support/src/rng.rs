//! Deterministic pseudo-random numbers.
//!
//! The simulation must be reproducible end-to-end: the same seed yields the
//! same latency jitter, the same workload key sequence, the same failure
//! timings. We use a small, well-known generator (SplitMix64 to seed,
//! xoshiro256** to generate) implemented here so the whole repository has a
//! single, dependency-free source of randomness — simulation jitter,
//! workload distributions, and property-test case generation all draw from
//! [`SimRng`] (re-exported by `tiera-sim` for its historical home).

/// A seedable, splittable PRNG (xoshiro256** seeded via SplitMix64).
///
/// Not cryptographically secure — it drives simulations, never security.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for lack of modulo bias.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo < n {
                let threshold = n.wrapping_neg() % n;
                if lo < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Derives an independent child generator (for handing to a component).
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// Samples a value in `[1 - spread, 1 + spread]`, used for latency jitter.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        1.0 + (self.next_f64() * 2.0 - 1.0) * spread.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_below_in_bounds_and_covers() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn next_f64_uniformish() {
        let mut r = SimRng::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let j = r.jitter(0.2);
            assert!((0.8..=1.2).contains(&j));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
