//! Fast, deterministic hash maps for metadata hot paths.
//!
//! `std`'s default `RandomState` hasher is SipHash-1-3 seeded from the OS:
//! cryptographically strong, but several times slower than necessary for
//! short object keys, and non-deterministic across processes (map iteration
//! order changes run to run). The registry's sharded hot path hashes every
//! key twice per operation (shard pick + map probe), so it uses [`FxHashMap`]
//! instead: the FxHash multiply-xor construction (rustc's internal hasher),
//! which is deterministic, allocation-free, and fast on short strings.
//!
//! FxHash is *not* DoS-resistant. It is reserved for in-process metadata
//! maps whose keys the instance already admitted; anything hashing
//! attacker-controlled input on an open port should keep SipHash.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit FxHash seed (golden-ratio odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// rustc's FxHash: one multiply and one rotate-xor per 8-byte word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab\0" and "ab" differ.
            tail[7] = rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by FxHash: deterministic iteration seed and fast
/// probes. Use for in-process metadata maps, not attacker-facing tables.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` backed by FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a single value with FxHash (used for shard selection so the
/// shard pick and the in-shard probe share one hash function family).
pub fn fx_hash_one(value: &(impl std::hash::Hash + ?Sized)) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fx_hash_one("tiera"), fx_hash_one("tiera"));
        assert_ne!(fx_hash_one("tiera"), fx_hash_one("tierb"));
    }

    #[test]
    fn short_strings_with_shared_prefix_differ() {
        // The tail-length byte separates same-prefix keys shorter than a
        // word from each other and from their zero-padded extensions.
        assert_ne!(fx_hash_one("ab"), fx_hash_one("ab\0"));
        assert_ne!(fx_hash_one("a"), fx_hash_one("ab"));
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("key-42"), Some(&42));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.extend(m.values().copied());
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        // Sequential workload keys must spread across 16 shards instead of
        // clumping (the shard pick uses the top bits).
        let mut per_shard = [0u32; 16];
        for i in 0..1600 {
            let h = fx_hash_one(&format!("obj-{i}"));
            per_shard[(h >> 60) as usize] += 1;
        }
        for (shard, count) in per_shard.iter().enumerate() {
            assert!(
                (50..200).contains(count),
                "shard {shard} got {count}/1600 keys — bad spread: {per_shard:?}"
            );
        }
    }
}
