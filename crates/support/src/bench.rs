//! A micro-benchmark timer with a criterion-shaped API.
//!
//! Replacement for the `criterion` harness: the same `Criterion`,
//! `benchmark_group`, `bench_function`, `Throughput`, `BatchSize` surface
//! the seed's benches were written against, backed by a plain
//! `Instant`-based timer. Results print as median ns/iteration (plus
//! throughput when declared) over `sample_size` samples.
//!
//! Mode selection follows cargo's conventions: `cargo bench` invokes the
//! target with a `--bench` argument and gets full calibrated measurement;
//! any other invocation (notably `cargo test`, which runs bench targets as
//! smoke tests) executes each benchmark exactly once so the tier-1 gate
//! stays fast.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How the per-sample batch size is chosen for [`Bencher::iter_batched`].
/// All variants behave identically here; the enum exists for call-site
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Setup re-run for every routine invocation.
    PerIteration,
}

/// Declared work-per-iteration, used to print a throughput figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver (the criterion `Criterion` stand-in).
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to the target; anything else
        // (e.g. `cargo test` smoke-running the bench target) gets quick
        // mode: one iteration per benchmark, no calibration.
        let quick = !std::env::args().any(|a| a == "--bench");
        Self {
            sample_size: 20,
            quick,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        run_one(name.as_ref(), self.sample_size, self.quick, None, f);
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs a benchmark within this group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.quick,
            self.throughput,
            f,
        );
    }

    /// Ends the group (kept for call-site compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`, excluding setup time.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Target wall time per measured sample in full mode.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

fn run_one(
    name: &str,
    sample_size: usize,
    quick: bool,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    if quick {
        // Smoke execution: prove the benchmark runs, skip measurement.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name:<40} ok (quick mode; run `cargo bench` to measure)");
        return;
    }

    // Calibrate: grow the iteration count until one batch fills the
    // sample target, so per-sample timer overhead is negligible.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 30 {
            break;
        }
        // Aim straight for the target from the observed rate, with
        // headroom capped at 100x per round to dampen noisy first runs.
        let observed = b.elapsed.max(Duration::from_nanos(1));
        let scale = (SAMPLE_TARGET.as_nanos() / observed.as_nanos()).clamp(2, 100) as u64;
        iters = iters.saturating_mul(scale);
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let best = samples_ns[0];
    let worst = samples_ns[samples_ns.len() - 1];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let mbps = n as f64 / median * 1e9 / (1024.0 * 1024.0);
            format!("  {mbps:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let eps = n as f64 / median * 1e9;
            format!("  {eps:10.0} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<40} median {median:12.1} ns/iter  (min {best:.1}, max {worst:.1}, \
         {sample_size} samples x {iters} iters){rate}"
    );
}

/// Declares a benchmark group: `bench_group! { name = benches; config =
/// Criterion::default(); targets = f, g }` (criterion-compatible shape).
#[macro_export]
macro_rules! bench_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::bench::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::bench_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut calls = 0u64;
        run_one("unit/quick", 10, true, None, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn full_mode_takes_samples() {
        let mut calls = 0u64;
        run_one(
            "unit/full",
            3,
            false,
            Some(Throughput::Bytes(1)),
            |b| b.iter(|| calls += 1),
        );
        // Calibration plus 3 samples must each have invoked the routine.
        assert!(calls > 3);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        let mut built = 0u32;
        b.iter_batched(
            || {
                built += 1;
                vec![0u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(built, 4);
    }
}
