//! A cheaply-cloneable immutable byte buffer.
//!
//! Replacement for the `bytes` crate's `Bytes` type, covering the API
//! subset Tiera uses: construction from vectors/slices, `Deref` to
//! `[u8]`, O(1) `clone`, and zero-copy `slice()` views. The backing store
//! is an `Arc<[u8]>`, so clones and sub-slices share one allocation — an
//! object stored in three tiers costs one payload, as in the seed.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// `clone()` is O(1) and aliases the same allocation; [`Bytes::slice`]
/// returns a view into the parent without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice (copies it once; the name mirrors the
    /// `bytes` crate for drop-in compatibility).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
            offset: 0,
            len: data.len(),
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a zero-copy sub-view of this buffer.
    ///
    /// The returned `Bytes` shares the parent's allocation. Panics if the
    /// range is out of bounds, matching slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Copies the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::from(v),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Match the `bytes` crate: render as a byte-string literal.
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_aliases_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.data, &b.data), "clone must not copy");
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mid = a.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert!(Arc::ptr_eq(&a.data, &mid.data), "slice must not copy");
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..6);
    }

    #[test]
    fn equality_and_deref() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert_eq!(&b[1..3], b"el");
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'a', 0, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\\"\"");
    }
}
