//! Tier catalog: maps tier *type* names to factories.
//!
//! The paper's specification files name tier types symbolically ("It is
//! assumed that the specific tier names (e.g. Memcached and EBS) are known
//! to Tiera", §2.3). A [`TierCatalog`] is that name → implementation
//! binding: the `tiera-spec` compiler looks up `name: Memcached` here when
//! materializing an instance, and `tiera-tiers` provides a catalog
//! pre-populated with the four simulated Amazon services.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Result, TieraError};
use crate::tier::TierHandle;

/// Factory producing a tier given `(instance tier label, capacity bytes)`.
pub type TierFactory = Arc<dyn Fn(&str, u64) -> TierHandle + Send + Sync>;

/// Registry of known tier types.
#[derive(Clone, Default)]
pub struct TierCatalog {
    factories: HashMap<String, TierFactory>,
}

impl TierCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tier type (case-insensitive lookup).
    pub fn register<F>(&mut self, type_name: impl Into<String>, factory: F)
    where
        F: Fn(&str, u64) -> TierHandle + Send + Sync + 'static,
    {
        self.factories
            .insert(type_name.into().to_ascii_lowercase(), Arc::new(factory));
    }

    /// Instantiates a tier of `type_name` labeled `label` with `capacity`
    /// bytes.
    pub fn create(&self, type_name: &str, label: &str, capacity: u64) -> Result<TierHandle> {
        let factory = self
            .factories
            .get(&type_name.to_ascii_lowercase())
            .ok_or_else(|| {
                TieraError::InvalidConfig(format!("unknown tier type: {type_name}"))
            })?;
        Ok(factory(label, capacity))
    }

    /// Registered type names (lowercased), sorted.
    pub fn type_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

impl std::fmt::Debug for TierCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierCatalog")
            .field("types", &self.type_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::MemTier;
    use tiera_sim::SimTime;

    fn catalog() -> TierCatalog {
        let mut c = TierCatalog::new();
        c.register("Memcached", |label, cap| {
            MemTier::with_capacity(label, cap) as TierHandle
        });
        c
    }

    #[test]
    fn create_known_type_case_insensitive() {
        let c = catalog();
        let t = c.create("memcached", "tier1", 1024).unwrap();
        assert_eq!(t.name(), "tier1");
        assert_eq!(t.capacity(SimTime::ZERO), 1024);
        assert!(c.create("MEMCACHED", "tier2", 1).is_ok());
    }

    #[test]
    fn unknown_type_rejected() {
        let c = catalog();
        assert!(matches!(
            c.create("FloppyDisk", "t", 1),
            Err(TieraError::InvalidConfig(_))
        ));
    }

    #[test]
    fn type_names_sorted() {
        let mut c = catalog();
        c.register("EBS", |l, cap| MemTier::with_capacity(l, cap) as TierHandle);
        assert_eq!(c.type_names(), vec!["ebs", "memcached"]);
    }
}
