//! Fluent construction of Tiera instances.
//!
//! Programs can build instances directly with [`InstanceBuilder`]; the
//! `tiera-spec` crate compiles the paper's specification DSL (Figures 3–6)
//! down to the same builder calls.

use std::sync::Arc;

use tiera_sim::SimEnv;

use crate::error::{Result, TieraError};
use crate::instance::Instance;
use crate::policy::{Policy, Rule};
use crate::registry::Registry;
use crate::tier::TierHandle;

/// Builder for [`Instance`].
pub struct InstanceBuilder {
    name: String,
    env: SimEnv,
    tiers: Vec<TierHandle>,
    rules: Vec<Rule>,
    metadata_dir: Option<std::path::PathBuf>,
}

impl InstanceBuilder {
    /// Starts a builder for an instance called `name`.
    pub fn new(name: impl Into<String>, env: SimEnv) -> Self {
        Self {
            name: name.into(),
            env,
            tiers: Vec::new(),
            rules: Vec::new(),
            metadata_dir: None,
        }
    }

    /// Attaches a tier. Order matters: the first tier is the default
    /// placement target and the most preferred read source.
    pub fn tier<T: crate::tier::Tier + 'static>(mut self, tier: std::sync::Arc<T>) -> Self {
        self.tiers.push(tier);
        self
    }

    /// Attaches an already-erased tier handle.
    pub fn tier_handle(mut self, tier: TierHandle) -> Self {
        self.tiers.push(tier);
        self
    }

    /// Installs a rule.
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Persists object metadata under `dir` (the paper's BerkeleyDB role).
    pub fn metadata_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.metadata_dir = Some(dir.into());
        self
    }

    /// Validates and builds the instance.
    ///
    /// Validation checks that every tier name referenced by a rule is
    /// attached, that tier names are unique, and that at least one tier
    /// exists.
    pub fn build(self) -> Result<Arc<Instance>> {
        if self.tiers.is_empty() {
            return Err(TieraError::InvalidConfig(format!(
                "instance {} has no tiers",
                self.name
            )));
        }
        let mut names: Vec<&str> = self.tiers.iter().map(|t| t.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        if names.len() != total {
            return Err(TieraError::InvalidConfig(format!(
                "instance {} has duplicate tier names",
                self.name
            )));
        }
        for rule in &self.rules {
            for resp in &rule.responses {
                for t in resp.referenced_tiers() {
                    if !names.contains(&t) {
                        return Err(TieraError::InvalidConfig(format!(
                            "rule {} references unknown tier {t}",
                            rule.label.as_deref().unwrap_or("<unlabeled>")
                        )));
                    }
                }
            }
        }
        let policy = Policy::new();
        for rule in self.rules {
            policy.add(rule);
        }
        let registry = match &self.metadata_dir {
            Some(dir) => Registry::persistent(dir)?,
            None => Registry::in_memory(),
        };
        Ok(Arc::new(Instance::new(
            self.name, self.env, self.tiers, policy, registry,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ActionOp, EventKind};
    use crate::response::ResponseSpec;
    use crate::selector::Selector;
    use crate::tier::MemTier;

    #[test]
    fn build_minimal_instance() {
        let inst = InstanceBuilder::new("mini", SimEnv::new(1))
            .tier(MemTier::with_capacity("t1", 1024))
            .build()
            .unwrap();
        assert_eq!(inst.name(), "mini");
        assert_eq!(inst.tier_names(), vec!["t1"]);
    }

    #[test]
    fn no_tiers_rejected() {
        let err = InstanceBuilder::new("empty", SimEnv::new(1)).build();
        assert!(matches!(err, Err(TieraError::InvalidConfig(_))));
    }

    #[test]
    fn duplicate_tier_names_rejected() {
        let err = InstanceBuilder::new("dup", SimEnv::new(1))
            .tier(MemTier::with_capacity("t", 10))
            .tier(MemTier::with_capacity("t", 10))
            .build();
        assert!(matches!(err, Err(TieraError::InvalidConfig(_))));
    }

    #[test]
    fn rule_referencing_unknown_tier_rejected() {
        let err = InstanceBuilder::new("bad-rule", SimEnv::new(1))
            .tier(MemTier::with_capacity("t1", 10))
            .rule(
                Rule::on(EventKind::action(ActionOp::Put))
                    .respond(ResponseSpec::store(Selector::Inserted, ["ghost"])),
            )
            .build();
        assert!(matches!(err, Err(TieraError::InvalidConfig(_))));
    }
}
