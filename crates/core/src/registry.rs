//! The metadata registry.
//!
//! Owns every object's [`ObjectMeta`], maintains the access-ordered per-tier
//! indexes that make `tierN.oldest` / `tierN.newest` selections O(log n)
//! (the Figure 5 LRU/MRU idiom), keeps the content-digest index behind
//! `storeOnce` deduplication, and — mirroring the paper's BerkeleyDB usage —
//! optionally persists all metadata through `tiera-metastore`.

use std::collections::{BTreeMap, HashMap};

use tiera_support::sync::RwLock;
use tiera_codec::Digest;
use tiera_metastore::MetaStore;
use tiera_sim::SimTime;

use crate::error::{Result, TieraError};
use crate::meta::ObjectMeta;
use crate::object::ObjectKey;
use crate::selector::Selector;

/// Aggregates maintained per tier for cheap threshold-metric evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierAggregates {
    /// Objects located in the tier.
    pub objects: u64,
    /// Bytes of dirty objects located in the tier.
    pub dirty_bytes: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<ObjectKey, ObjectMeta>,
    /// Monotone access sequence; drives LRU/MRU ordering.
    seq: u64,
    /// Current sequence number of each key.
    key_seq: HashMap<ObjectKey, u64>,
    /// Per-tier access-ordered index: seq → key. First = oldest.
    tier_order: HashMap<String, BTreeMap<u64, ObjectKey>>,
    /// Per-tier aggregates.
    aggregates: HashMap<String, TierAggregates>,
    /// Content digest → (physical object key, reference count).
    dedup: HashMap<Digest, (ObjectKey, u64)>,
}

/// Thread-safe object-metadata registry with optional persistence.
pub struct Registry {
    inner: RwLock<Inner>,
    store: Option<MetaStore>,
}

impl Registry {
    /// An in-memory registry (no persistence).
    pub fn in_memory() -> Self {
        Self {
            inner: RwLock::new(Inner::default()),
            store: None,
        }
    }

    /// A registry persisted in `dir`; existing metadata is recovered.
    pub fn persistent(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        let store = MetaStore::open(dir).map_err(|e| TieraError::Metadata(e.to_string()))?;
        let reg = Self {
            inner: RwLock::new(Inner::default()),
            store: None,
        };
        {
            let mut inner = reg.inner.write();
            for (k, v) in store.scan_prefix(b"") {
                let Ok(key_str) = String::from_utf8(k) else {
                    continue;
                };
                if let Some(meta) = ObjectMeta::decode(&v) {
                    let key = ObjectKey::new(key_str);
                    Inner::index_insert(&mut inner, &key, &meta);
                    inner.map.insert(key, meta);
                }
            }
        }
        Ok(Self {
            store: Some(store),
            ..reg
        })
    }

    fn persist(&self, key: &ObjectKey, meta: Option<&ObjectMeta>) {
        if let Some(store) = &self.store {
            let r = match meta {
                Some(m) => store.put(key.as_str().as_bytes(), &m.encode()),
                None => store.delete(key.as_str().as_bytes()).map(|_| ()),
            };
            // Metadata persistence failures must not fail client IO; they
            // surface through sync() at the durability boundary.
            let _ = r;
        }
    }

    /// Flushes persisted metadata to disk.
    pub fn sync(&self) -> Result<()> {
        if let Some(store) = &self.store {
            store
                .sync()
                .map_err(|e| TieraError::Metadata(e.to_string()))?;
        }
        Ok(())
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone of an object's metadata.
    pub fn get(&self, key: &ObjectKey) -> Option<ObjectMeta> {
        self.inner.read().map.get(key).cloned()
    }

    /// Whether the object exists.
    pub fn contains(&self, key: &ObjectKey) -> bool {
        self.inner.read().map.contains_key(key)
    }

    /// Inserts or replaces an object's metadata wholesale.
    pub fn upsert(&self, key: ObjectKey, meta: ObjectMeta) {
        let mut inner = self.inner.write();
        if let Some(old) = inner.map.remove(&key) {
            Inner::index_remove(&mut inner, &key, &old);
        }
        Inner::index_insert(&mut inner, &key, &meta);
        inner.map.insert(key.clone(), meta.clone());
        drop(inner);
        self.persist(&key, Some(&meta));
    }

    /// Applies `f` to an object's metadata (if present), refreshing all
    /// indexes. Returns the updated metadata.
    pub fn update<F>(&self, key: &ObjectKey, f: F) -> Option<ObjectMeta>
    where
        F: FnOnce(&mut ObjectMeta),
    {
        let mut inner = self.inner.write();
        let mut meta = inner.map.get(key)?.clone();
        Inner::index_remove(&mut inner, key, &meta);
        f(&mut meta);
        Inner::index_insert(&mut inner, key, &meta);
        inner.map.insert(key.clone(), meta.clone());
        drop(inner);
        self.persist(key, Some(&meta));
        Some(meta)
    }

    /// Records an access (touch) at `now`, refreshing LRU ordering.
    pub fn touch(&self, key: &ObjectKey, now: SimTime) -> Option<ObjectMeta> {
        self.update(key, |m| m.touch(now))
    }

    /// Removes an object entirely.
    pub fn remove(&self, key: &ObjectKey) -> Option<ObjectMeta> {
        let mut inner = self.inner.write();
        let meta = inner.map.remove(key)?;
        Inner::index_remove(&mut inner, key, &meta);
        inner.key_seq.remove(key);
        drop(inner);
        self.persist(key, None);
        Some(meta)
    }

    /// Aggregates for a tier (zeros if the tier holds nothing).
    pub fn aggregates(&self, tier: &str) -> TierAggregates {
        self.inner
            .read()
            .aggregates
            .get(tier)
            .copied()
            .unwrap_or_default()
    }

    /// The least recently accessed object in `tier`.
    pub fn oldest_in(&self, tier: &str) -> Option<ObjectKey> {
        let inner = self.inner.read();
        inner
            .tier_order
            .get(tier)
            .and_then(|m| m.values().next().cloned())
    }

    /// The most recently accessed object in `tier`.
    pub fn newest_in(&self, tier: &str) -> Option<ObjectKey> {
        let inner = self.inner.read();
        inner
            .tier_order
            .get(tier)
            .and_then(|m| m.values().next_back().cloned())
    }

    /// Every key currently located in `tier`, oldest first.
    pub fn keys_in(&self, tier: &str) -> Vec<ObjectKey> {
        let inner = self.inner.read();
        inner
            .tier_order
            .get(tier)
            .map(|m| m.values().cloned().collect())
            .unwrap_or_default()
    }

    /// Evaluates a selector to a concrete key set.
    ///
    /// `inserted` supplies the meaning of [`Selector::Inserted`] in action
    /// contexts.
    pub fn select(
        &self,
        selector: &Selector,
        inserted: Option<&ObjectKey>,
        now: SimTime,
    ) -> Vec<ObjectKey> {
        match selector {
            Selector::Inserted => inserted.cloned().into_iter().collect(),
            Selector::Key(k) => {
                if self.contains(k) {
                    vec![k.clone()]
                } else {
                    Vec::new()
                }
            }
            Selector::All => self.inner.read().map.keys().cloned().collect(),
            Selector::InTier(t) => self.keys_in(t),
            Selector::Dirty => {
                let inner = self.inner.read();
                inner
                    .map
                    .iter()
                    .filter(|(_, m)| m.dirty)
                    .map(|(k, _)| k.clone())
                    .collect()
            }
            Selector::Tagged(tag) => {
                let inner = self.inner.read();
                inner
                    .map
                    .iter()
                    .filter(|(_, m)| m.has_tag(tag))
                    .map(|(k, _)| k.clone())
                    .collect()
            }
            Selector::OldestIn(t) => self.oldest_in(t).into_iter().collect(),
            Selector::NewestIn(t) => self.newest_in(t).into_iter().collect(),
            Selector::HotterThan(bound) => {
                let inner = self.inner.read();
                inner
                    .map
                    .iter()
                    .filter(|(_, m)| m.access_frequency(now) >= *bound)
                    .map(|(k, _)| k.clone())
                    .collect()
            }
            Selector::ColderThan(bound) => {
                let inner = self.inner.read();
                inner
                    .map
                    .iter()
                    .filter(|(_, m)| m.access_frequency(now) < *bound)
                    .map(|(k, _)| k.clone())
                    .collect()
            }
            Selector::And(a, b) => {
                // Evaluate the narrower side as a key set and the other as
                // a per-key predicate; this keeps hot-path conjunctions
                // like `Inserted && !Tagged(..)` O(1) instead of scanning
                // the registry.
                let (small, pred) = if Self::is_narrow(a) || !Self::is_narrow(b) {
                    (a, b)
                } else {
                    (b, a)
                };
                self.select(small, inserted, now)
                    .into_iter()
                    .filter(|k| self.matches(pred, k, inserted, now))
                    .collect()
            }
            Selector::Not(inner) => {
                let excluded: std::collections::HashSet<ObjectKey> =
                    self.select(inner, inserted, now).into_iter().collect();
                let base = self.select(&Selector::All, inserted, now);
                base.into_iter().filter(|k| !excluded.contains(k)).collect()
            }
        }
    }

    /// Whether a selector resolves to at most a handful of keys.
    fn is_narrow(sel: &Selector) -> bool {
        match sel {
            Selector::Inserted
            | Selector::Key(_)
            | Selector::OldestIn(_)
            | Selector::NewestIn(_) => true,
            Selector::And(a, b) => Self::is_narrow(a) || Self::is_narrow(b),
            _ => false,
        }
    }

    /// Predicate form of selector evaluation for a single key.
    pub fn matches(
        &self,
        selector: &Selector,
        key: &ObjectKey,
        inserted: Option<&ObjectKey>,
        now: SimTime,
    ) -> bool {
        match selector {
            Selector::Inserted => inserted == Some(key),
            Selector::Key(k) => k == key,
            Selector::All => self.contains(key),
            Selector::InTier(t) => self.get(key).map(|m| m.in_tier(t)).unwrap_or(false),
            Selector::Dirty => self.get(key).map(|m| m.dirty).unwrap_or(false),
            Selector::Tagged(tag) => self.get(key).map(|m| m.has_tag(tag)).unwrap_or(false),
            Selector::OldestIn(t) => self.oldest_in(t).as_ref() == Some(key),
            Selector::NewestIn(t) => self.newest_in(t).as_ref() == Some(key),
            Selector::HotterThan(b) => self
                .get(key)
                .map(|m| m.access_frequency(now) >= *b)
                .unwrap_or(false),
            Selector::ColderThan(b) => self
                .get(key)
                .map(|m| m.access_frequency(now) < *b)
                .unwrap_or(false),
            Selector::And(a, b) => {
                self.matches(a, key, inserted, now) && self.matches(b, key, inserted, now)
            }
            Selector::Not(inner) => !self.matches(inner, key, inserted, now),
        }
    }

    // ---- dedup index (storeOnce) ----

    /// Registers content under `digest`. If the digest is new, `physical`
    /// becomes its physical key and `None` is returned; otherwise the
    /// existing physical key is returned and its refcount incremented.
    pub fn dedup_acquire(&self, digest: Digest, physical: ObjectKey) -> Option<ObjectKey> {
        let mut inner = self.inner.write();
        match inner.dedup.get_mut(&digest) {
            Some((existing, refs)) => {
                *refs += 1;
                Some(existing.clone())
            }
            None => {
                inner.dedup.insert(digest, (physical, 1));
                None
            }
        }
    }

    /// Releases one reference to `digest`; returns the physical key when
    /// the last reference is dropped (the caller then deletes the bytes).
    pub fn dedup_release(&self, digest: &Digest) -> Option<ObjectKey> {
        let mut inner = self.inner.write();
        if let Some((physical, refs)) = inner.dedup.get_mut(digest) {
            *refs -= 1;
            if *refs == 0 {
                let physical = physical.clone();
                inner.dedup.remove(digest);
                return Some(physical);
            }
        }
        None
    }

    /// Physical key behind `digest`, if registered.
    pub fn dedup_lookup(&self, digest: &Digest) -> Option<ObjectKey> {
        self.inner.read().dedup.get(digest).map(|(k, _)| k.clone())
    }
}

impl Inner {
    fn index_insert(inner: &mut Inner, key: &ObjectKey, meta: &ObjectMeta) {
        inner.seq += 1;
        let seq = inner.seq;
        inner.key_seq.insert(key.clone(), seq);
        for tier in &meta.locations {
            inner
                .tier_order
                .entry(tier.clone())
                .or_default()
                .insert(seq, key.clone());
            let agg = inner.aggregates.entry(tier.clone()).or_default();
            agg.objects += 1;
            if meta.dirty {
                agg.dirty_bytes += meta.stored_size;
            }
        }
    }

    fn index_remove(inner: &mut Inner, key: &ObjectKey, meta: &ObjectMeta) {
        if let Some(seq) = inner.key_seq.get(key) {
            for tier in &meta.locations {
                if let Some(order) = inner.tier_order.get_mut(tier) {
                    order.remove(seq);
                }
                if let Some(agg) = inner.aggregates.get_mut(tier) {
                    agg.objects = agg.objects.saturating_sub(1);
                    if meta.dirty {
                        agg.dirty_bytes = agg.dirty_bytes.saturating_sub(meta.stored_size);
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("objects", &self.len())
            .field("persistent", &self.store.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Tag;

    fn meta_in(tier: &str, size: u64, now: SimTime) -> ObjectMeta {
        let mut m = ObjectMeta::new(size, now);
        m.locations.insert(tier.into());
        m
    }

    #[test]
    fn upsert_get_remove() {
        let r = Registry::in_memory();
        let k = ObjectKey::new("a");
        r.upsert(k.clone(), meta_in("t1", 100, SimTime::ZERO));
        assert!(r.contains(&k));
        assert_eq!(r.get(&k).unwrap().size, 100);
        assert_eq!(r.aggregates("t1").objects, 1);
        r.remove(&k);
        assert!(!r.contains(&k));
        assert_eq!(r.aggregates("t1").objects, 0);
    }

    #[test]
    fn lru_order_follows_access() {
        let r = Registry::in_memory();
        for name in ["a", "b", "c"] {
            r.upsert(ObjectKey::new(name), meta_in("t1", 10, SimTime::ZERO));
        }
        assert_eq!(r.oldest_in("t1").unwrap().as_str(), "a");
        assert_eq!(r.newest_in("t1").unwrap().as_str(), "c");
        // Touching "a" makes it newest.
        r.touch(&ObjectKey::new("a"), SimTime::from_secs(1));
        assert_eq!(r.oldest_in("t1").unwrap().as_str(), "b");
        assert_eq!(r.newest_in("t1").unwrap().as_str(), "a");
    }

    #[test]
    fn aggregates_track_dirty_bytes() {
        let r = Registry::in_memory();
        let k = ObjectKey::new("a");
        let mut m = meta_in("t1", 100, SimTime::ZERO);
        m.dirty = true;
        r.upsert(k.clone(), m);
        assert_eq!(r.aggregates("t1").dirty_bytes, 100);
        r.update(&k, |m| m.dirty = false);
        assert_eq!(r.aggregates("t1").dirty_bytes, 0);
    }

    #[test]
    fn selectors_resolve() {
        let r = Registry::in_memory();
        let now = SimTime::ZERO;
        let mut m1 = meta_in("t1", 10, now);
        m1.dirty = true;
        m1.tags.insert(Tag::new("tmp"));
        r.upsert(ObjectKey::new("a"), m1);
        r.upsert(ObjectKey::new("b"), meta_in("t2", 10, now));

        assert_eq!(r.select(&Selector::All, None, now).len(), 2);
        assert_eq!(r.select(&Selector::Dirty, None, now).len(), 1);
        assert_eq!(
            r.select(&Selector::Tagged(Tag::new("tmp")), None, now)[0].as_str(),
            "a"
        );
        assert_eq!(r.select(&Selector::InTier("t2".into()), None, now).len(), 1);
        let conj = Selector::InTier("t1".into()).and(Selector::Dirty);
        assert_eq!(r.select(&conj, None, now).len(), 1);
        let conj_empty = Selector::InTier("t2".into()).and(Selector::Dirty);
        assert!(r.select(&conj_empty, None, now).is_empty());
        // Inserted resolves through the context argument.
        let k = ObjectKey::new("a");
        assert_eq!(r.select(&Selector::Inserted, Some(&k), now), vec![k]);
        assert!(r.select(&Selector::Inserted, None, now).is_empty());
    }

    #[test]
    fn not_selector_complements() {
        let r = Registry::in_memory();
        let now = SimTime::ZERO;
        let mut tagged = meta_in("t1", 1, now);
        tagged.tags.insert(Tag::new("tmp"));
        r.upsert(ObjectKey::new("tmp-obj"), tagged);
        r.upsert(ObjectKey::new("plain"), meta_in("t1", 1, now));
        let not_tmp = Selector::Tagged(Tag::new("tmp")).negate();
        let hits = r.select(&not_tmp, None, now);
        assert_eq!(hits, vec![ObjectKey::new("plain")]);
        // Inserted && !tagged resolves against the inserted object.
        let sel = Selector::Inserted.and(Selector::Tagged(Tag::new("tmp")).negate());
        assert_eq!(
            r.select(&sel, Some(&ObjectKey::new("plain")), now).len(),
            1
        );
        assert!(r
            .select(&sel, Some(&ObjectKey::new("tmp-obj")), now)
            .is_empty());
    }

    #[test]
    fn hot_cold_selectors() {
        let r = Registry::in_memory();
        let hot = ObjectKey::new("hot");
        let cold = ObjectKey::new("cold");
        r.upsert(hot.clone(), meta_in("t1", 10, SimTime::ZERO));
        r.upsert(cold.clone(), meta_in("t1", 10, SimTime::ZERO));
        for _ in 0..100 {
            r.touch(&hot, SimTime::from_secs(10));
        }
        r.touch(&cold, SimTime::from_secs(10));
        let now = SimTime::from_secs(10);
        let hots = r.select(&Selector::HotterThan(5.0), None, now);
        assert_eq!(hots, vec![hot]);
        let colds = r.select(&Selector::ColderThan(5.0), None, now);
        assert_eq!(colds, vec![cold]);
    }

    #[test]
    fn dedup_refcounting() {
        let r = Registry::in_memory();
        let d = Digest::of(b"content");
        let phys = ObjectKey::new("sha256:abc");
        assert_eq!(r.dedup_acquire(d, phys.clone()), None, "first is new");
        assert_eq!(
            r.dedup_acquire(d, ObjectKey::new("ignored")),
            Some(phys.clone()),
            "second returns existing physical key"
        );
        assert_eq!(r.dedup_release(&d), None, "one ref remains");
        assert_eq!(r.dedup_release(&d), Some(phys), "last release frees");
        assert_eq!(r.dedup_lookup(&d), None);
    }

    #[test]
    fn persistent_registry_recovers() {
        let dir = std::env::temp_dir().join(format!("tiera-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let r = Registry::persistent(&dir).unwrap();
            let mut m = meta_in("t1", 42, SimTime::from_secs(3));
            m.dirty = true;
            r.upsert(ObjectKey::new("persisted"), m);
            r.remove(&ObjectKey::new("persisted-then-removed"));
            r.sync().unwrap();
        }
        let r = Registry::persistent(&dir).unwrap();
        let m = r.get(&ObjectKey::new("persisted")).expect("recovered");
        assert_eq!(m.size, 42);
        assert!(m.dirty);
        assert_eq!(r.aggregates("t1").objects, 1, "indexes rebuilt");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_missing_returns_none() {
        let r = Registry::in_memory();
        assert!(r.update(&ObjectKey::new("nope"), |m| m.dirty = true).is_none());
        assert!(r.touch(&ObjectKey::new("nope"), SimTime::ZERO).is_none());
    }
}
