//! The metadata registry.
//!
//! Owns every object's [`ObjectMeta`], maintains the access-ordered per-tier
//! indexes that make `tierN.oldest` / `tierN.newest` selections O(log n)
//! (the Figure 5 LRU/MRU idiom), keeps the content-digest index behind
//! `storeOnce` deduplication, and — mirroring the paper's BerkeleyDB usage —
//! optionally persists all metadata through `tiera-metastore`.
//!
//! ## Concurrency model
//!
//! The registry is the metadata hot path shared by every request thread, so
//! its state is split to avoid a single global lock (DESIGN.md,
//! "Concurrency model"):
//!
//! * **Shards.** The key→meta map is hash-partitioned into
//!   [`SHARD_COUNT`] shards, each behind its own `RwLock`. A key-addressed
//!   operation (`get`/`contains`/`upsert`/`update`/`touch`/`remove`) locks
//!   exactly one shard — two requests for different keys usually touch
//!   different shards and proceed in parallel.
//! * **Order indexes** (`order`): the per-tier access-ordered maps behind
//!   `tierN.oldest`/`newest`, the global access order, the dirty set, and
//!   the access-count index driving hot/cold selectors. One `RwLock`,
//!   write-held only for the few `BTreeMap` edits per mutation.
//! * **Aggregates** (`aggregates`): per-tier object/dirty-byte counters for
//!   threshold metrics. One `RwLock`.
//! * **Dedup** (`dedup`): the `storeOnce` digest table behind its own
//!   `Mutex`; never held together with any other registry lock.
//!
//! **Lock order: shard → order → aggregates.** A thread may skip levels but
//! never acquires a lower level while holding a higher one, and never holds
//! two shard locks at once. `dedup` is independent (leaf-only).
//!
//! Mutations hold their shard lock across the index updates, so for any
//! single key the map and every index always agree; cross-key readers of
//! the order indexes see each mutation atomically because the index edits
//! for one mutation happen under one `order` write guard.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use tiera_support::collections::{fx_hash_one, FxHashMap};
use tiera_support::sync::{rank, Mutex, RwLock};
use tiera_codec::Digest;
use tiera_metastore::MetaStore;
use tiera_sim::SimTime;

use crate::error::{Result, TieraError};
use crate::meta::ObjectMeta;
use crate::object::ObjectKey;
use crate::selector::Selector;

/// Number of key-addressed shards (power of two; picked from the top hash
/// bits). 16 keeps per-shard contention negligible for the request-pool
/// sizes the RPC server runs (≤ 8 threads) without bloating the footprint.
pub const SHARD_COUNT: usize = 16;

/// Aggregates maintained per tier for cheap threshold-metric evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierAggregates {
    /// Objects located in the tier.
    pub objects: u64,
    /// Bytes of dirty objects located in the tier.
    pub dirty_bytes: u64,
}

/// One object's registry record: its metadata plus the access-sequence
/// number linking it into the order indexes.
struct Entry {
    meta: ObjectMeta,
    seq: u64,
}

/// One hash shard of the key→meta map.
#[derive(Default)]
struct Shard {
    map: FxHashMap<ObjectKey, Entry>,
}

/// The cross-shard order indexes (see module docs for the lock order).
struct OrderIndexes {
    /// Per-tier access-ordered index: seq → key. First = oldest.
    tier_order: FxHashMap<String, BTreeMap<u64, ObjectKey>>,
    /// Global access-ordered index over every object (drives `All`/`Not`).
    access_order: BTreeMap<u64, ObjectKey>,
    /// Access-ordered index over dirty objects (drives `Dirty`).
    dirty_order: BTreeMap<u64, ObjectKey>,
    /// `(access_count, key) → created`: the frequency index. Hot/cold
    /// selectors walk it from the hot (high-count) or cold (low-count) end
    /// and prune with the `created` bounds below.
    freq_index: BTreeMap<(u64, ObjectKey), SimTime>,
    /// Monotone upper bound on live objects' creation times: the youngest
    /// possible object. `now - max_created` lower-bounds every object's
    /// age, letting `HotterThan` stop early.
    max_created: SimTime,
    /// Monotone lower bound on creation times (upper-bounds ages) for
    /// `ColderThan`'s early stop. Conservative after removals — stale
    /// bounds only weaken pruning, never correctness.
    min_created: SimTime,
}

impl Default for OrderIndexes {
    fn default() -> Self {
        Self {
            tier_order: FxHashMap::default(),
            access_order: BTreeMap::new(),
            dirty_order: BTreeMap::new(),
            freq_index: BTreeMap::new(),
            max_created: SimTime::ZERO,
            min_created: SimTime::from_nanos(u64::MAX),
        }
    }
}

/// Thread-safe object-metadata registry with optional persistence.
pub struct Registry {
    shards: Vec<RwLock<Shard>>,
    /// Monotone access sequence; drives LRU/MRU ordering.
    seq: AtomicU64,
    /// Live object count (kept here so `len()` does not sweep the shards).
    count: AtomicU64,
    order: RwLock<OrderIndexes>,
    aggregates: RwLock<FxHashMap<String, TierAggregates>>,
    /// Content digest → (physical object key, reference count).
    dedup: Mutex<FxHashMap<Digest, (ObjectKey, u64)>>,
    store: Option<MetaStore>,
}

impl Registry {
    /// An in-memory registry (no persistence).
    pub fn in_memory() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::named("registry.shard", rank::REGISTRY_SHARD, Shard::default()))
                .collect(),
            seq: AtomicU64::new(0),
            count: AtomicU64::new(0),
            order: RwLock::named("registry.order", rank::REGISTRY_ORDER, OrderIndexes::default()),
            aggregates: RwLock::named(
                "registry.aggregates",
                rank::REGISTRY_AGGREGATES,
                FxHashMap::default(),
            ),
            dedup: Mutex::named("registry.dedup", rank::REGISTRY_DEDUP, FxHashMap::default()),
            store: None,
        }
    }

    /// A registry persisted in `dir`; existing metadata is recovered.
    pub fn persistent(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        let store = MetaStore::open(dir).map_err(|e| TieraError::Metadata(e.to_string()))?;
        let reg = Self::in_memory();
        for (k, v) in store.scan_prefix(b"") {
            let Ok(key_str) = String::from_utf8(k) else {
                continue;
            };
            if let Some(meta) = ObjectMeta::decode(&v) {
                reg.insert_locked(ObjectKey::new(key_str), meta);
            }
        }
        Ok(Self {
            store: Some(store),
            ..reg
        })
    }

    #[inline]
    fn shard_of(&self, key: &ObjectKey) -> &RwLock<Shard> {
        // Top bits: FxHash mixes best into the high half of the word.
        let h = fx_hash_one(key);
        &self.shards[(h >> (64 - SHARD_COUNT.trailing_zeros())) as usize]
    }

    #[inline]
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn persist(&self, key: &ObjectKey, meta: Option<&ObjectMeta>) {
        if let Some(store) = &self.store {
            let r = match meta {
                Some(m) => store.put(key.as_str().as_bytes(), &m.encode()),
                None => store.delete(key.as_str().as_bytes()).map(|_| ()),
            };
            // Metadata persistence failures must not fail client IO; they
            // surface through sync() at the durability boundary.
            let _ = r;
        }
    }

    /// Flushes persisted metadata to disk.
    pub fn sync(&self) -> Result<()> {
        if let Some(store) = &self.store {
            store
                .sync()
                .map_err(|e| TieraError::Metadata(e.to_string()))?;
        }
        Ok(())
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire) as usize
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone of an object's metadata.
    pub fn get(&self, key: &ObjectKey) -> Option<ObjectMeta> {
        self.shard_of(key).read().map.get(key).map(|e| e.meta.clone())
    }

    /// Whether the object exists.
    pub fn contains(&self, key: &ObjectKey) -> bool {
        self.shard_of(key).read().map.contains_key(key)
    }

    /// Inserts or replaces an object's metadata wholesale.
    pub fn upsert(&self, key: ObjectKey, meta: ObjectMeta) {
        self.insert_locked(key.clone(), meta.clone());
        self.persist(&key, Some(&meta));
    }

    /// The locked body of [`upsert`](Self::upsert), shared with recovery.
    fn insert_locked(&self, key: ObjectKey, meta: ObjectMeta) {
        let mut shard = self.shard_of(&key).write();
        let seq = self.next_seq();
        let prior = shard.map.insert(key.clone(), Entry { meta, seq });
        let entry = shard.map.get(&key).expect("just inserted");
        {
            let mut order = self.order.write();
            let mut aggregates = self.aggregates.write();
            if let Some(old) = &prior {
                index_remove(&mut order, &mut aggregates, &key, &old.meta, old.seq);
            }
            index_insert(&mut order, &mut aggregates, &key, &entry.meta, seq);
        }
        if prior.is_none() {
            self.count.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Applies `f` to an object's metadata (if present), refreshing all
    /// indexes in place. Returns a clone of the updated metadata (the only
    /// clone the operation makes).
    pub fn update<F>(&self, key: &ObjectKey, f: F) -> Option<ObjectMeta>
    where
        F: FnOnce(&mut ObjectMeta),
    {
        let updated = {
            let mut shard = self.shard_of(key).write();
            let entry = shard.map.get_mut(key)?;
            let seq = self.next_seq();
            let mut order = self.order.write();
            let mut aggregates = self.aggregates.write();
            index_remove(&mut order, &mut aggregates, key, &entry.meta, entry.seq);
            f(&mut entry.meta);
            entry.seq = seq;
            index_insert(&mut order, &mut aggregates, key, &entry.meta, seq);
            entry.meta.clone()
        };
        self.persist(key, Some(&updated));
        Some(updated)
    }

    /// Records an access (touch) at `now`, refreshing LRU ordering.
    pub fn touch(&self, key: &ObjectKey, now: SimTime) -> Option<ObjectMeta> {
        self.update(key, |m| m.touch(now))
    }

    /// Removes an object entirely.
    pub fn remove(&self, key: &ObjectKey) -> Option<ObjectMeta> {
        let meta = {
            let mut shard = self.shard_of(key).write();
            let entry = shard.map.remove(key)?;
            let mut order = self.order.write();
            let mut aggregates = self.aggregates.write();
            index_remove(&mut order, &mut aggregates, key, &entry.meta, entry.seq);
            entry.meta
        };
        self.count.fetch_sub(1, Ordering::AcqRel);
        self.persist(key, None);
        Some(meta)
    }

    /// Aggregates for a tier (zeros if the tier holds nothing).
    pub fn aggregates(&self, tier: &str) -> TierAggregates {
        self.aggregates
            .read()
            .get(tier)
            .copied()
            .unwrap_or_default()
    }

    /// Recomputes a tier's aggregates from scratch by sweeping every shard
    /// (O(n)). This is the audit the incremental counters are checked
    /// against in tests; production code reads [`aggregates`](Self::aggregates).
    pub fn recount_aggregates(&self, tier: &str) -> TierAggregates {
        let mut agg = TierAggregates::default();
        for shard in &self.shards {
            for entry in shard.read().map.values() {
                if entry.meta.locations.contains(tier) {
                    agg.objects += 1;
                    if entry.meta.dirty {
                        agg.dirty_bytes += entry.meta.stored_size;
                    }
                }
            }
        }
        agg
    }

    /// The least recently accessed object in `tier`.
    pub fn oldest_in(&self, tier: &str) -> Option<ObjectKey> {
        let order = self.order.read();
        order
            .tier_order
            .get(tier)
            .and_then(|m| m.values().next().cloned())
    }

    /// The most recently accessed object in `tier`.
    pub fn newest_in(&self, tier: &str) -> Option<ObjectKey> {
        let order = self.order.read();
        order
            .tier_order
            .get(tier)
            .and_then(|m| m.values().next_back().cloned())
    }

    /// Visits every key currently located in `tier`, oldest first, without
    /// materializing a key vector. The visitor runs under the order-index
    /// read lock: it must not call back into registry mutators (lock
    /// order would invert) — collect first if mutation is needed.
    pub fn for_each_in(&self, tier: &str, mut f: impl FnMut(&ObjectKey)) {
        let order = self.order.read();
        if let Some(m) = order.tier_order.get(tier) {
            for key in m.values() {
                f(key);
            }
        }
    }

    /// Every key currently located in `tier`, oldest first. Materializing
    /// convenience over [`for_each_in`](Self::for_each_in) — prefer the
    /// visitor when the keys are only read, not kept.
    pub fn keys_in(&self, tier: &str) -> Vec<ObjectKey> {
        let mut keys = Vec::new();
        self.for_each_in(tier, |k| keys.push(k.clone()));
        keys
    }

    /// Evaluates a selector to a concrete key set.
    ///
    /// `inserted` supplies the meaning of [`Selector::Inserted`] in action
    /// contexts. Index-backed selectors (`All`, `InTier`, `Dirty`,
    /// `OldestIn`/`NewestIn`, hot/cold) never sweep the object map; only
    /// `Tagged` scans, and it scans shard-by-shard without a global lock.
    pub fn select(
        &self,
        selector: &Selector,
        inserted: Option<&ObjectKey>,
        now: SimTime,
    ) -> Vec<ObjectKey> {
        match selector {
            Selector::Inserted => inserted.cloned().into_iter().collect(),
            Selector::Key(k) => {
                if self.contains(k) {
                    vec![k.clone()]
                } else {
                    Vec::new()
                }
            }
            Selector::All => {
                let order = self.order.read();
                order.access_order.values().cloned().collect()
            }
            Selector::InTier(t) => self.keys_in(t),
            Selector::Dirty => {
                let order = self.order.read();
                order.dirty_order.values().cloned().collect()
            }
            Selector::Tagged(tag) => {
                // Tags carry no index (they are rare, write-once classes);
                // scan shard by shard and return in access order so the
                // result is deterministic.
                let mut hits: Vec<(u64, ObjectKey)> = Vec::new();
                for shard in &self.shards {
                    for (key, entry) in shard.read().map.iter() {
                        if entry.meta.has_tag(tag) {
                            hits.push((entry.seq, key.clone()));
                        }
                    }
                }
                hits.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                hits.into_iter().map(|(_, k)| k).collect()
            }
            Selector::OldestIn(t) => self.oldest_in(t).into_iter().collect(),
            Selector::NewestIn(t) => self.newest_in(t).into_iter().collect(),
            Selector::HotterThan(bound) => self.select_hot(*bound, now),
            Selector::ColderThan(bound) => self.select_cold(*bound, now),
            Selector::And(a, b) => {
                // Evaluate the narrower side as a key set and the other as
                // a per-key predicate; this keeps hot-path conjunctions
                // like `Inserted && !Tagged(..)` O(1) instead of scanning
                // the registry.
                let (small, pred) = if Self::is_narrow(a) || !Self::is_narrow(b) {
                    (a, b)
                } else {
                    (b, a)
                };
                self.select(small, inserted, now)
                    .into_iter()
                    .filter(|k| self.matches(pred, k, inserted, now))
                    .collect()
            }
            Selector::Not(inner) => {
                let excluded: std::collections::HashSet<ObjectKey> =
                    self.select(inner, inserted, now).into_iter().collect();
                let base = self.select(&Selector::All, inserted, now);
                base.into_iter().filter(|k| !excluded.contains(k)).collect()
            }
        }
    }

    /// `HotterThan`: walk the frequency index from the high-count end.
    ///
    /// `freq = count / age ≥ bound` requires `count ≥ bound · age`, and
    /// every object's age is at least `now - max_created`; once the walk
    /// reaches counts below `bound · (now - max_created)` no colder entry
    /// can qualify and it stops. Worst case (every object hot) is O(hits).
    fn select_hot(&self, bound: f64, now: SimTime) -> Vec<ObjectKey> {
        let order = self.order.read();
        if bound <= 0.0 {
            return order.access_order.values().cloned().collect();
        }
        let min_age = now.since(order.max_created.min(now)).as_secs_f64().max(1e-9);
        let floor = bound * min_age;
        let mut hits = Vec::new();
        for (&(count, ref key), &created) in order.freq_index.iter().rev() {
            if (count as f64) < floor {
                break;
            }
            let age = now.since(created.min(now)).as_secs_f64().max(1e-9);
            if count as f64 / age >= bound {
                hits.push(key.clone());
            }
        }
        hits
    }

    /// `ColderThan`: walk the frequency index from the low-count end; stop
    /// once `count ≥ bound · (now - min_created)` (the maximum possible
    /// age), past which no entry can still be cold.
    fn select_cold(&self, bound: f64, now: SimTime) -> Vec<ObjectKey> {
        let order = self.order.read();
        if bound <= 0.0 {
            return Vec::new();
        }
        let max_age = if order.min_created > now {
            1e-9
        } else {
            now.since(order.min_created).as_secs_f64().max(1e-9)
        };
        let ceiling = bound * max_age;
        let mut hits = Vec::new();
        for (&(count, ref key), &created) in order.freq_index.iter() {
            if count as f64 >= ceiling {
                break;
            }
            let age = now.since(created.min(now)).as_secs_f64().max(1e-9);
            if (count as f64 / age) < bound {
                hits.push(key.clone());
            }
        }
        hits
    }

    /// Whether a selector resolves to at most a handful of keys.
    fn is_narrow(sel: &Selector) -> bool {
        match sel {
            Selector::Inserted
            | Selector::Key(_)
            | Selector::OldestIn(_)
            | Selector::NewestIn(_) => true,
            Selector::And(a, b) => Self::is_narrow(a) || Self::is_narrow(b),
            _ => false,
        }
    }

    /// Predicate form of selector evaluation for a single key.
    pub fn matches(
        &self,
        selector: &Selector,
        key: &ObjectKey,
        inserted: Option<&ObjectKey>,
        now: SimTime,
    ) -> bool {
        match selector {
            Selector::Inserted => inserted == Some(key),
            Selector::Key(k) => k == key,
            Selector::All => self.contains(key),
            Selector::InTier(t) => self.get(key).map(|m| m.in_tier(t)).unwrap_or(false),
            Selector::Dirty => self.get(key).map(|m| m.dirty).unwrap_or(false),
            Selector::Tagged(tag) => self.get(key).map(|m| m.has_tag(tag)).unwrap_or(false),
            Selector::OldestIn(t) => self.oldest_in(t).as_ref() == Some(key),
            Selector::NewestIn(t) => self.newest_in(t).as_ref() == Some(key),
            Selector::HotterThan(b) => self
                .get(key)
                .map(|m| m.access_frequency(now) >= *b)
                .unwrap_or(false),
            Selector::ColderThan(b) => self
                .get(key)
                .map(|m| m.access_frequency(now) < *b)
                .unwrap_or(false),
            Selector::And(a, b) => {
                self.matches(a, key, inserted, now) && self.matches(b, key, inserted, now)
            }
            Selector::Not(inner) => !self.matches(inner, key, inserted, now),
        }
    }

    // ---- dedup index (storeOnce) ----

    /// Registers content under `digest`. If the digest is new, `physical`
    /// becomes its physical key and `None` is returned; otherwise the
    /// existing physical key is returned and its refcount incremented.
    pub fn dedup_acquire(&self, digest: Digest, physical: ObjectKey) -> Option<ObjectKey> {
        let mut dedup = self.dedup.lock();
        match dedup.get_mut(&digest) {
            Some((existing, refs)) => {
                *refs += 1;
                Some(existing.clone())
            }
            None => {
                dedup.insert(digest, (physical, 1));
                None
            }
        }
    }

    /// Releases one reference to `digest`; returns the physical key when
    /// the last reference is dropped (the caller then deletes the bytes).
    pub fn dedup_release(&self, digest: &Digest) -> Option<ObjectKey> {
        let mut dedup = self.dedup.lock();
        if let Some((physical, refs)) = dedup.get_mut(digest) {
            *refs -= 1;
            if *refs == 0 {
                let physical = physical.clone();
                dedup.remove(digest);
                return Some(physical);
            }
        }
        None
    }

    /// Physical key behind `digest`, if registered.
    pub fn dedup_lookup(&self, digest: &Digest) -> Option<ObjectKey> {
        self.dedup.lock().get(digest).map(|(k, _)| k.clone())
    }
}

/// Links `key` into every order index and bumps the aggregates. Caller
/// holds the key's shard lock plus both index write guards (lock order:
/// shard → order → aggregates).
fn index_insert(
    order: &mut OrderIndexes,
    aggregates: &mut FxHashMap<String, TierAggregates>,
    key: &ObjectKey,
    meta: &ObjectMeta,
    seq: u64,
) {
    order.access_order.insert(seq, key.clone());
    if meta.dirty {
        order.dirty_order.insert(seq, key.clone());
    }
    order.freq_index.insert((meta.access_count, key.clone()), meta.created);
    order.max_created = order.max_created.max(meta.created);
    order.min_created = order.min_created.min(meta.created);
    for tier in &meta.locations {
        order
            .tier_order
            .entry(tier.clone())
            .or_default()
            .insert(seq, key.clone());
        let agg = aggregates.entry(tier.clone()).or_default();
        agg.objects += 1;
        if meta.dirty {
            agg.dirty_bytes += meta.stored_size;
        }
    }
}

/// Unlinks `key` from every order index and drops its aggregates. Same
/// locking contract as [`index_insert`]. The `created` bounds stay put —
/// they are monotone and only need to bound the *live* set conservatively.
fn index_remove(
    order: &mut OrderIndexes,
    aggregates: &mut FxHashMap<String, TierAggregates>,
    key: &ObjectKey,
    meta: &ObjectMeta,
    seq: u64,
) {
    order.access_order.remove(&seq);
    order.dirty_order.remove(&seq);
    order.freq_index.remove(&(meta.access_count, key.clone()));
    for tier in &meta.locations {
        if let Some(tier_map) = order.tier_order.get_mut(tier) {
            tier_map.remove(&seq);
        }
        if let Some(agg) = aggregates.get_mut(tier) {
            agg.objects = agg.objects.saturating_sub(1);
            if meta.dirty {
                agg.dirty_bytes = agg.dirty_bytes.saturating_sub(meta.stored_size);
            }
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("objects", &self.len())
            .field("shards", &SHARD_COUNT)
            .field("persistent", &self.store.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Tag;

    fn meta_in(tier: &str, size: u64, now: SimTime) -> ObjectMeta {
        let mut m = ObjectMeta::new(size, now);
        m.locations.insert(tier.into());
        m
    }

    #[test]
    fn upsert_get_remove() {
        let r = Registry::in_memory();
        let k = ObjectKey::new("a");
        r.upsert(k.clone(), meta_in("t1", 100, SimTime::ZERO));
        assert!(r.contains(&k));
        assert_eq!(r.get(&k).unwrap().size, 100);
        assert_eq!(r.aggregates("t1").objects, 1);
        r.remove(&k);
        assert!(!r.contains(&k));
        assert_eq!(r.aggregates("t1").objects, 0);
    }

    #[test]
    fn lru_order_follows_access() {
        let r = Registry::in_memory();
        for name in ["a", "b", "c"] {
            r.upsert(ObjectKey::new(name), meta_in("t1", 10, SimTime::ZERO));
        }
        assert_eq!(r.oldest_in("t1").unwrap().as_str(), "a");
        assert_eq!(r.newest_in("t1").unwrap().as_str(), "c");
        // Touching "a" makes it newest.
        r.touch(&ObjectKey::new("a"), SimTime::from_secs(1));
        assert_eq!(r.oldest_in("t1").unwrap().as_str(), "b");
        assert_eq!(r.newest_in("t1").unwrap().as_str(), "a");
    }

    #[test]
    fn aggregates_track_dirty_bytes() {
        let r = Registry::in_memory();
        let k = ObjectKey::new("a");
        let mut m = meta_in("t1", 100, SimTime::ZERO);
        m.dirty = true;
        r.upsert(k.clone(), m);
        assert_eq!(r.aggregates("t1").dirty_bytes, 100);
        r.update(&k, |m| m.dirty = false);
        assert_eq!(r.aggregates("t1").dirty_bytes, 0);
    }

    #[test]
    fn selectors_resolve() {
        let r = Registry::in_memory();
        let now = SimTime::ZERO;
        let mut m1 = meta_in("t1", 10, now);
        m1.dirty = true;
        m1.tags.insert(Tag::new("tmp"));
        r.upsert(ObjectKey::new("a"), m1);
        r.upsert(ObjectKey::new("b"), meta_in("t2", 10, now));

        assert_eq!(r.select(&Selector::All, None, now).len(), 2);
        assert_eq!(r.select(&Selector::Dirty, None, now).len(), 1);
        assert_eq!(
            r.select(&Selector::Tagged(Tag::new("tmp")), None, now)[0].as_str(),
            "a"
        );
        assert_eq!(r.select(&Selector::InTier("t2".into()), None, now).len(), 1);
        let conj = Selector::InTier("t1".into()).and(Selector::Dirty);
        assert_eq!(r.select(&conj, None, now).len(), 1);
        let conj_empty = Selector::InTier("t2".into()).and(Selector::Dirty);
        assert!(r.select(&conj_empty, None, now).is_empty());
        // Inserted resolves through the context argument.
        let k = ObjectKey::new("a");
        assert_eq!(r.select(&Selector::Inserted, Some(&k), now), vec![k]);
        assert!(r.select(&Selector::Inserted, None, now).is_empty());
    }

    #[test]
    fn not_selector_complements() {
        let r = Registry::in_memory();
        let now = SimTime::ZERO;
        let mut tagged = meta_in("t1", 1, now);
        tagged.tags.insert(Tag::new("tmp"));
        r.upsert(ObjectKey::new("tmp-obj"), tagged);
        r.upsert(ObjectKey::new("plain"), meta_in("t1", 1, now));
        let not_tmp = Selector::Tagged(Tag::new("tmp")).negate();
        let hits = r.select(&not_tmp, None, now);
        assert_eq!(hits, vec![ObjectKey::new("plain")]);
        // Inserted && !tagged resolves against the inserted object.
        let sel = Selector::Inserted.and(Selector::Tagged(Tag::new("tmp")).negate());
        assert_eq!(
            r.select(&sel, Some(&ObjectKey::new("plain")), now).len(),
            1
        );
        assert!(r
            .select(&sel, Some(&ObjectKey::new("tmp-obj")), now)
            .is_empty());
    }

    #[test]
    fn hot_cold_selectors() {
        let r = Registry::in_memory();
        let hot = ObjectKey::new("hot");
        let cold = ObjectKey::new("cold");
        r.upsert(hot.clone(), meta_in("t1", 10, SimTime::ZERO));
        r.upsert(cold.clone(), meta_in("t1", 10, SimTime::ZERO));
        for _ in 0..100 {
            r.touch(&hot, SimTime::from_secs(10));
        }
        r.touch(&cold, SimTime::from_secs(10));
        let now = SimTime::from_secs(10);
        let hots = r.select(&Selector::HotterThan(5.0), None, now);
        assert_eq!(hots, vec![hot]);
        let colds = r.select(&Selector::ColderThan(5.0), None, now);
        assert_eq!(colds, vec![cold]);
    }

    #[test]
    fn hot_cold_partition_is_exact() {
        // The index walk with early stopping must agree exactly with the
        // brute-force per-object predicate, across varied ages and counts.
        let r = Registry::in_memory();
        for i in 0..40u64 {
            let k = ObjectKey::new(format!("o{i}"));
            r.upsert(k.clone(), meta_in("t1", 1, SimTime::from_secs(i % 7)));
            for _ in 0..(i % 11) {
                r.touch(&k, SimTime::from_secs(8));
            }
        }
        let now = SimTime::from_secs(9);
        for bound in [0.0, 0.1, 0.5, 1.0, 2.0] {
            let mut hot = r.select(&Selector::HotterThan(bound), None, now);
            let mut cold = r.select(&Selector::ColderThan(bound), None, now);
            let mut brute_hot = Vec::new();
            let mut brute_cold = Vec::new();
            for k in r.select(&Selector::All, None, now) {
                if r.get(&k).unwrap().access_frequency(now) >= bound {
                    brute_hot.push(k);
                } else {
                    brute_cold.push(k);
                }
            }
            hot.sort();
            cold.sort();
            brute_hot.sort();
            brute_cold.sort();
            assert_eq!(hot, brute_hot, "bound {bound}");
            assert_eq!(cold, brute_cold, "bound {bound}");
        }
    }

    #[test]
    fn all_and_dirty_return_access_order() {
        let r = Registry::in_memory();
        for name in ["a", "b", "c"] {
            let mut m = meta_in("t1", 1, SimTime::ZERO);
            m.dirty = true;
            r.upsert(ObjectKey::new(name), m);
        }
        r.touch(&ObjectKey::new("a"), SimTime::from_secs(1));
        let all: Vec<String> = r
            .select(&Selector::All, None, SimTime::from_secs(1))
            .iter()
            .map(|k| k.as_str().to_string())
            .collect();
        assert_eq!(all, vec!["b", "c", "a"], "oldest access first");
        let dirty = r.select(&Selector::Dirty, None, SimTime::from_secs(1));
        assert_eq!(dirty.len(), 3);
        assert_eq!(dirty[0].as_str(), "b");
    }

    #[test]
    fn for_each_in_visits_in_lru_order_without_cloning_vecs() {
        let r = Registry::in_memory();
        for name in ["a", "b", "c"] {
            r.upsert(ObjectKey::new(name), meta_in("t1", 1, SimTime::ZERO));
        }
        r.touch(&ObjectKey::new("b"), SimTime::from_secs(1));
        let mut seen = Vec::new();
        r.for_each_in("t1", |k| seen.push(k.as_str().to_string()));
        assert_eq!(seen, vec!["a", "c", "b"]);
        let mut none = 0;
        r.for_each_in("no-such-tier", |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn recount_matches_incremental_aggregates() {
        let r = Registry::in_memory();
        for i in 0..50u64 {
            let mut m = meta_in(if i % 2 == 0 { "t1" } else { "t2" }, i + 1, SimTime::ZERO);
            m.dirty = i % 3 == 0;
            r.upsert(ObjectKey::new(format!("k{i}")), m);
        }
        for i in (0..50u64).step_by(5) {
            r.remove(&ObjectKey::new(format!("k{i}")));
        }
        for i in (1..50u64).step_by(7) {
            r.update(&ObjectKey::new(format!("k{i}")), |m| m.dirty = !m.dirty);
        }
        for tier in ["t1", "t2"] {
            assert_eq!(r.aggregates(tier), r.recount_aggregates(tier), "{tier}");
        }
    }

    #[test]
    fn concurrent_shard_ops_keep_indexes_consistent() {
        use std::sync::Arc;
        let r = Arc::new(Registry::in_memory());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = ObjectKey::new(format!("t{t}-k{i}"));
                        let mut m = meta_in("t1", 8, SimTime::ZERO);
                        m.dirty = true;
                        r.upsert(k.clone(), m);
                        r.touch(&k, SimTime::from_secs(i));
                        if i % 3 == 0 {
                            r.remove(&k);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.aggregates("t1"), r.recount_aggregates("t1"));
        assert_eq!(r.len() as u64, r.recount_aggregates("t1").objects);
        // The tier order index holds exactly the live keys.
        assert_eq!(r.keys_in("t1").len(), r.len());
    }

    #[test]
    fn dedup_refcounting() {
        let r = Registry::in_memory();
        let d = Digest::of(b"content");
        let phys = ObjectKey::new("sha256:abc");
        assert_eq!(r.dedup_acquire(d, phys.clone()), None, "first is new");
        assert_eq!(
            r.dedup_acquire(d, ObjectKey::new("ignored")),
            Some(phys.clone()),
            "second returns existing physical key"
        );
        assert_eq!(r.dedup_release(&d), None, "one ref remains");
        assert_eq!(r.dedup_release(&d), Some(phys), "last release frees");
        assert_eq!(r.dedup_lookup(&d), None);
    }

    #[test]
    fn persistent_registry_recovers() {
        let dir = std::env::temp_dir().join(format!("tiera-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let r = Registry::persistent(&dir).unwrap();
            let mut m = meta_in("t1", 42, SimTime::from_secs(3));
            m.dirty = true;
            r.upsert(ObjectKey::new("persisted"), m);
            r.remove(&ObjectKey::new("persisted-then-removed"));
            r.sync().unwrap();
        }
        let r = Registry::persistent(&dir).unwrap();
        let m = r.get(&ObjectKey::new("persisted")).expect("recovered");
        assert_eq!(m.size, 42);
        assert!(m.dirty);
        assert_eq!(r.aggregates("t1").objects, 1, "indexes rebuilt");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_missing_returns_none() {
        let r = Registry::in_memory();
        assert!(r.update(&ObjectKey::new("nope"), |m| m.dirty = true).is_none());
        assert!(r.touch(&ObjectKey::new("nope"), SimTime::ZERO).is_none());
    }
}
