//! Instance statistics: latency histograms, per-tier hit counters, and
//! event-dispatch counters (used by the overhead experiment, Figure 18).

use std::collections::HashMap;

use tiera_support::sync::Mutex;
use tiera_sim::{Histogram, SimDuration};

/// Snapshot of one histogram's key numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// 95th percentile (the paper's headline latency metric).
    pub p95: SimDuration,
    /// Maximum observed.
    pub max: SimDuration,
}

#[derive(Default)]
struct StatsInner {
    reads: Histogram,
    writes: Histogram,
    tier_read_hits: HashMap<String, u64>,
    events_fired: u64,
    responses_run: u64,
    background_queued: u64,
}

/// Thread-safe statistics collected by an instance.
#[derive(Default)]
pub struct InstanceStats {
    inner: Mutex<StatsInner>,
}

impl InstanceStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client read and the tier that served it.
    pub fn record_read(&self, latency: SimDuration, tier: &str) {
        let mut g = self.inner.lock();
        g.reads.record(latency);
        *g.tier_read_hits.entry(tier.to_string()).or_default() += 1;
    }

    /// Records a client write.
    pub fn record_write(&self, latency: SimDuration) {
        self.inner.lock().writes.record(latency);
    }

    /// Counts an event firing.
    pub fn record_event(&self) {
        self.inner.lock().events_fired += 1;
    }

    /// Counts a response execution.
    pub fn record_response(&self) {
        self.inner.lock().responses_run += 1;
    }

    /// Counts a background enqueue.
    pub fn record_background(&self) {
        self.inner.lock().background_queued += 1;
    }

    /// Read-latency summary.
    pub fn reads(&self) -> LatencySummary {
        let g = self.inner.lock();
        summarize(&g.reads)
    }

    /// Write-latency summary.
    pub fn writes(&self) -> LatencySummary {
        let g = self.inner.lock();
        summarize(&g.writes)
    }

    /// Reads served per tier.
    pub fn tier_read_hits(&self) -> HashMap<String, u64> {
        self.inner.lock().tier_read_hits.clone()
    }

    /// `(events fired, responses run, background queued)`.
    pub fn dispatch_counters(&self) -> (u64, u64, u64) {
        let g = self.inner.lock();
        (g.events_fired, g.responses_run, g.background_queued)
    }

    /// Clears all statistics (between experiment phases).
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        *g = StatsInner::default();
    }
}

fn summarize(h: &Histogram) -> LatencySummary {
    LatencySummary {
        count: h.count(),
        mean: h.mean(),
        p95: h.quantile(0.95),
        max: h.max(),
    }
}

impl std::fmt::Debug for InstanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceStats")
            .field("reads", &self.reads())
            .field("writes", &self.writes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_summaries() {
        let s = InstanceStats::new();
        for ms in [1u64, 2, 3] {
            s.record_read(SimDuration::from_millis(ms), "cache");
        }
        s.record_write(SimDuration::from_millis(10));
        let r = s.reads();
        assert_eq!(r.count, 3);
        assert_eq!(r.mean, SimDuration::from_millis(2));
        assert_eq!(s.writes().count, 1);
        assert_eq!(s.tier_read_hits()["cache"], 3);
    }

    #[test]
    fn dispatch_counters_accumulate_and_reset() {
        let s = InstanceStats::new();
        s.record_event();
        s.record_event();
        s.record_response();
        s.record_background();
        assert_eq!(s.dispatch_counters(), (2, 1, 1));
        s.reset();
        assert_eq!(s.dispatch_counters(), (0, 0, 0));
        assert_eq!(s.reads().count, 0);
    }
}
