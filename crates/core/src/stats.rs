//! Instance statistics: latency histograms, per-tier hit counters, and
//! event-dispatch counters (used by the overhead experiment, Figure 18).
//!
//! The counters sit on the client hot path (every PUT/GET records here), so
//! the implementation is contention-free where it can be and striped where
//! it cannot:
//!
//! * dispatch counters are plain `AtomicU64`s — one `fetch_add`, no lock;
//! * latency histograms and tier hit counts are striped across
//!   [`STRIPES`] independently-locked slots picked by thread identity, so
//!   concurrent request threads record into different stripes and never
//!   serialize against each other. Readers merge the stripes on demand —
//!   reads are rare (experiment reporting), writes are constant.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use tiera_support::collections::{fx_hash_one, FxHashMap};
use tiera_support::sync::{rank, Mutex};
use tiera_sim::{Histogram, SimDuration};

/// Number of latency-recording stripes. Matches the largest request pool
/// the RPC server runs by default; more threads than stripes just share.
const STRIPES: usize = 8;

/// Snapshot of one histogram's key numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// 95th percentile (the paper's headline latency metric).
    pub p95: SimDuration,
    /// Maximum observed.
    pub max: SimDuration,
}

/// One stripe of lock-protected latency state.
#[derive(Default)]
struct Stripe {
    reads: Histogram,
    writes: Histogram,
    tier_read_hits: FxHashMap<String, u64>,
}

/// Thread-safe statistics collected by an instance.
pub struct InstanceStats {
    stripes: Vec<Mutex<Stripe>>,
    events_fired: AtomicU64,
    responses_run: AtomicU64,
    background_queued: AtomicU64,
}

impl Default for InstanceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self {
            stripes: (0..STRIPES)
                .map(|_| Mutex::named("stats.stripe", rank::STATS_STRIPE, Stripe::default()))
                .collect(),
            events_fired: AtomicU64::new(0),
            responses_run: AtomicU64::new(0),
            background_queued: AtomicU64::new(0),
        }
    }

    /// The calling thread's stripe. Thread identity keeps a steady request
    /// thread on one stripe, so its samples stay cache-warm.
    fn stripe(&self) -> &Mutex<Stripe> {
        let h = fx_hash_one(&std::thread::current().id());
        &self.stripes[(h % STRIPES as u64) as usize]
    }

    /// Records a client read and the tier that served it.
    pub fn record_read(&self, latency: SimDuration, tier: &str) {
        let mut g = self.stripe().lock();
        g.reads.record(latency);
        match g.tier_read_hits.get_mut(tier) {
            Some(n) => *n += 1,
            None => {
                g.tier_read_hits.insert(tier.to_string(), 1);
            }
        }
    }

    /// Records a client write.
    pub fn record_write(&self, latency: SimDuration) {
        self.stripe().lock().writes.record(latency);
    }

    /// Counts an event firing.
    pub fn record_event(&self) {
        self.events_fired.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a response execution.
    pub fn record_response(&self) {
        self.responses_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a background enqueue.
    pub fn record_background(&self) {
        self.background_queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Read-latency summary (stripes merged).
    pub fn reads(&self) -> LatencySummary {
        summarize(&self.merged(|s| &s.reads))
    }

    /// Write-latency summary (stripes merged).
    pub fn writes(&self) -> LatencySummary {
        summarize(&self.merged(|s| &s.writes))
    }

    /// Reads served per tier (stripes merged).
    pub fn tier_read_hits(&self) -> HashMap<String, u64> {
        let mut merged: HashMap<String, u64> = HashMap::new();
        for stripe in &self.stripes {
            let g = stripe.lock();
            for (tier, n) in &g.tier_read_hits {
                *merged.entry(tier.clone()).or_default() += n;
            }
        }
        merged
    }

    /// `(events fired, responses run, background queued)`.
    pub fn dispatch_counters(&self) -> (u64, u64, u64) {
        (
            self.events_fired.load(Ordering::Relaxed),
            self.responses_run.load(Ordering::Relaxed),
            self.background_queued.load(Ordering::Relaxed),
        )
    }

    /// Clears all statistics (between experiment phases).
    pub fn reset(&self) {
        for stripe in &self.stripes {
            *stripe.lock() = Stripe::default();
        }
        self.events_fired.store(0, Ordering::Relaxed);
        self.responses_run.store(0, Ordering::Relaxed);
        self.background_queued.store(0, Ordering::Relaxed);
    }

    fn merged(&self, pick: impl Fn(&Stripe) -> &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for stripe in &self.stripes {
            out.merge(pick(&stripe.lock()));
        }
        out
    }
}

fn summarize(h: &Histogram) -> LatencySummary {
    LatencySummary {
        count: h.count(),
        mean: h.mean(),
        p95: h.quantile(0.95),
        max: h.max(),
    }
}

impl std::fmt::Debug for InstanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceStats")
            .field("reads", &self.reads())
            .field("writes", &self.writes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_summaries() {
        let s = InstanceStats::new();
        for ms in [1u64, 2, 3] {
            s.record_read(SimDuration::from_millis(ms), "cache");
        }
        s.record_write(SimDuration::from_millis(10));
        let r = s.reads();
        assert_eq!(r.count, 3);
        assert_eq!(r.mean, SimDuration::from_millis(2));
        assert_eq!(s.writes().count, 1);
        assert_eq!(s.tier_read_hits()["cache"], 3);
    }

    #[test]
    fn dispatch_counters_accumulate_and_reset() {
        let s = InstanceStats::new();
        s.record_event();
        s.record_event();
        s.record_response();
        s.record_background();
        assert_eq!(s.dispatch_counters(), (2, 1, 1));
        s.reset();
        assert_eq!(s.dispatch_counters(), (0, 0, 0));
        assert_eq!(s.reads().count, 0);
    }

    #[test]
    fn striped_recording_merges_across_threads() {
        use std::sync::Arc;
        let s = Arc::new(InstanceStats::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        s.record_read(SimDuration::from_micros(i + 1), "cache");
                        s.record_write(SimDuration::from_micros(t * 10 + 1));
                        s.record_event();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.reads().count, 800);
        assert_eq!(s.writes().count, 800);
        assert_eq!(s.tier_read_hits()["cache"], 800);
        assert_eq!(s.dispatch_counters().0, 800);
    }
}
