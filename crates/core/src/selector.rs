//! Object selectors — the `what:` argument of responses.
//!
//! Paper §2.2: "Events may be defined on individual named objects or object
//! classes, the latter allowing a single policy to apply to object
//! collections (sharing a common tag)." Responses likewise target object
//! sets: the inserted object (`insert.object`), location/dirty predicates
//! (`object.location == tier1 && object.dirty == true`), tag classes, or
//! the oldest/newest object in a tier (the LRU/MRU idiom of Figure 5).

use crate::object::{ObjectKey, Tag};

/// Selects the set of objects a response applies to.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// `insert.object` — the object the triggering action carried.
    Inserted,
    /// A single named object.
    Key(ObjectKey),
    /// Every object in the instance.
    All,
    /// `object.location == <tier>`.
    InTier(String),
    /// `object.dirty == true`.
    Dirty,
    /// Objects carrying a tag (object classes).
    Tagged(Tag),
    /// `tierN.oldest` — least recently accessed object located in a tier.
    OldestIn(String),
    /// `tierN.newest` — most recently accessed object located in a tier.
    NewestIn(String),
    /// Objects whose access frequency (accesses/sec) is at least the bound
    /// ("hot" objects, paper §2.3).
    HotterThan(f64),
    /// Objects whose access frequency is below the bound ("cold" objects).
    ColderThan(f64),
    /// Conjunction of two selectors.
    And(Box<Selector>, Box<Selector>),
    /// Negation (set complement). Most useful in conjunctions, e.g.
    /// `Inserted && !Tagged("redo-log")` to route an object class away
    /// from the default placement.
    Not(Box<Selector>),
}

impl Selector {
    /// Conjunction helper: `a.and(b)`.
    pub fn and(self, other: Selector) -> Selector {
        Selector::And(Box::new(self), Box::new(other))
    }

    /// Negation helper: `a.negate()`.
    pub fn negate(self) -> Selector {
        Selector::Not(Box::new(self))
    }

    /// Whether this selector can only ever match the inserted object.
    pub fn is_inserted_only(&self) -> bool {
        match self {
            Selector::Inserted => true,
            Selector::And(a, b) => a.is_inserted_only() || b.is_inserted_only(),
            Selector::Not(_) => false,
            _ => false,
        }
    }

    /// Tier names referenced by the selector (used to validate rules against
    /// an instance's attached tiers).
    pub fn referenced_tiers(&self) -> Vec<&str> {
        match self {
            Selector::InTier(t) | Selector::OldestIn(t) | Selector::NewestIn(t) => vec![t],
            Selector::And(a, b) => {
                let mut v = a.referenced_tiers();
                v.extend(b.referenced_tiers());
                v
            }
            Selector::Not(inner) => inner.referenced_tiers(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_builds_conjunctions() {
        let s = Selector::InTier("tier1".into()).and(Selector::Dirty);
        match &s {
            Selector::And(a, b) => {
                assert_eq!(**a, Selector::InTier("tier1".into()));
                assert_eq!(**b, Selector::Dirty);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn inserted_only_detection() {
        assert!(Selector::Inserted.is_inserted_only());
        assert!(Selector::Inserted.and(Selector::Dirty).is_inserted_only());
        assert!(!Selector::Dirty.is_inserted_only());
        assert!(!Selector::All.is_inserted_only());
    }

    #[test]
    fn negation_builds_and_collects() {
        let s = Selector::Tagged(crate::object::Tag::new("tmp")).negate();
        assert!(matches!(s, Selector::Not(_)));
        let t = Selector::InTier("a".into()).negate();
        assert_eq!(t.referenced_tiers(), vec!["a"]);
        assert!(!Selector::Inserted.negate().is_inserted_only());
    }

    #[test]
    fn referenced_tiers_collects() {
        let s = Selector::InTier("a".into()).and(Selector::OldestIn("b".into()));
        let mut tiers = s.referenced_tiers();
        tiers.sort_unstable();
        assert_eq!(tiers, vec!["a", "b"]);
        assert!(Selector::Dirty.referenced_tiers().is_empty());
    }
}
