//! The external monitoring application of paper §4.2.3 ("Adapting to
//! Failures").
//!
//! "We also deployed an external monitoring application that detects a
//! storage failure and will reconfigure the instance if this occurs. The
//! monitoring application writes data to the Tiera instance on a 2 minute
//! schedule. It assumes a storage service has failed if the attempt to
//! write data (after successive retries) fails."
//!
//! [`FailureMonitor`] is that component: driven on a schedule in virtual
//! time, it probes the instance with a canary PUT and, after the configured
//! number of consecutive failures, invokes the reconfiguration callback
//! (which typically detaches the failed tier, attaches replacements, and
//! swaps the policy — reproducing Figure 17's recovery).

use std::sync::Arc;

use tiera_sim::{SimDuration, SimTime};

use crate::instance::Instance;

/// Outcome of one monitor probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The canary write succeeded.
    Healthy,
    /// The canary write failed, but the failure budget is not exhausted.
    Suspect {
        /// Consecutive failures so far.
        failures: u32,
    },
    /// The failure budget was exhausted; the reconfiguration callback ran.
    Reconfigured,
    /// A failure happened after reconfiguration already ran once.
    AlreadyReconfigured,
}

/// Periodic canary-writing failure detector.
pub struct FailureMonitor {
    instance: Arc<Instance>,
    period: SimDuration,
    retries: u32,
    next_probe: SimTime,
    consecutive_failures: u32,
    reconfigured: bool,
    probe_seq: u64,
    observe_alerts: bool,
    on_failure: Box<dyn FnMut(&Instance) + Send>,
}

impl FailureMonitor {
    /// Creates a monitor probing `instance` every `period`, declaring
    /// failure after `retries` consecutive failed canary writes and then
    /// invoking `on_failure` once.
    pub fn new(
        instance: Arc<Instance>,
        period: SimDuration,
        retries: u32,
        on_failure: impl FnMut(&Instance) + Send + 'static,
    ) -> Self {
        Self {
            instance,
            period,
            retries: retries.max(1),
            next_probe: SimTime::ZERO + period,
            consecutive_failures: 0,
            reconfigured: false,
            probe_seq: 0,
            observe_alerts: false,
            on_failure: Box::new(on_failure),
        }
    }

    /// Also counts the instance's FAILURE_ALERT events (degraded PUTs,
    /// dropped background work — see [`crate::retry::FailureAlert`])
    /// toward the failure budget: each tick that drains at least one alert
    /// counts like one failed canary probe. Off by default, so existing
    /// canary-only monitors are unchanged.
    pub fn observing_alerts(mut self) -> Self {
        self.observe_alerts = true;
        self
    }

    /// The paper's configuration: probe every 2 minutes.
    pub fn every_two_minutes(
        instance: Arc<Instance>,
        on_failure: impl FnMut(&Instance) + Send + 'static,
    ) -> Self {
        Self::new(instance, SimDuration::from_secs(120), 1, on_failure)
    }

    /// Whether the monitor has already reconfigured the instance.
    pub fn has_reconfigured(&self) -> bool {
        self.reconfigured
    }

    /// Advances the monitor to virtual time `now`, probing as scheduled.
    /// Returns the outcomes of the probes performed.
    pub fn tick(&mut self, now: SimTime) -> Vec<ProbeOutcome> {
        let mut outcomes = Vec::new();
        if self.observe_alerts {
            let alerts = self.instance.drain_alerts();
            if !alerts.is_empty() {
                outcomes.push(self.register_failure());
            }
        }
        while self.next_probe <= now {
            let at = self.next_probe;
            outcomes.push(self.probe(at));
            self.next_probe = at + self.period;
        }
        outcomes
    }

    /// One failure signal (failed canary or drained alerts) against the
    /// retry budget.
    fn register_failure(&mut self) -> ProbeOutcome {
        if self.reconfigured {
            return ProbeOutcome::AlreadyReconfigured;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.retries {
            self.reconfigured = true;
            (self.on_failure)(&self.instance);
            ProbeOutcome::Reconfigured
        } else {
            ProbeOutcome::Suspect {
                failures: self.consecutive_failures,
            }
        }
    }

    fn probe(&mut self, at: SimTime) -> ProbeOutcome {
        self.probe_seq += 1;
        let key = format!("__tiera_monitor_canary_{}", self.probe_seq);
        match self.instance.put(key, &b"canary"[..], at) {
            Ok(_) => {
                self.consecutive_failures = 0;
                ProbeOutcome::Healthy
            }
            Err(_) => self.register_failure(),
        }
    }
}

impl std::fmt::Debug for FailureMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureMonitor")
            .field("period", &self.period)
            .field("next_probe", &self.next_probe)
            .field("reconfigured", &self.reconfigured)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InstanceBuilder;
    use crate::tier::MemTier;
    use std::sync::atomic::{AtomicU32, Ordering};
    use tiera_sim::SimEnv;

    fn tiny_instance() -> Arc<Instance> {
        InstanceBuilder::new("mon", SimEnv::new(3))
            .tier(MemTier::with_capacity("t1", 10)) // tiny: canaries overflow it
            .build()
            .unwrap()
    }

    #[test]
    fn healthy_probes_do_not_reconfigure() {
        let inst = InstanceBuilder::new("mon", SimEnv::new(3))
            .tier(MemTier::with_capacity("t1", 1 << 20))
            .build()
            .unwrap();
        let fired = Arc::new(AtomicU32::new(0));
        let fired2 = fired.clone();
        let mut mon = FailureMonitor::every_two_minutes(inst, move |_| {
            fired2.fetch_add(1, Ordering::Relaxed);
        });
        let outcomes = mon.tick(SimTime::from_secs(600));
        assert_eq!(outcomes.len(), 5, "probes at 2,4,6,8,10 min");
        assert!(outcomes.iter().all(|o| *o == ProbeOutcome::Healthy));
        assert_eq!(fired.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn failures_trigger_reconfiguration_once() {
        // Capacity 10 bytes: the first canary (6 bytes) fits, later ones
        // collide with capacity and fail.
        let inst = tiny_instance();
        let fired = Arc::new(AtomicU32::new(0));
        let fired2 = fired.clone();
        let mut mon = FailureMonitor::every_two_minutes(inst, move |_| {
            fired2.fetch_add(1, Ordering::Relaxed);
        });
        let outcomes = mon.tick(SimTime::from_secs(1200));
        assert!(outcomes.contains(&ProbeOutcome::Reconfigured));
        assert_eq!(
            fired.load(Ordering::Relaxed),
            1,
            "callback runs exactly once: {outcomes:?}"
        );
        assert!(mon.has_reconfigured());
    }

    #[test]
    fn retries_budget_respected() {
        let inst = tiny_instance();
        let mut mon = FailureMonitor::new(
            inst,
            SimDuration::from_secs(60),
            3,
            |_| {},
        );
        // First canary fits (6 <= 10); subsequent fail. With retries=3 the
        // monitor stays Suspect for two failures before reconfiguring.
        let outcomes = mon.tick(SimTime::from_secs(300));
        let suspects = outcomes
            .iter()
            .filter(|o| matches!(o, ProbeOutcome::Suspect { .. }))
            .count();
        assert_eq!(suspects, 2, "{outcomes:?}");
        assert!(outcomes.contains(&ProbeOutcome::Reconfigured));
    }
}
