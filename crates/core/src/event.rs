//! Events — the trigger half of Tiera's policy mechanism.
//!
//! Paper §2.2: "Tiera supports three different kinds of events: (1) timer
//! events that occur at the end of a specified time period, (2) threshold
//! events that can be based on attributes of data objects and of the tiers
//! themselves... and (3) action events that occur when actions such as data
//! insertion or deletion are performed."
//!
//! Evaluation modes follow §3: action and threshold events are *foreground*
//! by default (evaluated synchronously, their responses charged to the
//! client request); threshold and action events may be declared
//! *background*, in which case responses are queued to the response thread
//! pool and executed asynchronously.

use tiera_sim::SimDuration;

/// The client action that fires an action event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionOp {
    /// `insert.into` — a PUT request.
    Put,
    /// A GET request.
    Get,
    /// A DELETE request.
    Delete,
}

/// A measurable quantity a threshold event watches.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Fraction of a tier's capacity in use (`tier1.filled` in the DSL),
    /// expressed in `0.0..=1.0`.
    TierFillFraction(String),
    /// Absolute bytes stored in a tier.
    TierUsedBytes(String),
    /// Bytes of dirty (not yet persisted) objects located in a tier.
    TierDirtyBytes(String),
    /// Number of objects located in a tier.
    TierObjectCount(String),
    /// Total accesses of a named object (paper §2.2: thresholds "can be
    /// based on attributes of data objects" — e.g. promote an object once
    /// it turns hot).
    ObjectAccessCount(String),
    /// A named object's access frequency in accesses per second.
    ObjectAccessFrequency(String),
}

impl Metric {
    /// The tier the metric observes, if it is a tier metric.
    pub fn tier(&self) -> Option<&str> {
        match self {
            Metric::TierFillFraction(t)
            | Metric::TierUsedBytes(t)
            | Metric::TierDirtyBytes(t)
            | Metric::TierObjectCount(t) => Some(t),
            Metric::ObjectAccessCount(_) | Metric::ObjectAccessFrequency(_) => None,
        }
    }

    /// The object the metric observes, if it is an object metric.
    pub fn object(&self) -> Option<&str> {
        match self {
            Metric::ObjectAccessCount(k) | Metric::ObjectAccessFrequency(k) => Some(k),
            _ => None,
        }
    }
}

/// Comparison relating a metric to its threshold value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Fires when the metric reaches or exceeds the value (the DSL's
    /// `tier1.filled == 75%` means "reaches 75 %").
    AtLeast,
    /// Fires when the metric drops to or below the value.
    AtMost,
}

impl Relation {
    /// Evaluates `metric_value <relation> threshold`.
    pub fn holds(self, metric_value: f64, threshold: f64) -> bool {
        match self {
            Relation::AtLeast => metric_value >= threshold,
            Relation::AtMost => metric_value <= threshold,
        }
    }
}

/// The three kinds of events Tiera supports.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Fires every `period` of virtual time.
    Timer {
        /// The repetition period.
        period: SimDuration,
    },
    /// Fires when `metric <relation> value` becomes true (edge-triggered:
    /// the rule re-arms when the condition becomes false again).
    Threshold {
        /// Observed quantity.
        metric: Metric,
        /// Comparison direction.
        relation: Relation,
        /// Threshold value (fraction for fill metrics, bytes/count
        /// otherwise).
        value: f64,
        /// `true` → responses are queued to the background pool instead of
        /// running on the triggering request's thread.
        background: bool,
    },
    /// Fires when a client action occurs, optionally only when it involves
    /// a specific tier (`insert.into == tier1`).
    Action {
        /// Which client action.
        op: ActionOp,
        /// Restrict to actions routed at this tier, if set.
        tier: Option<String>,
        /// `true` → responses run in the background.
        background: bool,
    },
}

impl EventKind {
    /// A timer event.
    pub fn timer(period: SimDuration) -> Self {
        EventKind::Timer { period }
    }

    /// A foreground action event on any tier.
    pub fn action(op: ActionOp) -> Self {
        EventKind::Action {
            op,
            tier: None,
            background: false,
        }
    }

    /// A foreground action event scoped to a tier (`insert.into == tier1`).
    pub fn action_on(op: ActionOp, tier: impl Into<String>) -> Self {
        EventKind::Action {
            op,
            tier: Some(tier.into()),
            background: false,
        }
    }

    /// A foreground threshold event `metric >= value`.
    pub fn threshold_at_least(metric: Metric, value: f64) -> Self {
        EventKind::Threshold {
            metric,
            relation: Relation::AtLeast,
            value,
            background: false,
        }
    }

    /// Marks the event as background-evaluated (paper §3). No-op for timer
    /// events, which are background by nature.
    pub fn background(mut self) -> Self {
        match &mut self {
            EventKind::Threshold { background, .. } | EventKind::Action { background, .. } => {
                *background = true
            }
            EventKind::Timer { .. } => {}
        }
        self
    }

    /// Whether responses to this event run asynchronously.
    pub fn is_background(&self) -> bool {
        match self {
            EventKind::Timer { .. } => true,
            EventKind::Threshold { background, .. } | EventKind::Action { background, .. } => {
                *background
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_evaluate() {
        assert!(Relation::AtLeast.holds(0.80, 0.75));
        assert!(Relation::AtLeast.holds(0.75, 0.75));
        assert!(!Relation::AtLeast.holds(0.74, 0.75));
        assert!(Relation::AtMost.holds(0.10, 0.25));
        assert!(!Relation::AtMost.holds(0.30, 0.25));
    }

    #[test]
    fn background_marking() {
        let e = EventKind::action(ActionOp::Put);
        assert!(!e.is_background());
        assert!(e.background().is_background());
        // Timers are inherently background.
        assert!(EventKind::timer(SimDuration::from_secs(1)).is_background());
    }

    #[test]
    fn metric_names_its_tier_or_object() {
        assert_eq!(Metric::TierFillFraction("t1".into()).tier(), Some("t1"));
        assert_eq!(Metric::TierDirtyBytes("t2".into()).tier(), Some("t2"));
        let m = Metric::ObjectAccessCount("obj".into());
        assert_eq!(m.tier(), None);
        assert_eq!(m.object(), Some("obj"));
    }

    #[test]
    fn action_scoping() {
        let e = EventKind::action_on(ActionOp::Put, "tier1");
        match e {
            EventKind::Action { op, tier, .. } => {
                assert_eq!(op, ActionOp::Put);
                assert_eq!(tier.as_deref(), Some("tier1"));
            }
            _ => panic!(),
        }
    }
}
