//! Rules and runtime-mutable policies.
//!
//! "An important aspect of Tiera's novelty lies in the ability to
//! dynamically modify, add, or replace policies while running" (paper
//! §4.2.3). A [`Policy`] is a rule set behind a `RwLock`; rules carry
//! stable [`RuleId`]s so they can be removed or replaced while the
//! instance serves traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tiera_support::sync::{rank, RwLock};
use tiera_sim::SimTime;

use crate::event::EventKind;
use crate::response::ResponseSpec;

/// Stable identifier of a rule within a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule#{}", self.0)
    }
}

/// An event with its associated responses.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The triggering event.
    pub event: EventKind,
    /// Responses executed (in order) when the event fires.
    pub responses: Vec<ResponseSpec>,
    /// Human-readable label for diagnostics.
    pub label: Option<String>,
}

impl Rule {
    /// Starts a rule triggered by `event`.
    pub fn on(event: EventKind) -> Self {
        Self {
            event,
            responses: Vec::new(),
            label: None,
        }
    }

    /// Appends a response.
    pub fn respond(mut self, response: ResponseSpec) -> Self {
        self.responses.push(response);
        self
    }

    /// Sets a diagnostic label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// Per-rule mutable trigger state (timer phase / threshold arming).
#[derive(Debug, Clone)]
pub(crate) struct RuleState {
    /// Timer: when the rule last fired.
    pub last_fired: SimTime,
    /// Threshold: `true` when the rule may fire on the next crossing
    /// (edge-triggering — fire once per crossing, re-arm when the condition
    /// clears).
    pub armed: bool,
}

impl Default for RuleState {
    fn default() -> Self {
        Self {
            last_fired: SimTime::ZERO,
            armed: true,
        }
    }
}

/// An installed rule, with its id and trigger state.
#[derive(Debug, Clone)]
pub(crate) struct InstalledRule {
    pub id: RuleId,
    pub rule: Rule,
    pub state: RuleState,
}

/// A runtime-mutable set of rules.
///
/// Cloning the handle shares the underlying policy (it is an
/// `Arc<RwLock<..>>` internally), matching how a monitoring application and
/// the instance share one policy (paper §4.2.3's failover scenario).
#[derive(Clone)]
pub struct Policy {
    inner: Arc<RwLock<Vec<InstalledRule>>>,
    next_id: Arc<AtomicU64>,
}

impl Default for Policy {
    fn default() -> Self {
        Self {
            inner: Arc::new(RwLock::named("policy.rules", rank::POLICY_RULES, Vec::new())),
            next_id: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Policy {
    /// An empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a rule, returning its id.
    pub fn add(&self, rule: Rule) -> RuleId {
        let id = RuleId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.inner.write().push(InstalledRule {
            id,
            rule,
            state: RuleState::default(),
        });
        id
    }

    /// Removes a rule; returns whether it existed.
    pub fn remove(&self, id: RuleId) -> bool {
        let mut rules = self.inner.write();
        let before = rules.len();
        rules.retain(|r| r.id != id);
        rules.len() != before
    }

    /// Atomically replaces a rule's event/responses, keeping its id and
    /// resetting trigger state. Returns whether the rule existed.
    pub fn replace(&self, id: RuleId, rule: Rule) -> bool {
        let mut rules = self.inner.write();
        for installed in rules.iter_mut() {
            if installed.id == id {
                installed.rule = rule;
                installed.state = RuleState::default();
                return true;
            }
        }
        false
    }

    /// Atomically replaces the entire rule set (policy swap).
    pub fn replace_all(&self, rules: impl IntoIterator<Item = Rule>) -> Vec<RuleId> {
        let mut out = Vec::new();
        let mut new_rules = Vec::new();
        for rule in rules {
            let id = RuleId(self.next_id.fetch_add(1, Ordering::Relaxed));
            out.push(id);
            new_rules.push(InstalledRule {
                id,
                rule,
                state: RuleState::default(),
            });
        }
        *self.inner.write() = new_rules;
        out
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of `(id, rule)` pairs for inspection.
    pub fn snapshot(&self) -> Vec<(RuleId, Rule)> {
        self.inner
            .read()
            .iter()
            .map(|r| (r.id, r.rule.clone()))
            .collect()
    }

    /// Internal access for the instance's dispatcher (mutates trigger
    /// state, so it takes the write lock — timer and threshold paths only).
    pub(crate) fn with_rules<R>(&self, f: impl FnOnce(&mut Vec<InstalledRule>) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Read-only rule access for the action hot path: concurrent PUT/GET
    /// threads match rules under the shared lock and never serialize on the
    /// policy unless a rule is actually being installed or fired-with-state.
    pub(crate) fn with_rules_read<R>(&self, f: impl FnOnce(&[InstalledRule]) -> R) -> R {
        f(&self.inner.read())
    }

    /// Whether any threshold rule is installed. Cheap pre-check letting
    /// [`eval_thresholds`](crate::Instance) skip the write lock entirely on
    /// the (common) policies with no threshold rules.
    pub(crate) fn has_threshold_rules(&self) -> bool {
        self.inner
            .read()
            .iter()
            .any(|r| matches!(r.rule.event, EventKind::Threshold { .. }))
    }
}

impl std::fmt::Debug for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rules = self.inner.read();
        f.debug_struct("Policy").field("rules", &rules.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ActionOp;
    use crate::selector::Selector;

    fn put_rule() -> Rule {
        Rule::on(EventKind::action(ActionOp::Put))
            .respond(ResponseSpec::store(Selector::Inserted, ["tier1"]))
            .labeled("placement")
    }

    #[test]
    fn add_remove_replace() {
        let p = Policy::new();
        let id = p.add(put_rule());
        assert_eq!(p.len(), 1);
        assert!(p.replace(id, put_rule().labeled("updated")));
        assert_eq!(p.snapshot()[0].1.label.as_deref(), Some("updated"));
        assert!(p.remove(id));
        assert!(!p.remove(id), "second remove is a no-op");
        assert!(p.is_empty());
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let p = Policy::new();
        let a = p.add(put_rule());
        let b = p.add(put_rule());
        assert_ne!(a, b);
        p.remove(a);
        let c = p.add(put_rule());
        assert_ne!(b, c);
    }

    #[test]
    fn replace_all_swaps_policy() {
        let p = Policy::new();
        p.add(put_rule());
        p.add(put_rule());
        let ids = p.replace_all([put_rule()]);
        assert_eq!(ids.len(), 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let p = Policy::new();
        let p2 = p.clone();
        p.add(put_rule());
        assert_eq!(p2.len(), 1, "clone observes additions");
    }
}
