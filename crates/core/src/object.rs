//! Object identity and tagging.
//!
//! Paper §2.1: "An object stored using Tiera can be accessed by the
//! application using a globally unique identifier that acts as the key...
//! It is left to the application to decide the keyspace." Tags "provide a
//! method to add structure to the object name space" and let policies apply
//! to object classes.

use std::fmt;
use std::sync::Arc;

/// A globally unique object identifier.
///
/// Cheap to clone (`Arc<str>`); ordered and hashable so it can index
/// metadata maps.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectKey(Arc<str>);

impl ObjectKey {
    /// Creates a key from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        ObjectKey(Arc::from(s.as_ref()))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectKey({})", self.0)
    }
}

impl From<&str> for ObjectKey {
    fn from(s: &str) -> Self {
        ObjectKey::new(s)
    }
}

impl From<String> for ObjectKey {
    fn from(s: String) -> Self {
        ObjectKey::new(s)
    }
}

impl From<&String> for ObjectKey {
    fn from(s: &String) -> Self {
        ObjectKey::new(s)
    }
}

impl AsRef<str> for ObjectKey {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A tag attached to objects to form object classes (paper §2.1).
///
/// Example: a `tmp` tag on temporary files lets a policy route the whole
/// class to inexpensive volatile storage.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(Arc<str>);

impl Tag {
    /// Creates a tag.
    pub fn new(s: impl AsRef<str>) -> Self {
        Tag(Arc::from(s.as_ref()))
    }

    /// The tag text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Tag {
    fn from(s: &str) -> Self {
        Tag::new(s)
    }
}

impl From<String> for Tag {
    fn from(s: String) -> Self {
        Tag::new(s)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tag({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrips_and_orders() {
        let a = ObjectKey::new("a");
        let b: ObjectKey = "b".into();
        assert!(a < b);
        assert_eq!(a.as_str(), "a");
        assert_eq!(a.to_string(), "a");
        assert_eq!(a, ObjectKey::new(String::from("a")));
    }

    #[test]
    fn keys_are_cheap_clones() {
        let a = ObjectKey::new("shared");
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn tags_compare_by_content() {
        let t1: Tag = "tmp".into();
        let t2 = Tag::from("tmp".to_string());
        assert_eq!(t1, t2);
        assert_eq!(t1.to_string(), "tmp");
    }
}
