//! Per-object metadata.
//!
//! Paper §2.1: "Tiera tracks the common attributes or metadata for each
//! object: size, access frequency, dirty flag, location (i.e. which tiers),
//! and time of last access. In addition, each Tiera object may also be
//! assigned a set of tags."
//!
//! Metadata is encoded with a small hand-rolled binary codec so it can be
//! persisted in the embedded metadata store (`tiera-metastore`), mirroring
//! the paper's use of BerkeleyDB.

use std::collections::BTreeSet;

use tiera_codec::Digest;
use tiera_sim::SimTime;

use crate::object::Tag;

/// Metadata tracked for every object in a Tiera instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Logical (uncompressed, unencrypted) size in bytes.
    pub size: u64,
    /// Stored size in bytes (differs from `size` after compression).
    pub stored_size: u64,
    /// Number of accesses (PUT + GET) since creation.
    pub access_count: u64,
    /// Whether the object has been modified since it was last copied to a
    /// persistent tier (drives write-back policies, paper Fig 3).
    pub dirty: bool,
    /// Names of the tiers currently holding the object.
    pub locations: BTreeSet<String>,
    /// Virtual time of the last access.
    pub last_access: SimTime,
    /// Virtual time of creation.
    pub created: SimTime,
    /// Tags (object classes) assigned at PUT time.
    pub tags: BTreeSet<Tag>,
    /// Content digest, present when the object was stored via `storeOnce`.
    pub digest: Option<Digest>,
    /// Whether the stored payload is compressed.
    pub compressed: bool,
    /// Whether the stored payload is encrypted.
    pub encrypted: bool,
    /// Key-ring identifier of the key the payload is encrypted with.
    pub encryption_key_id: Option<String>,
}

impl ObjectMeta {
    /// Fresh metadata for an object of `size` bytes created at `now`.
    pub fn new(size: u64, now: SimTime) -> Self {
        Self {
            size,
            stored_size: size,
            access_count: 0,
            dirty: false,
            locations: BTreeSet::new(),
            last_access: now,
            created: now,
            tags: BTreeSet::new(),
            digest: None,
            compressed: false,
            encrypted: false,
            encryption_key_id: None,
        }
    }

    /// Records an access at `now`.
    pub fn touch(&mut self, now: SimTime) {
        self.access_count += 1;
        self.last_access = now;
    }

    /// Access frequency in accesses per simulated second since creation.
    ///
    /// Used by hot/cold placement policies (paper §2.3: "access frequency
    /// can be used for easy specification of hot and cold objects").
    pub fn access_frequency(&self, now: SimTime) -> f64 {
        let age = now.since(self.created).as_secs_f64().max(1e-9);
        self.access_count as f64 / age
    }

    /// Whether the object carries `tag`.
    pub fn has_tag(&self, tag: &Tag) -> bool {
        self.tags.contains(tag)
    }

    /// Whether the object is stored in `tier`.
    pub fn in_tier(&self, tier: &str) -> bool {
        self.locations.contains(tier)
    }

    // ---- binary codec (persisted via tiera-metastore) ----

    /// Encodes the metadata to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.stored_size.to_le_bytes());
        out.extend_from_slice(&self.access_count.to_le_bytes());
        out.extend_from_slice(&self.last_access.as_nanos().to_le_bytes());
        out.extend_from_slice(&self.created.as_nanos().to_le_bytes());
        let flags = (self.dirty as u8)
            | (self.compressed as u8) << 1
            | (self.encrypted as u8) << 2
            | ((self.digest.is_some() as u8) << 3);
        out.push(flags);
        if let Some(d) = &self.digest {
            out.extend_from_slice(&d.0);
        }
        write_str_set(&mut out, self.locations.iter().map(|s| s.as_str()));
        write_str_set(&mut out, self.tags.iter().map(|t| t.as_str()));
        match &self.encryption_key_id {
            Some(id) => {
                out.push(1);
                out.extend_from_slice(&(id.len() as u32).to_le_bytes());
                out.extend_from_slice(id.as_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Decodes metadata produced by [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut r = Reader { buf, pos: 0 };
        let size = r.u64()?;
        let stored_size = r.u64()?;
        let access_count = r.u64()?;
        let last_access = SimTime::from_nanos(r.u64()?);
        let created = SimTime::from_nanos(r.u64()?);
        let flags = r.u8()?;
        let digest = if flags & 0b1000 != 0 {
            let mut d = [0u8; 32];
            d.copy_from_slice(r.bytes(32)?);
            Some(Digest(d))
        } else {
            None
        };
        let locations = r.str_set()?.into_iter().collect();
        let tags = r.str_set()?.into_iter().map(Tag::new).collect();
        let encryption_key_id = if r.u8()? == 1 {
            let len = r.u32()? as usize;
            Some(String::from_utf8(r.bytes(len)?.to_vec()).ok()?)
        } else {
            None
        };
        Some(Self {
            size,
            stored_size,
            access_count,
            dirty: flags & 1 != 0,
            locations,
            last_access,
            created,
            tags,
            digest,
            compressed: flags & 0b10 != 0,
            encrypted: flags & 0b100 != 0,
            encryption_key_id,
        })
    }
}

fn write_str_set<'a>(out: &mut Vec<u8>, items: impl ExactSizeIterator<Item = &'a str>) {
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for s in items {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.bytes(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.bytes(8)?;
        Some(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str_set(&mut self) -> Option<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let len = self.u32()? as usize;
            let s = self.bytes(len)?;
            out.push(String::from_utf8(s.to_vec()).ok()?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjectMeta {
        let mut m = ObjectMeta::new(4096, SimTime::from_secs(10));
        m.touch(SimTime::from_secs(20));
        m.dirty = true;
        m.locations.insert("memcached".into());
        m.locations.insert("ebs".into());
        m.tags.insert(Tag::new("tmp"));
        m.digest = Some(Digest::of(b"payload"));
        m.compressed = true;
        m.encryption_key_id = Some("default".into());
        m
    }

    #[test]
    fn codec_roundtrip() {
        let m = sample();
        let encoded = m.encode();
        let decoded = ObjectMeta::decode(&encoded).expect("decodes");
        assert_eq!(decoded, m);
    }

    #[test]
    fn codec_roundtrip_minimal() {
        let m = ObjectMeta::new(0, SimTime::ZERO);
        assert_eq!(ObjectMeta::decode(&m.encode()), Some(m));
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = sample().encode();
        for cut in 0..enc.len() {
            // No prefix may decode into the full sample (most return None).
            if let Some(m) = ObjectMeta::decode(&enc[..cut]) {
                assert_ne!(m, sample());
            }
        }
    }

    #[test]
    fn touch_updates_access_stats() {
        let mut m = ObjectMeta::new(10, SimTime::ZERO);
        m.touch(SimTime::from_secs(5));
        m.touch(SimTime::from_secs(10));
        assert_eq!(m.access_count, 2);
        assert_eq!(m.last_access, SimTime::from_secs(10));
        // 2 accesses over 10 s = 0.2/s.
        assert!((m.access_frequency(SimTime::from_secs(10)) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn tag_and_tier_predicates() {
        let m = sample();
        assert!(m.has_tag(&Tag::new("tmp")));
        assert!(!m.has_tag(&Tag::new("other")));
        assert!(m.in_tier("ebs"));
        assert!(!m.in_tier("s3"));
    }
}
