//! # tiera-core — the Tiera middleware
//!
//! This crate implements the primary contribution of *"Tiera: Towards
//! Flexible Multi-Tiered Cloud Storage Instances"* (Middleware 2014): a
//! lightweight middleware that encapsulates multiple cloud storage tiers
//! behind a single object-store API and manages the life cycle of stored
//! data with programmable **event → response** policies.
//!
//! ## Concepts (paper §2)
//!
//! * **Object model** — data is stored as immutable, overwritable objects
//!   addressed by a globally unique key ([`ObjectKey`]). Tiera tracks
//!   per-object metadata (size, access frequency, dirty flag, locations,
//!   last access time) and optional [`Tag`]s that group objects into
//!   classes ([`meta::ObjectMeta`]).
//! * **Tiers** — any source or sink for data with the prescribed interface
//!   (the [`tier::Tier`] trait). Realistic simulated tiers (Memcached, EBS,
//!   S3, ephemeral) live in the `tiera-tiers` crate.
//! * **Events** ([`event::EventKind`]) — *timer*, *threshold*, and *action*
//!   events, evaluated in the foreground (charged to the request) or
//!   background (queued to the response pool).
//! * **Responses** ([`response::ResponseSpec`]) — the full catalogue of the
//!   paper's Table 1: `store`, `storeOnce`, `retrieve`, `copy`, `move`,
//!   `delete`, `encrypt`/`decrypt`, `compress`/`uncompress`,
//!   `grow`/`shrink`, plus the eviction idiom of Figure 5.
//! * **Instance** ([`instance::Instance`]) — tiers + policy + metadata.
//!   Exposes `PUT`/`GET`/`DELETE`, and supports *runtime* replacement and
//!   addition of policies and tiers (paper §4.2.3).
//!
//! ## Example
//!
//! ```
//! use tiera_core::prelude::*;
//! use tiera_sim::{SimEnv, SimTime};
//!
//! let env = SimEnv::new(7);
//! // A LowLatencyInstance (paper Fig. 3): memory tier + block tier with a
//! // write-back policy every 30 seconds.
//! let instance = InstanceBuilder::new("LowLatencyInstance", env.clone())
//!     .tier(MemTier::with_capacity("cache", 5 << 30))
//!     .tier(MemTier::with_capacity("persist", 5 << 30))
//!     .rule(
//!         Rule::on(EventKind::action(ActionOp::Put))
//!             .respond(ResponseSpec::store(Selector::Inserted, ["cache"])),
//!     )
//!     .rule(
//!         Rule::on(EventKind::timer(SimDuration::from_secs(30)))
//!             .respond(ResponseSpec::copy(
//!                 Selector::InTier("cache".into()).and(Selector::Dirty),
//!                 ["persist"],
//!             )),
//!     )
//!     .build()
//!     .unwrap();
//!
//! let put = instance.put("hello", &b"world"[..], SimTime::ZERO).unwrap();
//! let (data, _) = instance.get("hello", SimTime::ZERO + put.latency).unwrap();
//! assert_eq!(&data[..], b"world");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod error;
pub mod event;
pub mod instance;
pub mod meta;
pub mod monitor;
pub mod object;
pub mod policy;
pub mod registry;
pub mod retry;
pub mod response;
pub mod selector;
pub mod stats;
pub mod tier;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::builder::InstanceBuilder;
    pub use crate::catalog::TierCatalog;
    pub use crate::error::{Result, TieraError};
    pub use crate::event::{ActionOp, EventKind, Metric, Relation};
    pub use crate::instance::{Instance, PutOptions};
    pub use crate::meta::ObjectMeta;
    pub use crate::object::{ObjectKey, Tag};
    pub use crate::policy::{Policy, Rule, RuleId};
    pub use crate::response::{EvictOrder, Guard, ResponseSpec};
    pub use crate::retry::{FailureAlert, RetryPolicy};
    pub use crate::selector::Selector;
    pub use crate::tier::{CapacityProfile, MemTier, OpReceipt, Tier, TierHandle, TierTraits};
    pub use tiera_sim::{SimDuration, SimTime};
}

pub use builder::InstanceBuilder;
pub use error::{Result, TieraError};
pub use instance::Instance;
pub use object::{ObjectKey, Tag};
pub use policy::{Policy, Rule, RuleId};
pub use tier::{Tier, TierHandle};
