//! The tier abstraction.
//!
//! Paper §2.2: "A tier can be any source or sink for data with a prescribed
//! interface." This module defines that prescribed interface — the [`Tier`]
//! trait — plus a minimal in-memory implementation ([`MemTier`]) used by
//! tests and examples. Realistic simulated cloud tiers (Memcached, EBS, S3,
//! ephemeral instance storage) live in the `tiera-tiers` crate.
//!
//! Tiers never sleep: each operation returns an [`OpReceipt`] carrying the
//! virtual latency the operation would have taken, and callers account for
//! it (see `DESIGN.md` §3, "Virtual time under concurrency").

use std::collections::HashMap;
use std::sync::Arc;

use tiera_support::Bytes;
use tiera_support::sync::{rank, Mutex};

use tiera_sim::{SimDuration, SimTime, StorageClass};

use crate::error::{Result, TieraError};
use crate::object::ObjectKey;

/// Shared handle to a tier.
pub type TierHandle = Arc<dyn Tier>;

/// What a storage operation cost in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpReceipt {
    /// Service latency of the operation.
    pub latency: SimDuration,
}

impl OpReceipt {
    /// A receipt with the given latency.
    pub fn took(latency: SimDuration) -> Self {
        Self { latency }
    }

    /// A free operation.
    pub const FREE: OpReceipt = OpReceipt {
        latency: SimDuration::ZERO,
    };
}

/// Static properties of a tier that policies and the cost model reason
/// about.
#[derive(Debug, Clone, PartialEq)]
pub struct TierTraits {
    /// Whether data survives instance reboots / node failures.
    pub durable: bool,
    /// Availability zone label (paper §4.1.1 runs Memcached replicas in two
    /// different zones).
    pub availability_zone: String,
    /// Pricing/latency class.
    pub class: StorageClass,
}

impl Default for TierTraits {
    fn default() -> Self {
        Self {
            durable: false,
            availability_zone: "zone-a".into(),
            class: StorageClass::MemoryCache,
        }
    }
}

/// Counters of chargeable requests made to a tier (object stores bill
/// per-request; paper Fig 12b counts requests to S3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCounts {
    /// PUT-class requests (writes, deletes).
    pub puts: u64,
    /// GET-class requests (reads).
    pub gets: u64,
}

/// Logical-vs-physical capacity accounting for tiers that transform
/// payloads (compression, content-addressed dedup). Plain tiers store
/// bytes verbatim and report `None` from [`Tier::capacity_profile`];
/// wrapper tiers (`tiera-tierx`) report how many logical bytes they are
/// presenting on top of how many physical bytes the backing tier holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacityProfile {
    /// Bytes the tier's clients have stored (pre-transform).
    pub logical_bytes: u64,
    /// Bytes physically occupied in the backing store (post-transform).
    pub physical_bytes: u64,
    /// Live objects (client keys) the tier is presenting.
    pub objects: u64,
    /// Objects stored raw because compression would have expanded them.
    pub raw_fallback_objects: u64,
    /// Puts answered by an existing content-addressed blob (no new
    /// physical write).
    pub dedup_hits: u64,
    /// Distinct refcounted blobs in the content-addressed store.
    pub unique_blobs: u64,
    /// `(refcount, blobs with that refcount)`, ascending by refcount.
    pub refcount_histogram: Vec<(u64, u64)>,
}

impl CapacityProfile {
    /// Logical bytes per physical byte (`1.0` when nothing is stored).
    pub fn compression_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }

    /// Fraction of puts absorbed by an existing blob.
    pub fn dedup_hit_rate(&self) -> f64 {
        let total = self.dedup_hits + self.unique_blobs;
        if total == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / total as f64
        }
    }
}

/// The prescribed interface every storage tier implements.
///
/// All methods take the caller's current virtual time `now` so the tier can
/// model queuing, failure windows, and provisioning delays.
pub trait Tier: Send + Sync {
    /// The tier's unique name within its instance (e.g. `"tier1"`).
    fn name(&self) -> &str;

    /// Static properties.
    fn tier_traits(&self) -> TierTraits;

    /// Capacity in bytes at virtual time `now` (growing tiers change over
    /// time).
    fn capacity(&self, now: SimTime) -> u64;

    /// Bytes currently stored.
    fn used(&self) -> u64;

    /// Stores (or overwrites) an object.
    fn put(&self, key: &ObjectKey, data: Bytes, now: SimTime) -> Result<OpReceipt>;

    /// Retrieves an object.
    fn get(&self, key: &ObjectKey, now: SimTime) -> Result<(Bytes, OpReceipt)>;

    /// Deletes an object; succeeds silently if absent.
    fn delete(&self, key: &ObjectKey, now: SimTime) -> Result<OpReceipt>;

    /// Whether the object is present.
    fn contains(&self, key: &ObjectKey) -> bool;

    /// Grows capacity by `percent`, returning when the new capacity becomes
    /// effective (provisioning may take time — paper Fig 16).
    fn grow(&self, percent: f64, now: SimTime) -> SimTime;

    /// Shrinks capacity by `percent`, effective immediately.
    fn shrink(&self, percent: f64, now: SimTime);

    /// Chargeable request counters since creation.
    fn request_counts(&self) -> RequestCounts;

    /// Monthly capacity cost in dollars at `now` (excluding request costs).
    fn monthly_cost(&self, now: SimTime) -> f64 {
        let gb = self.capacity(now) as f64 / (1024.0 * 1024.0 * 1024.0);
        tiera_sim::PricePlan::for_class(self.tier_traits().class).capacity_cost(gb)
    }

    /// Fraction of capacity in use at `now` (`0.0..=1.0`).
    fn fill_fraction(&self, now: SimTime) -> f64 {
        let cap = self.capacity(now);
        if cap == 0 {
            1.0
        } else {
            self.used() as f64 / cap as f64
        }
    }

    /// Whether storing `bytes` more would exceed capacity at `now`.
    fn would_overflow(&self, bytes: u64, now: SimTime) -> bool {
        self.used() + bytes > self.capacity(now)
    }

    /// Logical-vs-physical accounting for payload-transforming tiers.
    /// Plain tiers store bytes verbatim, so the default is `None`.
    fn capacity_profile(&self) -> Option<CapacityProfile> {
        None
    }
}

/// A minimal, zero-latency in-memory tier for tests, examples, and as a
/// template for real tier implementations.
///
/// Enforces capacity and tracks request counts but charges no latency and
/// never fails. Production-shaped tiers live in `tiera-tiers`.
#[derive(Debug)]
pub struct MemTier {
    name: String,
    capacity: Mutex<u64>,
    traits_: TierTraits,
    state: Mutex<MemState>,
}

#[derive(Debug, Default)]
struct MemState {
    map: HashMap<ObjectKey, Bytes>,
    used: u64,
    puts: u64,
    gets: u64,
}

impl MemTier {
    /// Creates a tier with the given name and capacity in bytes.
    pub fn with_capacity(name: impl Into<String>, capacity: u64) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            capacity: Mutex::named("memtier.capacity", rank::MEMTIER_CAPACITY, capacity),
            traits_: TierTraits::default(),
            state: Mutex::named("memtier.state", rank::MEMTIER_STATE, MemState::default()),
        })
    }

    /// Creates a tier with explicit traits.
    pub fn with_traits(name: impl Into<String>, capacity: u64, traits_: TierTraits) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            capacity: Mutex::named("memtier.capacity", rank::MEMTIER_CAPACITY, capacity),
            traits_,
            state: Mutex::named("memtier.state", rank::MEMTIER_STATE, MemState::default()),
        })
    }
}

impl Tier for MemTier {
    fn name(&self) -> &str {
        &self.name
    }

    fn tier_traits(&self) -> TierTraits {
        self.traits_.clone()
    }

    fn capacity(&self, _now: SimTime) -> u64 {
        *self.capacity.lock()
    }

    fn used(&self) -> u64 {
        self.state.lock().used
    }

    fn put(&self, key: &ObjectKey, data: Bytes, now: SimTime) -> Result<OpReceipt> {
        let mut st = self.state.lock();
        let old = st.map.get(key).map(|b| b.len() as u64).unwrap_or(0);
        let new_used = st.used - old + data.len() as u64;
        let cap = self.capacity(now);
        if new_used > cap {
            return Err(TieraError::TierFull {
                tier: self.name.clone(),
                needed: data.len() as u64,
                available: cap.saturating_sub(st.used - old),
            });
        }
        st.map.insert(key.clone(), data);
        st.used = new_used;
        st.puts += 1;
        Ok(OpReceipt::FREE)
    }

    fn get(&self, key: &ObjectKey, _now: SimTime) -> Result<(Bytes, OpReceipt)> {
        let mut st = self.state.lock();
        st.gets += 1;
        st.map
            .get(key)
            .cloned()
            .map(|b| (b, OpReceipt::FREE))
            .ok_or_else(|| TieraError::NoSuchObject(key.to_string()))
    }

    fn delete(&self, key: &ObjectKey, _now: SimTime) -> Result<OpReceipt> {
        let mut st = self.state.lock();
        if let Some(b) = st.map.remove(key) {
            st.used -= b.len() as u64;
        }
        st.puts += 1;
        Ok(OpReceipt::FREE)
    }

    fn contains(&self, key: &ObjectKey) -> bool {
        self.state.lock().map.contains_key(key)
    }

    fn grow(&self, percent: f64, now: SimTime) -> SimTime {
        let mut cap = self.capacity.lock();
        let add = (*cap as f64 * (percent / 100.0).max(0.0)).round() as u64;
        *cap += add;
        now // immediate
    }

    fn shrink(&self, percent: f64, _now: SimTime) {
        let mut cap = self.capacity.lock();
        let cut = (*cap as f64 * (percent / 100.0).clamp(0.0, 1.0)).round() as u64;
        *cap = cap.saturating_sub(cut);
    }

    fn request_counts(&self) -> RequestCounts {
        let st = self.state.lock();
        RequestCounts {
            puts: st.puts,
            gets: st.gets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> ObjectKey {
        ObjectKey::new(s)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let t = MemTier::with_capacity("t", 1024);
        t.put(&key("a"), Bytes::from_static(b"hello"), SimTime::ZERO)
            .unwrap();
        assert!(t.contains(&key("a")));
        let (data, _) = t.get(&key("a"), SimTime::ZERO).unwrap();
        assert_eq!(&data[..], b"hello");
        assert_eq!(t.used(), 5);
        t.delete(&key("a"), SimTime::ZERO).unwrap();
        assert!(!t.contains(&key("a")));
        assert_eq!(t.used(), 0);
    }

    #[test]
    fn capacity_enforced() {
        let t = MemTier::with_capacity("t", 10);
        t.put(&key("a"), Bytes::from(vec![0u8; 8]), SimTime::ZERO)
            .unwrap();
        let err = t
            .put(&key("b"), Bytes::from(vec![0u8; 8]), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, TieraError::TierFull { .. }));
    }

    #[test]
    fn overwrite_replaces_accounting() {
        let t = MemTier::with_capacity("t", 10);
        t.put(&key("a"), Bytes::from(vec![0u8; 8]), SimTime::ZERO)
            .unwrap();
        // Overwriting with a smaller object must free the difference.
        t.put(&key("a"), Bytes::from(vec![0u8; 2]), SimTime::ZERO)
            .unwrap();
        assert_eq!(t.used(), 2);
        // And a same-key overwrite that still fits must succeed.
        t.put(&key("a"), Bytes::from(vec![0u8; 10]), SimTime::ZERO)
            .unwrap();
        assert_eq!(t.used(), 10);
    }

    #[test]
    fn grow_and_shrink() {
        let t = MemTier::with_capacity("t", 100);
        t.grow(100.0, SimTime::ZERO);
        assert_eq!(t.capacity(SimTime::ZERO), 200);
        t.shrink(25.0, SimTime::ZERO);
        assert_eq!(t.capacity(SimTime::ZERO), 150);
    }

    #[test]
    fn fill_fraction_and_overflow() {
        let t = MemTier::with_capacity("t", 100);
        t.put(&key("a"), Bytes::from(vec![0u8; 75]), SimTime::ZERO)
            .unwrap();
        assert!((t.fill_fraction(SimTime::ZERO) - 0.75).abs() < 1e-9);
        assert!(t.would_overflow(26, SimTime::ZERO));
        assert!(!t.would_overflow(25, SimTime::ZERO));
    }

    #[test]
    fn request_counts_accumulate() {
        let t = MemTier::with_capacity("t", 1024);
        t.put(&key("a"), Bytes::from_static(b"x"), SimTime::ZERO)
            .unwrap();
        let _ = t.get(&key("a"), SimTime::ZERO);
        let _ = t.get(&key("missing"), SimTime::ZERO);
        let c = t.request_counts();
        assert_eq!(c.puts, 1);
        assert_eq!(c.gets, 2);
    }

    #[test]
    fn monthly_cost_scales_with_capacity() {
        let small = MemTier::with_capacity("s", 1 << 30);
        let big = MemTier::with_capacity("b", 10 << 30);
        let cs = small.monthly_cost(SimTime::ZERO);
        let cb = big.monthly_cost(SimTime::ZERO);
        assert!(cb > 9.0 * cs && cb < 11.0 * cs);
    }
}
