//! Responses — the action half of Tiera's policy mechanism.
//!
//! This module defines the declarative [`ResponseSpec`] mirroring the
//! paper's Table 1 in full:
//!
//! | paper response | spec variant |
//! |---|---|
//! | `store` | [`ResponseSpec::Store`] |
//! | `storeOnce` | [`ResponseSpec::StoreOnce`] |
//! | `retrieve` | [`ResponseSpec::Retrieve`] |
//! | `copy` (w/ bandwidth cap) | [`ResponseSpec::Copy`] |
//! | `move` (w/ bandwidth cap) | [`ResponseSpec::Move`] |
//! | `delete` | [`ResponseSpec::Delete`] |
//! | `encrypt` / `decrypt` | [`ResponseSpec::Encrypt`] / [`ResponseSpec::Decrypt`] |
//! | `compress` / `uncompress` | [`ResponseSpec::Compress`] / [`ResponseSpec::Uncompress`] |
//! | `grow` / `shrink` | [`ResponseSpec::Grow`] / [`ResponseSpec::Shrink`] |
//!
//! plus [`ResponseSpec::If`] (the `if (tier1.filled) { ... }` guard of
//! Figure 5) and [`ResponseSpec::EvictUntilFit`], the compiled form of the
//! Figure 5 LRU/MRU eviction loop.
//!
//! Execution lives in [`crate::instance`]; this module is pure description,
//! which is what makes policies inspectable, replaceable at runtime, and
//! constructible from the specification DSL (`tiera-spec`).

use tiera_sim::bandwidth::BandwidthCap;

use crate::selector::Selector;

/// Eviction victim ordering for [`ResponseSpec::EvictUntilFit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictOrder {
    /// Evict the least recently used object first (`tier1.oldest`).
    Lru,
    /// Evict the most recently used object first (`tier1.newest`).
    Mru,
}

/// A guard usable inside a response body (`if (...) { ... }`).
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// Always true.
    Always,
    /// `tier.filled` — true when the tier cannot absorb the inserted object
    /// (or, with an explicit fraction, when fill ≥ fraction).
    TierFilled {
        /// Tier under observation.
        tier: String,
        /// Fill fraction bound; `None` means "would overflow on this
        /// insert".
        at_least: Option<f64>,
    },
    /// Negation.
    Not(Box<Guard>),
}

impl Guard {
    /// `tier.filled` with the paper's "would overflow" meaning.
    pub fn tier_filled(tier: impl Into<String>) -> Self {
        Guard::TierFilled {
            tier: tier.into(),
            at_least: None,
        }
    }

    /// Negates the guard.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Guard::Not(Box::new(self))
    }
}

/// A declarative response, executed when its rule's event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseSpec {
    /// Stores objects into the given tiers. Writes to multiple tiers are
    /// issued in parallel; the charged latency is the slowest write (the
    /// paper's MemcachedReplicated instance acknowledges after both
    /// zone-replica writes complete).
    Store {
        /// Objects to store.
        what: Selector,
        /// Destination tier names.
        to: Vec<String>,
    },
    /// Stores objects only if their content is unique (deduplication via
    /// SHA-256 content digest; paper §4.2.1 and Figure 12).
    StoreOnce {
        /// Objects to store.
        what: Selector,
        /// Destination tier names.
        to: Vec<String>,
    },
    /// Reads objects from their current tier (warming access statistics).
    Retrieve {
        /// Objects to read.
        what: Selector,
    },
    /// Copies objects into the given tiers, leaving existing copies in
    /// place and clearing the dirty flag (write-back, paper Fig 3).
    Copy {
        /// Objects to copy.
        what: Selector,
        /// Destination tier names.
        to: Vec<String>,
        /// Optional self-imposed rate limit (paper Fig 14's `bandwidth:
        /// 40KB/s`).
        bandwidth: Option<BandwidthCap>,
    },
    /// Moves objects to the given tiers (copy + delete from their previous
    /// locations).
    Move {
        /// Objects to move.
        what: Selector,
        /// Destination tier names.
        to: Vec<String>,
        /// Optional rate limit.
        bandwidth: Option<BandwidthCap>,
    },
    /// Deletes objects, either from one tier or from the whole instance.
    Delete {
        /// Objects to delete.
        what: Selector,
        /// Restrict deletion to this tier; `None` deletes everywhere and
        /// drops the object.
        from: Option<String>,
    },
    /// Encrypts stored payloads with the named key (ChaCha20).
    Encrypt {
        /// Objects to encrypt.
        what: Selector,
        /// Key identifier resolved through the instance key ring.
        key_id: String,
    },
    /// Decrypts stored payloads with the named key.
    Decrypt {
        /// Objects to decrypt.
        what: Selector,
        /// Key identifier.
        key_id: String,
    },
    /// Compresses stored payloads (LZSS).
    Compress {
        /// Objects to compress.
        what: Selector,
    },
    /// Decompresses stored payloads.
    Uncompress {
        /// Objects to decompress.
        what: Selector,
    },
    /// Expands a tier's capacity by a percentage (provisioning delay
    /// applies; paper Fig 6/16).
    Grow {
        /// Tier to expand.
        tier: String,
        /// Percent increase (100 = double).
        percent: f64,
    },
    /// Reduces a tier's capacity by a percentage.
    Shrink {
        /// Tier to reduce.
        tier: String,
        /// Percent decrease.
        percent: f64,
    },
    /// Evicts objects from `from` into `to` (in `order`) until the inserted
    /// object fits — the executable form of Figure 5's
    /// `if (tier1.filled) { move(what: tier1.oldest, to: tier2); }`.
    EvictUntilFit {
        /// Tier to make room in.
        from: String,
        /// Tier receiving the evicted objects.
        to: String,
        /// LRU or MRU victim selection.
        order: EvictOrder,
    },
    /// Conditional execution of a response body.
    If {
        /// The guard to evaluate.
        guard: Guard,
        /// Responses executed when the guard holds.
        then: Vec<ResponseSpec>,
    },
}

impl ResponseSpec {
    /// `store(what, to: [tiers])`.
    pub fn store<T: Into<String>>(what: Selector, to: impl IntoIterator<Item = T>) -> Self {
        ResponseSpec::Store {
            what,
            to: to.into_iter().map(Into::into).collect(),
        }
    }

    /// `storeOnce(what, to: [tiers])`.
    pub fn store_once<T: Into<String>>(what: Selector, to: impl IntoIterator<Item = T>) -> Self {
        ResponseSpec::StoreOnce {
            what,
            to: to.into_iter().map(Into::into).collect(),
        }
    }

    /// `copy(what, to: [tiers])` without a bandwidth cap.
    pub fn copy<T: Into<String>>(what: Selector, to: impl IntoIterator<Item = T>) -> Self {
        ResponseSpec::Copy {
            what,
            to: to.into_iter().map(Into::into).collect(),
            bandwidth: None,
        }
    }

    /// `copy` with a bandwidth cap.
    pub fn copy_capped<T: Into<String>>(
        what: Selector,
        to: impl IntoIterator<Item = T>,
        bandwidth: BandwidthCap,
    ) -> Self {
        ResponseSpec::Copy {
            what,
            to: to.into_iter().map(Into::into).collect(),
            bandwidth: Some(bandwidth),
        }
    }

    /// `move(what, to: [tiers])`.
    pub fn move_to<T: Into<String>>(what: Selector, to: impl IntoIterator<Item = T>) -> Self {
        ResponseSpec::Move {
            what,
            to: to.into_iter().map(Into::into).collect(),
            bandwidth: None,
        }
    }

    /// `delete(what)` from every tier.
    pub fn delete(what: Selector) -> Self {
        ResponseSpec::Delete { what, from: None }
    }

    /// LRU eviction into `to` (Figure 5's common case).
    pub fn evict_lru(from: impl Into<String>, to: impl Into<String>) -> Self {
        ResponseSpec::EvictUntilFit {
            from: from.into(),
            to: to.into(),
            order: EvictOrder::Lru,
        }
    }

    /// Tier names this response writes to or manages (for validation).
    pub fn referenced_tiers(&self) -> Vec<&str> {
        match self {
            ResponseSpec::Store { what, to }
            | ResponseSpec::StoreOnce { what, to }
            | ResponseSpec::Copy { what, to, .. }
            | ResponseSpec::Move { what, to, .. } => {
                let mut v: Vec<&str> = to.iter().map(|s| s.as_str()).collect();
                v.extend(what.referenced_tiers());
                v
            }
            ResponseSpec::Delete { what, from } => {
                let mut v = what.referenced_tiers();
                if let Some(f) = from {
                    v.push(f);
                }
                v
            }
            ResponseSpec::Retrieve { what }
            | ResponseSpec::Encrypt { what, .. }
            | ResponseSpec::Decrypt { what, .. }
            | ResponseSpec::Compress { what }
            | ResponseSpec::Uncompress { what } => what.referenced_tiers(),
            ResponseSpec::Grow { tier, .. } | ResponseSpec::Shrink { tier, .. } => {
                vec![tier.as_str()]
            }
            ResponseSpec::EvictUntilFit { from, to, .. } => vec![from.as_str(), to.as_str()],
            ResponseSpec::If { guard, then } => {
                let mut v: Vec<&str> = Vec::new();
                if let Guard::TierFilled { tier, .. } = guard {
                    v.push(tier);
                }
                for r in then {
                    v.extend(r.referenced_tiers());
                }
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_variants() {
        let s = ResponseSpec::store(Selector::Inserted, ["tier1", "tier2"]);
        match s {
            ResponseSpec::Store { to, .. } => assert_eq!(to, vec!["tier1", "tier2"]),
            _ => panic!(),
        }
        let c = ResponseSpec::copy_capped(
            Selector::Dirty,
            ["tier2"],
            BandwidthCap::kb_per_sec(40.0),
        );
        match c {
            ResponseSpec::Copy { bandwidth, .. } => {
                assert_eq!(bandwidth.unwrap().bytes_per_sec, 40_000.0)
            }
            _ => panic!(),
        }
    }

    #[test]
    fn referenced_tiers_covers_nested_ifs() {
        let r = ResponseSpec::If {
            guard: Guard::tier_filled("tier1"),
            then: vec![ResponseSpec::move_to(
                Selector::OldestIn("tier1".into()),
                ["tier2"],
            )],
        };
        let mut tiers = r.referenced_tiers();
        tiers.sort_unstable();
        tiers.dedup();
        assert_eq!(tiers, vec!["tier1", "tier2"]);
    }

    #[test]
    fn guard_negation() {
        let g = Guard::tier_filled("t").not();
        assert!(matches!(g, Guard::Not(_)));
    }

    #[test]
    fn grow_references_its_tier() {
        let r = ResponseSpec::Grow {
            tier: "tier1".into(),
            percent: 100.0,
        };
        assert_eq!(r.referenced_tiers(), vec!["tier1"]);
    }
}
