//! The Tiera instance: tiers + policy + metadata + the control layer.
//!
//! Paper §2.2: "The Tiera server has three primary roles: (1) to interface
//! with applications to enable storage and retrieval of data, (2) to
//! interface with different storage tiers..., and (3) to manage the data
//! placement and movement across different tiers."
//!
//! * The **application interface layer** is the [`Instance::put`] /
//!   [`Instance::get`] / [`Instance::delete`] API.
//! * The **storage interface layer** is the set of attached [`Tier`]
//!   handles.
//! * The **control layer** is the response executor in this module: it
//!   fires action events inline with requests, threshold events on the
//!   actions that affect their metrics, and timer events from
//!   [`Instance::pump`]; background work is queued and drained by `pump`
//!   (the "thread pool dedicated to service responses" of paper §3, made
//!   deterministic for virtual time).
//!
//! ## PUT placement semantics
//!
//! If any matching action rule contains a `store`/`storeOnce` response
//! targeting the inserted object, those rules define placement (paper
//! Figs 3 and 5). Otherwise the object is implicitly stored in the
//! instance's *default tier* — the first attached tier — and the rules run
//! afterwards (this is how Fig 4's `PersistentInstance` works: the PUT
//! lands in `tier1`, then the write-through rule copies it to `tier2`).

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tiera_support::sync::{rank, Mutex, RwLock};
use tiera_support::{Bytes, SimRng};

use tiera_codec::{lzss, ChaCha20, Digest};
use tiera_sim::bandwidth::BandwidthCap;
use tiera_sim::{SimDuration, SimEnv, SimTime};

use crate::error::{Result, TieraError};
use crate::event::{ActionOp, EventKind, Metric};
use crate::meta::ObjectMeta;
use crate::object::{ObjectKey, Tag};
use crate::policy::{Policy, Rule, RuleId};
use crate::registry::Registry;
use crate::response::{EvictOrder, Guard, ResponseSpec};
use crate::retry::{FailureAlert, RetryPolicy};
use crate::selector::Selector;
use crate::stats::InstanceStats;
use crate::tier::TierHandle;

/// Options for a PUT request.
#[derive(Debug, Clone, Default)]
pub struct PutOptions {
    /// Tags to attach (object classes, application hints).
    pub tags: Vec<Tag>,
}

/// Receipt for a PUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutReceipt {
    /// Latency charged to the client (foreground work only).
    pub latency: SimDuration,
}

/// Receipt for a GET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetReceipt {
    /// Latency charged to the client.
    pub latency: SimDuration,
    /// Tier that served the read.
    pub served_by: String,
}

/// Report from one [`Instance::pump`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Timer rules that fired.
    pub timers_fired: u64,
    /// Background work items executed.
    pub background_executed: u64,
}

/// Deferred (background) response work.
struct PendingWork {
    due: SimTime,
    work: WorkItem,
    inserted: Option<ObjectKey>,
    /// How many times this item has already failed and been requeued.
    attempts: u32,
}

/// Due-ordered background queue: a binary min-heap keyed by
/// `(due, insertion seq)`, so [`Instance::pump`] drains work strictly in
/// due order (FIFO among equal due times) at O(log n) per operation. The
/// old `VecDeque` + linear `iter().position` scan was O(n) per pop — O(n²)
/// per pump — *and* popped the first-queued due item rather than the
/// earliest-due one, so a later-queued earlier-due writeback could run
/// after a later one.
#[derive(Default)]
struct BackgroundQueue {
    heap: std::collections::BinaryHeap<QueuedWork>,
    next_seq: u64,
}

struct QueuedWork {
    due: SimTime,
    seq: u64,
    work: PendingWork,
}

impl PartialEq for QueuedWork {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for QueuedWork {}
impl PartialOrd for QueuedWork {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedWork {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest due
        // (then lowest seq) on top.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

impl BackgroundQueue {
    fn push(&mut self, work: PendingWork) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedWork {
            due: work.due,
            seq,
            work,
        });
    }

    /// Pops the earliest-due item if it is due at `now`.
    fn pop_due(&mut self, now: SimTime) -> Option<PendingWork> {
        if self.heap.peek()?.due <= now {
            Some(self.heap.pop().expect("peeked").work)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The two shapes of background work.
enum WorkItem {
    /// Ordinary deferred responses.
    Responses(Vec<ResponseSpec>),
    /// A bandwidth-capped copy in progress: one object is transferred per
    /// step, and the continuation re-enqueues itself `pace(len)` later.
    /// This is what keeps a `bandwidth: 40KB/s` copy from monopolizing the
    /// shared device (paper Figure 14).
    PacedCopy {
        keys: std::collections::VecDeque<ObjectKey>,
        to: Vec<String>,
        cap: BandwidthCap,
        delete_source: bool,
    },
}

/// A multi-tiered cloud storage instance.
pub struct Instance {
    name: String,
    env: SimEnv,
    tiers: RwLock<Vec<TierHandle>>,
    policy: Policy,
    registry: Registry,
    stats: InstanceStats,
    keyring: RwLock<HashMap<String, [u8; 32]>>,
    background: Mutex<BackgroundQueue>,
    /// Figure 18 ablation switch: with the control layer off, PUT/GET go
    /// straight to the default tier with no event evaluation.
    control_layer: AtomicBool,
    /// In-operation robustness policy (default: single attempt, no
    /// failover — byte-identical to the pre-retry behavior).
    retry: RwLock<RetryPolicy>,
    /// Mirrors `!retry.is_trivial()` so the hot path skips all retry
    /// bookkeeping (and the `retry` lock) when the policy is the default.
    retry_active: AtomicBool,
    /// Seeded jitter stream for backoff schedules (deterministic per env).
    retry_rng: Mutex<SimRng>,
    /// FAILURE_ALERT events not yet drained by a monitor.
    alerts: Mutex<Vec<FailureAlert>>,
    alerts_total: AtomicU64,
}

/// Execution context threaded through response execution.
struct Ctx {
    /// Current virtual time (advances as responses charge latency).
    now: SimTime,
    /// Latency charged to the requesting client.
    charged: SimDuration,
    /// The object the triggering action carried.
    inserted: Option<ObjectKey>,
    /// Payload of the inserted object (avoids re-reading it).
    inserted_data: Option<Bytes>,
    /// Background executions charge nothing to clients.
    background: bool,
    /// Re-entrancy guard for threshold cascades.
    depth: u8,
    /// Tiers the *inserted* object was freshly written to during this
    /// execution (drives overwrite cleanup of stale copies).
    placed_inserted: BTreeSet<String>,
}

impl Ctx {
    fn foreground(now: SimTime) -> Self {
        Ctx {
            now,
            charged: SimDuration::ZERO,
            inserted: None,
            inserted_data: None,
            background: false,
            depth: 0,
            placed_inserted: BTreeSet::new(),
        }
    }

    fn background(now: SimTime) -> Self {
        Ctx {
            background: true,
            ..Ctx::foreground(now)
        }
    }

    /// Charges latency: foreground latency accrues to the client and
    /// advances the context clock; background work only advances the clock.
    fn charge(&mut self, d: SimDuration) {
        if !self.background {
            self.charged += d;
        }
        self.now += d;
    }
}

const MAX_CASCADE_DEPTH: u8 = 4;

/// The tier a transient error implicates, for alert reporting.
fn err_tier(e: &TieraError) -> String {
    match e {
        TieraError::Timeout { tier, .. } | TieraError::TierFull { tier, .. } => tier.clone(),
        TieraError::NoSuchTier(tier) => tier.clone(),
        _ => String::from("-"),
    }
}

/// Effective streaming rate of an *uncapped* background copy: a dedicated
/// replication thread keeps a moderate queue depth against the source
/// volume (≈ 4 MB/s of 4 KB objects on a busy 2014 magnetic volume).
const UNCAPPED_STREAM_RATE: BandwidthCap = BandwidthCap {
    bytes_per_sec: 4.0e6,
};

impl Instance {
    pub(crate) fn new(name: String, env: SimEnv, tiers: Vec<TierHandle>, policy: Policy, registry: Registry) -> Self {
        let retry_rng = env.rng_for("retry-policy");
        Self {
            name,
            env,
            tiers: RwLock::named("instance.tiers", rank::INSTANCE_TIERS, tiers),
            policy,
            registry,
            stats: InstanceStats::new(),
            keyring: RwLock::named("instance.keyring", rank::INSTANCE_KEYRING, HashMap::new()),
            background: Mutex::named(
                "instance.background",
                rank::INSTANCE_BACKGROUND,
                BackgroundQueue::default(),
            ),
            control_layer: AtomicBool::new(true),
            retry: RwLock::named("instance.retry", rank::INSTANCE_RETRY, RetryPolicy::none()),
            retry_active: AtomicBool::new(false),
            retry_rng: Mutex::named("instance.retry_rng", rank::INSTANCE_RETRY_RNG, retry_rng),
            alerts: Mutex::named("instance.alerts", rank::INSTANCE_ALERTS, Vec::new()),
            alerts_total: AtomicU64::new(0),
        }
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulation environment.
    pub fn env(&self) -> &SimEnv {
        &self.env
    }

    /// The (runtime-mutable) policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Validates and installs a rule into the live policy (paper §4.2.3's
    /// dynamic policy changes). Unlike [`Policy::add`], which trusts its
    /// caller, this is the checked front door for rules arriving at
    /// runtime: every tier the rule scopes, observes, or targets must be
    /// attached, and timer periods must be positive.
    pub fn install_rule(&self, rule: Rule) -> Result<RuleId> {
        self.validate_rule(&rule)?;
        Ok(self.policy.add(rule))
    }

    /// Checks a rule against the instance's attached tiers without
    /// installing it. The specification-level analyzer (`tiera-spec`)
    /// cannot run here — by the time a rule reaches the core it is already
    /// lowered past the AST — so this re-validates the lowered form.
    pub fn validate_rule(&self, rule: &Rule) -> Result<()> {
        let tiers = self.tier_names();
        let check = |name: &str| -> Result<()> {
            if tiers.iter().any(|t| t == name) {
                Ok(())
            } else {
                Err(TieraError::InvalidConfig(format!(
                    "rule references unattached tier {name}"
                )))
            }
        };
        match &rule.event {
            EventKind::Timer { period } => {
                if period.as_nanos() == 0 {
                    return Err(TieraError::InvalidConfig(
                        "timer rule has a zero period".to_string(),
                    ));
                }
            }
            EventKind::Threshold { metric, .. } => {
                if let Some(tier) = metric.tier() {
                    check(tier)?;
                }
            }
            EventKind::Action { tier: Some(tier), .. } => check(tier)?,
            EventKind::Action { tier: None, .. } => {}
        }
        for response in &rule.responses {
            for tier in response.referenced_tiers() {
                check(tier)?;
            }
        }
        Ok(())
    }

    /// The metadata registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Collected statistics.
    pub fn stats(&self) -> &InstanceStats {
        &self.stats
    }

    /// Installs a named encryption key in the key ring.
    pub fn add_key(&self, key_id: impl Into<String>, key: [u8; 32]) {
        self.keyring.write().insert(key_id.into(), key);
    }

    /// Enables/disables the control layer (Figure 18's overhead baseline).
    pub fn set_control_layer(&self, enabled: bool) {
        self.control_layer.store(enabled, Ordering::Release);
    }

    // ---- robustness: retries, failover, FAILURE_ALERT ----

    /// Installs the retry/backoff/failover policy for tier operations.
    /// The default is [`RetryPolicy::none`]: one attempt, no failover.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.retry_active.store(!policy.is_trivial(), Ordering::Release);
        *self.retry.write() = policy;
    }

    /// The currently installed retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry.read().clone()
    }

    /// Drains the FAILURE_ALERT events accumulated since the last drain
    /// (a monitor consumes these, see
    /// [`crate::monitor::FailureMonitor::observing_alerts`]).
    pub fn drain_alerts(&self) -> Vec<FailureAlert> {
        std::mem::take(&mut *self.alerts.lock())
    }

    /// Total FAILURE_ALERT events emitted since construction.
    pub fn alerts_emitted(&self) -> u64 {
        self.alerts_total.load(Ordering::Relaxed)
    }

    fn emit_alert(&self, alert: FailureAlert) {
        self.alerts_total.fetch_add(1, Ordering::Relaxed);
        self.alerts.lock().push(alert);
    }

    // ---- tier management (runtime add/remove, paper §4.2.3) ----

    /// Attached tier names, in preference order.
    pub fn tier_names(&self) -> Vec<String> {
        self.tiers.read().iter().map(|t| t.name().to_string()).collect()
    }

    /// Per-tier logical-vs-physical capacity accounting, for tiers that
    /// transform payloads (compressed / content-addressed wrappers from
    /// `tiera-tierx`). Plain tiers are omitted.
    pub fn capacity_profiles(&self) -> Vec<(String, crate::tier::CapacityProfile)> {
        self.tiers
            .read()
            .iter()
            .filter_map(|t| t.capacity_profile().map(|p| (t.name().to_string(), p)))
            .collect()
    }

    /// Instance-wide roll-up of [`Self::capacity_profiles`]: sums byte and
    /// object counters across wrapped tiers (the refcount histogram is
    /// per-tier and not merged).
    pub fn capacity_summary(&self) -> crate::tier::CapacityProfile {
        let mut sum = crate::tier::CapacityProfile::default();
        for (_, p) in self.capacity_profiles() {
            sum.logical_bytes += p.logical_bytes;
            sum.physical_bytes += p.physical_bytes;
            sum.objects += p.objects;
            sum.raw_fallback_objects += p.raw_fallback_objects;
            sum.dedup_hits += p.dedup_hits;
            sum.unique_blobs += p.unique_blobs;
        }
        sum
    }

    /// Handle to a tier by name.
    pub fn tier(&self, name: &str) -> Result<TierHandle> {
        self.tiers
            .read()
            .iter()
            .find(|t| t.name() == name)
            .cloned()
            .ok_or_else(|| TieraError::NoSuchTier(name.to_string()))
    }

    /// Attaches a tier at the end of the preference order.
    pub fn attach_tier(&self, tier: TierHandle) -> Result<()> {
        let mut tiers = self.tiers.write();
        if tiers.iter().any(|t| t.name() == tier.name()) {
            return Err(TieraError::InvalidConfig(format!(
                "tier {} already attached",
                tier.name()
            )));
        }
        tiers.push(tier);
        Ok(())
    }

    /// Detaches a tier (e.g. after a storage-service failure, Fig 17).
    /// Objects whose only location was this tier become unreachable until
    /// re-stored; their metadata is retained.
    pub fn detach_tier(&self, name: &str) -> Result<()> {
        let mut tiers = self.tiers.write();
        let before = tiers.len();
        tiers.retain(|t| t.name() != name);
        if tiers.len() == before {
            return Err(TieraError::NoSuchTier(name.to_string()));
        }
        Ok(())
    }

    /// Total monthly capacity cost of all attached tiers.
    pub fn monthly_cost(&self, now: SimTime) -> tiera_sim::CostReport {
        let mut report = tiera_sim::CostReport::default();
        for t in self.tiers.read().iter() {
            let gb = t.capacity(now) as f64 / (1024.0 * 1024.0 * 1024.0);
            report.add(
                format!("{} ({:.2} GB)", t.name(), gb),
                t.monthly_cost(now),
            );
        }
        report
    }

    fn default_tier(&self) -> Result<TierHandle> {
        self.tiers
            .read()
            .first()
            .cloned()
            .ok_or_else(|| TieraError::InvalidConfig("instance has no tiers".into()))
    }

    // ---- application interface layer ----

    /// Stores an object.
    pub fn put(&self, key: impl Into<ObjectKey>, data: impl Into<Bytes>, now: SimTime) -> Result<PutReceipt> {
        self.put_with(key, data, PutOptions::default(), now)
    }

    /// Stores an object with options (tags).
    pub fn put_with(
        &self,
        key: impl Into<ObjectKey>,
        data: impl Into<Bytes>,
        opts: PutOptions,
        now: SimTime,
    ) -> Result<PutReceipt> {
        let key: ObjectKey = key.into();
        let data: Bytes = data.into();
        let size = data.len() as u64;

        if !self.control_layer.load(Ordering::Acquire) {
            // Figure 18 baseline: bypass the control layer entirely.
            let tier = self.default_tier()?;
            let receipt = tier.put(&key, data, now)?;
            self.stats.record_write(receipt.latency);
            self.env.clock().advance_to(now + receipt.latency);
            return Ok(PutReceipt {
                latency: receipt.latency,
            });
        }

        // Snapshot prior state for overwrite cleanup.
        let prior = self.registry.get(&key);

        // Register metadata (dirty until persisted, per Fig 3).
        let mut meta = ObjectMeta::new(size, now);
        meta.dirty = true;
        meta.tags = opts.tags.iter().cloned().collect();
        if let Some(prev) = &prior {
            meta.created = prev.created;
            meta.access_count = prev.access_count;
            // Keep the previous copies visible until the new placement
            // lands: a concurrent GET reads the old bytes (the overwrite is
            // not atomic across tiers, but it is never *invisible*). Stale
            // locations are cleaned below once placement finishes.
            meta.locations = prev.locations.clone();
        }
        meta.touch(now);
        self.registry.upsert(key.clone(), meta);

        let mut ctx = Ctx::foreground(now);
        ctx.inserted = Some(key.clone());
        ctx.inserted_data = Some(data);

        let into_tier = self.default_tier()?.name().to_string();
        let matching = self.matching_action_rules(ActionOp::Put, &into_tier);

        // Does any matching foreground rule place the inserted object?
        let rules_place = matching.iter().any(|(_, rule, background)| {
            !background && rule.responses.iter().any(places_inserted)
        });

        let result: Result<()> = (|| {
            if !rules_place {
                // Implicit default placement.
                let spec = ResponseSpec::store(Selector::Inserted, [into_tier.clone()]);
                self.execute_response(&spec, &mut ctx)?;
            }
            for (_, rule, background) in &matching {
                self.stats.record_event();
                if *background {
                    self.enqueue_background(rule.responses.clone(), &ctx);
                } else {
                    self.execute_responses(&rule.responses, &mut ctx)?;
                }
            }
            Ok(())
        })();

        if let Err(e) = result {
            // A failed PUT leaves no phantom state for brand-new keys:
            // neither metadata nor bytes already placed in some tiers by
            // the partially-executed placement (which would strand
            // unreachable data and leak capacity).
            if prior.is_none() {
                for placed in &ctx.placed_inserted {
                    if let Ok(tier) = self.tier(placed) {
                        let _ = tier.delete(&key, ctx.now);
                    }
                }
                self.registry.remove(&key);
            }
            return Err(e);
        }

        // Overwrite cleanup: stale copies in tiers the new placement did
        // not freshly write are deleted (the object is immutable; overwrite
        // replaces it everywhere). The placement set comes from the
        // execution context, not the carried-over metadata.
        if let Some(prev) = prior {
            let placed = ctx.placed_inserted.clone();
            for stale in prev.locations.iter().filter(|l| !placed.contains(*l)) {
                if let Ok(tier) = self.tier(stale) {
                    let _ = tier.delete(&key, ctx.now);
                }
            }
            self.registry.update(&key, |m| {
                m.locations.retain(|l| placed.contains(l));
            });
            if let Some(d) = prev.digest {
                if let Some(physical) = self.registry.dedup_release(&d) {
                    self.delete_physical(&physical, ctx.now);
                }
            }
        }

        self.eval_thresholds(&mut ctx)?;

        self.stats.record_write(ctx.charged);
        self.env.clock().advance_to(ctx.now);
        Ok(PutReceipt {
            latency: ctx.charged,
        })
    }

    /// Retrieves an object.
    ///
    /// The read is served from the most preferred attached tier holding the
    /// object (tier order = declaration order). If that tier times out
    /// (failure injection), the next location is tried and the timeout is
    /// charged to the client.
    pub fn get(&self, key: impl Into<ObjectKey>, now: SimTime) -> Result<(Bytes, GetReceipt)> {
        let key: ObjectKey = key.into();

        if !self.control_layer.load(Ordering::Acquire) {
            let tier = self.default_tier()?;
            let (data, receipt) = tier.get(&key, now)?;
            self.stats.record_read(receipt.latency, tier.name());
            self.env.clock().advance_to(now + receipt.latency);
            return Ok((
                data,
                GetReceipt {
                    latency: receipt.latency,
                    served_by: tier.name().to_string(),
                },
            ));
        }

        let meta = self
            .registry
            .get(&key)
            .ok_or_else(|| TieraError::NoSuchObject(key.to_string()))?;

        let mut ctx = Ctx::foreground(now);
        let (raw, served_by) = self.read_raw(&key, &meta, &mut ctx)?;
        let data = self.decode_payload(&key, &meta, raw.clone())?;

        self.registry.touch(&key, ctx.now);
        if meta.digest.is_some() {
            // Keep the physical object's LRU position in sync with logical
            // accesses so cache eviction sees real usage.
            let phys = self.resolve_physical(&key);
            if phys != key {
                self.registry.touch(&phys, ctx.now);
            }
        }

        // Fire GET action rules (e.g. read-promotion in LRU cache
        // policies). The just-read stored bytes ride along in the context
        // so a promote does not re-read the slow tier.
        let matching = self.matching_action_rules(ActionOp::Get, &served_by);
        if !matching.is_empty() {
            ctx.inserted = Some(key.clone());
            ctx.inserted_data = Some(raw.clone());
            for (_, rule, background) in &matching {
                self.stats.record_event();
                if *background {
                    self.enqueue_background(rule.responses.clone(), &ctx);
                } else {
                    self.execute_responses(&rule.responses, &mut ctx)?;
                }
            }
        }

        // Reads change object-attribute metrics (access counts), so
        // threshold rules are evaluated here too.
        self.eval_thresholds(&mut ctx)?;

        self.stats.record_read(ctx.charged, &served_by);
        self.env.clock().advance_to(ctx.now);
        Ok((
            data,
            GetReceipt {
                latency: ctx.charged,
                served_by,
            },
        ))
    }

    /// Deletes an object from every tier.
    pub fn delete(&self, key: impl Into<ObjectKey>, now: SimTime) -> Result<SimDuration> {
        let key: ObjectKey = key.into();
        let meta = self
            .registry
            .get(&key)
            .ok_or_else(|| TieraError::NoSuchObject(key.to_string()))?;

        let mut ctx = Ctx::foreground(now);

        if let Some(d) = meta.digest {
            // Dedup object: drop the reference; delete bytes on last ref.
            if let Some(physical) = self.registry.dedup_release(&d) {
                self.delete_physical(&physical, ctx.now);
            }
        } else {
            let mut slowest = SimDuration::ZERO;
            for loc in &meta.locations {
                if let Ok(tier) = self.tier(loc) {
                    let receipt = tier.delete(&key, ctx.now)?;
                    slowest = slowest.max(receipt.latency);
                }
            }
            ctx.charge(slowest);
        }
        self.registry.remove(&key);

        let into_tier = self.default_tier()?.name().to_string();
        let matching = self.matching_action_rules(ActionOp::Delete, &into_tier);
        for (_, rule, background) in &matching {
            self.stats.record_event();
            if *background {
                self.enqueue_background(rule.responses.clone(), &ctx);
            } else {
                self.execute_responses(&rule.responses, &mut ctx)?;
            }
        }

        self.eval_thresholds(&mut ctx)?;
        self.env.clock().advance_to(ctx.now);
        Ok(ctx.charged)
    }

    /// Whether the instance holds an object.
    pub fn contains(&self, key: impl Into<ObjectKey>) -> bool {
        self.registry.contains(&key.into())
    }

    // ---- the control layer's clock: timers + background work ----

    /// Drives timer events and queued background work up to virtual time
    /// `now`. Call this from the experiment driver (or the RPC server's
    /// event thread) as simulated time advances.
    pub fn pump(&self, now: SimTime) -> Result<PumpReport> {
        let mut report = PumpReport::default();

        // Timer rules: fire once per elapsed period, at the period boundary.
        let due: Vec<(SimTime, Vec<ResponseSpec>)> = self.policy.with_rules(|rules| {
            let mut due = Vec::new();
            for installed in rules.iter_mut() {
                if let EventKind::Timer { period } = &installed.rule.event {
                    if period.as_nanos() == 0 {
                        continue;
                    }
                    let mut next = installed.state.last_fired + *period;
                    while next <= now {
                        due.push((next, installed.rule.responses.clone()));
                        installed.state.last_fired = next;
                        next += *period;
                    }
                }
            }
            due
        });
        for (fire_at, responses) in due {
            self.stats.record_event();
            report.timers_fired += 1;
            let mut ctx = Ctx::background(fire_at);
            if let Err(e) = self.execute_responses(&responses, &mut ctx) {
                // A failing timer body must not wedge the pump (it used to
                // abort the drain, stranding every queued item behind it).
                // The timer refires next period, which is the natural
                // retry; surface the failure as an alert meanwhile.
                self.emit_alert(FailureAlert {
                    at: fire_at,
                    tier: err_tier(&e),
                    op: "timer",
                    failover_to: None,
                    detail: format!("timer responses failed: {e}"),
                });
            }
        }

        // Background queue: drain in due order (heap-backed, O(log n)).
        loop {
            let work = self.background.lock().pop_due(now);
            let Some(work) = work else { break };
            report.background_executed += 1;
            let mut ctx = Ctx::background(work.due);
            ctx.inserted = work.inserted.clone();
            match work.work {
                WorkItem::Responses(responses) => {
                    if let Err(e) = self.execute_responses(&responses, &mut ctx) {
                        self.requeue_or_drop(
                            work.due,
                            WorkItem::Responses(responses),
                            work.inserted,
                            work.attempts,
                            &e,
                        );
                    }
                }
                WorkItem::PacedCopy {
                    mut keys,
                    to,
                    cap,
                    delete_source,
                } => {
                    if let Some(key) = keys.pop_front() {
                        let moved = match self.copy_single(&key, &to, delete_source, &mut ctx) {
                            Ok(moved) => moved,
                            Err(e) if RetryPolicy::retryable(&e) => {
                                // Transient destination trouble (timeout,
                                // full): put the key back and retry the
                                // whole batch later, against the attempt
                                // budget.
                                keys.push_front(key);
                                self.requeue_or_drop(
                                    work.due,
                                    WorkItem::PacedCopy {
                                        keys,
                                        to,
                                        cap,
                                        delete_source,
                                    },
                                    work.inserted,
                                    work.attempts,
                                    &e,
                                );
                                continue;
                            }
                            // A copy racing with concurrent overwrites or
                            // deletes may find an object gone mid-flight;
                            // skip it and keep draining the batch.
                            Err(_) => 4096,
                        };
                        if !keys.is_empty() {
                            // Pace: the next chunk may only start once this
                            // one's bytes have "drained" at the cap rate.
                            self.background.lock().push(PendingWork {
                                due: work.due + cap.pace(moved.max(1)),
                                work: WorkItem::PacedCopy {
                                    keys,
                                    to,
                                    cap,
                                    delete_source,
                                },
                                inserted: work.inserted,
                                attempts: 0,
                            });
                        }
                    }
                }
            }
        }

        Ok(report)
    }

    /// Requeues failed background work with a deterministic exponential
    /// delay (no RNG: background retries must not perturb the seeded
    /// streams), dropping it with an alert once the attempt budget is
    /// spent. Before this, a failing background item aborted the whole
    /// pump drain *and* was itself lost.
    fn requeue_or_drop(
        &self,
        due: SimTime,
        work: WorkItem,
        inserted: Option<ObjectKey>,
        attempts: u32,
        err: &TieraError,
    ) {
        const MAX_BACKGROUND_ATTEMPTS: u32 = 8;
        if attempts + 1 >= MAX_BACKGROUND_ATTEMPTS {
            self.emit_alert(FailureAlert {
                at: due,
                tier: err_tier(err),
                op: "background",
                failover_to: None,
                detail: format!(
                    "background work dropped after {MAX_BACKGROUND_ATTEMPTS} attempts: {err}"
                ),
            });
            return;
        }
        let delay = SimDuration::from_secs(1 << attempts.min(6)).min(SimDuration::from_secs(60));
        self.background.lock().push(PendingWork {
            due: due + delay,
            work,
            inserted,
            attempts: attempts + 1,
        });
    }

    /// Queued background work items.
    pub fn background_depth(&self) -> usize {
        self.background.lock().len()
    }

    // ---- internals ----

    fn matching_action_rules(&self, op: ActionOp, into_tier: &str) -> Vec<(RuleId, Rule, bool)> {
        // Action matching never mutates trigger state: shared lock only,
        // so concurrent PUT/GET threads don't serialize on the policy.
        self.policy.with_rules_read(|rules| {
            rules
                .iter()
                .filter_map(|installed| match &installed.rule.event {
                    EventKind::Action {
                        op: rule_op,
                        tier,
                        background,
                    } if *rule_op == op
                        && tier.as_deref().map(|t| t == into_tier).unwrap_or(true) =>
                    {
                        Some((installed.id, installed.rule.clone(), *background))
                    }
                    _ => None,
                })
                .collect()
        })
    }

    fn enqueue_background(&self, responses: Vec<ResponseSpec>, ctx: &Ctx) {
        self.stats.record_background();
        self.background.lock().push(PendingWork {
            due: ctx.now,
            work: WorkItem::Responses(responses),
            inserted: ctx.inserted.clone(),
            attempts: 0,
        });
    }

    /// Evaluates threshold rules (edge-triggered) after state-changing
    /// actions.
    fn eval_thresholds(&self, ctx: &mut Ctx) -> Result<()> {
        if ctx.depth >= MAX_CASCADE_DEPTH {
            return Ok(());
        }
        // Fast path: no threshold rules installed (the common policy on the
        // action hot path) — skip the write lock entirely.
        if !self.policy.has_threshold_rules() {
            return Ok(());
        }
        let fired: Vec<(Vec<ResponseSpec>, bool)> = self.policy.with_rules(|rules| {
            let mut fired = Vec::new();
            for installed in rules.iter_mut() {
                if let EventKind::Threshold {
                    metric,
                    relation,
                    value,
                    background,
                } = &installed.rule.event
                {
                    let current = self.metric_value(metric, ctx.now);
                    let holds = relation.holds(current, *value);
                    if holds && installed.state.armed {
                        installed.state.armed = false;
                        fired.push((installed.rule.responses.clone(), *background));
                    } else if !holds {
                        installed.state.armed = true;
                    }
                }
            }
            fired
        });
        for (responses, background) in fired {
            self.stats.record_event();
            if background {
                self.enqueue_background(responses, ctx);
            } else {
                ctx.depth += 1;
                let r = self.execute_responses(&responses, ctx);
                ctx.depth -= 1;
                r?;
            }
        }
        Ok(())
    }

    fn metric_value(&self, metric: &Metric, now: SimTime) -> f64 {
        match metric {
            Metric::TierFillFraction(t) => self
                .tier(t)
                .map(|tier| tier.fill_fraction(now))
                .unwrap_or(0.0),
            Metric::TierUsedBytes(t) => {
                self.tier(t).map(|tier| tier.used() as f64).unwrap_or(0.0)
            }
            Metric::TierDirtyBytes(t) => self.registry.aggregates(t).dirty_bytes as f64,
            Metric::TierObjectCount(t) => self.registry.aggregates(t).objects as f64,
            Metric::ObjectAccessCount(k) => self
                .registry
                .get(&ObjectKey::new(k))
                .map(|m| m.access_count as f64)
                .unwrap_or(0.0),
            Metric::ObjectAccessFrequency(k) => self
                .registry
                .get(&ObjectKey::new(k))
                .map(|m| m.access_frequency(now))
                .unwrap_or(0.0),
        }
    }

    fn execute_responses(&self, responses: &[ResponseSpec], ctx: &mut Ctx) -> Result<()> {
        for r in responses {
            self.execute_response(r, ctx)?;
        }
        Ok(())
    }

    fn execute_response(&self, spec: &ResponseSpec, ctx: &mut Ctx) -> Result<()> {
        self.stats.record_response();
        match spec {
            ResponseSpec::Store { what, to } => self.exec_store(what, to, false, ctx),
            ResponseSpec::StoreOnce { what, to } => self.exec_store(what, to, true, ctx),
            ResponseSpec::Retrieve { what } => self.exec_retrieve(what, ctx),
            ResponseSpec::Copy {
                what,
                to,
                bandwidth,
            } => self.exec_copy(what, to, *bandwidth, false, ctx),
            ResponseSpec::Move {
                what,
                to,
                bandwidth,
            } => self.exec_copy(what, to, *bandwidth, true, ctx),
            ResponseSpec::Delete { what, from } => self.exec_delete(what, from.as_deref(), ctx),
            ResponseSpec::Encrypt { what, key_id } => self.exec_crypt(what, key_id, true, ctx),
            ResponseSpec::Decrypt { what, key_id } => self.exec_crypt(what, key_id, false, ctx),
            ResponseSpec::Compress { what } => self.exec_compress(what, true, ctx),
            ResponseSpec::Uncompress { what } => self.exec_compress(what, false, ctx),
            ResponseSpec::Grow { tier, percent } => {
                let t = self.tier(tier)?;
                t.grow(*percent, ctx.now);
                Ok(())
            }
            ResponseSpec::Shrink { tier, percent } => {
                let t = self.tier(tier)?;
                t.shrink(*percent, ctx.now);
                Ok(())
            }
            ResponseSpec::EvictUntilFit { from, to, order } => {
                self.exec_evict_until_fit(from, to, *order, ctx)
            }
            ResponseSpec::If { guard, then } => {
                if self.eval_guard(guard, ctx)? {
                    self.execute_responses(then, ctx)?;
                }
                Ok(())
            }
        }
    }

    fn eval_guard(&self, guard: &Guard, ctx: &Ctx) -> Result<bool> {
        match guard {
            Guard::Always => Ok(true),
            Guard::TierFilled { tier, at_least } => {
                let t = self.tier(tier)?;
                Ok(match at_least {
                    Some(frac) => t.fill_fraction(ctx.now) >= *frac,
                    None => {
                        let incoming = ctx
                            .inserted_data
                            .as_ref()
                            .map(|d| d.len() as u64)
                            .unwrap_or(0);
                        t.would_overflow(incoming, ctx.now)
                    }
                })
            }
            Guard::Not(inner) => Ok(!self.eval_guard(inner, ctx)?),
        }
    }

    /// Resolves a logical key to the physical content key when the object
    /// was stored via `storeOnce` (dedup indirection). Physical objects own
    /// the real locations; logical dedup entries only carry the digest.
    fn resolve_physical(&self, key: &ObjectKey) -> ObjectKey {
        match self.registry.get(key).and_then(|m| m.digest) {
            Some(d) => self.registry.dedup_lookup(&d).unwrap_or_else(|| key.clone()),
            None => key.clone(),
        }
    }

    /// Reads an object's raw stored bytes from its most preferred reachable
    /// location, resolving dedup indirection.
    fn read_raw(&self, key: &ObjectKey, meta: &ObjectMeta, ctx: &mut Ctx) -> Result<(Bytes, String)> {
        // Dedup objects live under their physical content key, whose
        // metadata holds the true locations.
        let (read_key, loc_meta): (ObjectKey, ObjectMeta) = match &meta.digest {
            Some(d) => {
                let phys = self
                    .registry
                    .dedup_lookup(d)
                    .ok_or_else(|| TieraError::LocationsUnavailable(key.to_string()))?;
                let pm = self
                    .registry
                    .get(&phys)
                    .ok_or_else(|| TieraError::LocationsUnavailable(key.to_string()))?;
                (phys, pm)
            }
            None => (key.clone(), meta.clone()),
        };
        let tiers = self.tiers.read().clone();
        let mut last_err = None;
        // Per-location retry budget (trivial policy: one attempt, exactly
        // the old behavior); once a location exhausts it, the read falls
        // back along the replica/tier chain.
        let policy = if self.retry_active.load(Ordering::Acquire) {
            Some(self.retry.read().clone())
        } else {
            None
        };
        let attempts = policy.as_ref().map(|p| p.max_attempts.max(1)).unwrap_or(1);
        for tier in tiers.iter().filter(|t| loc_meta.locations.contains(t.name())) {
            let mut retry = 0u32;
            loop {
                match tier.get(&read_key, ctx.now) {
                    Ok((bytes, receipt)) => {
                        ctx.charge(receipt.latency);
                        return Ok((bytes, tier.name().to_string()));
                    }
                    Err(TieraError::Timeout { waited, tier: t }) => {
                        // Charge the timeout, retry in place while budget
                        // remains, then fall back to the next location.
                        ctx.charge(waited);
                        last_err = Some(TieraError::Timeout { waited, tier: t });
                        if retry + 1 < attempts {
                            if let Some(p) = &policy {
                                ctx.charge(p.backoff(retry, &mut self.retry_rng.lock()));
                            }
                            retry += 1;
                            continue;
                        }
                        break;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        break;
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| TieraError::LocationsUnavailable(key.to_string())))
    }

    /// Undoes storage transforms (compression, encryption) on read.
    fn decode_payload(&self, key: &ObjectKey, meta: &ObjectMeta, raw: Bytes) -> Result<Bytes> {
        let mut data = raw;
        if meta.encrypted {
            let key_id = meta
                .encryption_key_id
                .as_deref()
                .ok_or_else(|| TieraError::Codec("encrypted object without key id".into()))?;
            let k = self
                .keyring
                .read()
                .get(key_id)
                .copied()
                .ok_or_else(|| TieraError::Codec(format!("unknown key id {key_id}")))?;
            let mut buf = data.to_vec();
            ChaCha20::new(&k).apply(&ChaCha20::nonce_for(key.as_str().as_bytes()), &mut buf);
            data = Bytes::from(buf);
        }
        if meta.compressed {
            let plain = lzss::decompress(&data)
                .map_err(|e| TieraError::Codec(format!("decompress {key}: {e}")))?;
            data = Bytes::from(plain);
        }
        Ok(data)
    }

    /// Fetches the payload bytes for `key` as currently stored (used by
    /// copy/move/store-of-existing). Charged to the context.
    fn fetch_stored(&self, key: &ObjectKey, ctx: &mut Ctx) -> Result<Bytes> {
        if ctx.inserted.as_ref() == Some(key) {
            if let Some(d) = &ctx.inserted_data {
                return Ok(d.clone());
            }
        }
        let meta = self
            .registry
            .get(key)
            .ok_or_else(|| TieraError::NoSuchObject(key.to_string()))?;
        let (raw, _) = self.read_raw(key, &meta, ctx)?;
        Ok(raw)
    }

    fn exec_store(
        &self,
        what: &Selector,
        to: &[String],
        dedup: bool,
        ctx: &mut Ctx,
    ) -> Result<()> {
        let keys = self
            .registry
            .select(what, ctx.inserted.as_ref(), ctx.now);
        for key in keys {
            let data = self.fetch_stored(&key, ctx)?;
            if dedup {
                self.store_once_one(&key, data, to, ctx)?;
            } else {
                self.store_one(&key, data, to, ctx)?;
            }
        }
        Ok(())
    }

    /// One tier PUT under the retry policy: bounded attempts with
    /// exponential backoff in virtual time. Timeout waits and backoffs are
    /// charged to the context as they occur; the returned latency is the
    /// successful attempt's own cost (callers take the max across targets).
    fn tier_put_retrying(
        &self,
        tier: &TierHandle,
        key: &ObjectKey,
        data: &Bytes,
        ctx: &mut Ctx,
    ) -> Result<SimDuration> {
        if !self.retry_active.load(Ordering::Acquire) {
            return Ok(tier.put(key, data.clone(), ctx.now)?.latency);
        }
        let policy = self.retry.read().clone();
        let start = ctx.now;
        let mut retry = 0u32;
        loop {
            match tier.put(key, data.clone(), ctx.now) {
                Ok(receipt) => return Ok(receipt.latency),
                Err(e) => {
                    if let TieraError::Timeout { waited, .. } = &e {
                        // The client sat out the failed attempt.
                        ctx.charge(*waited);
                    }
                    let budget_ok = policy
                        .op_budget
                        .map(|b| ctx.now.since(start) < b)
                        .unwrap_or(true);
                    if retry + 1 >= policy.max_attempts
                        || !RetryPolicy::retryable(&e)
                        || !budget_ok
                    {
                        return Err(e);
                    }
                    ctx.charge(policy.backoff(retry, &mut self.retry_rng.lock()));
                    retry += 1;
                }
            }
        }
    }

    /// Graceful degradation for a PUT whose target exhausted its retries:
    /// tries the remaining attached writable tiers (durable first, then
    /// attachment order) and emits a FAILURE_ALERT either way. Returns the
    /// replacement tier and write latency if one accepted the bytes.
    fn failover_put(
        &self,
        key: &ObjectKey,
        data: &Bytes,
        failed: &str,
        exclude: &[String],
        ctx: &mut Ctx,
    ) -> Option<(String, SimDuration)> {
        let mut candidates: Vec<TierHandle> = self
            .tiers
            .read()
            .iter()
            .filter(|t| t.name() != failed && !exclude.iter().any(|x| x == t.name()))
            .cloned()
            .collect();
        // Durable tiers first (stable sort keeps attachment order within
        // each group): degraded writes should stay crash-safe if possible.
        candidates.sort_by_key(|t| !t.tier_traits().durable);
        for tier in candidates {
            if let Ok(latency) = self.tier_put_retrying(&tier, key, data, ctx) {
                self.emit_alert(FailureAlert {
                    at: ctx.now,
                    tier: failed.to_string(),
                    op: "put",
                    failover_to: Some(tier.name().to_string()),
                    detail: format!(
                        "put {key}: {failed} unavailable, redirected to {}",
                        tier.name()
                    ),
                });
                return Some((tier.name().to_string(), latency));
            }
        }
        self.emit_alert(FailureAlert {
            at: ctx.now,
            tier: failed.to_string(),
            op: "put",
            failover_to: None,
            detail: format!("put {key}: {failed} unavailable and no writable fallback accepted it"),
        });
        None
    }

    /// Writes `data` under `key` to each target tier in parallel; charges
    /// the slowest write. Under a failover-enabled retry policy a target
    /// that exhausts its retries is replaced by the next writable tier.
    fn store_one(&self, key: &ObjectKey, data: Bytes, to: &[String], ctx: &mut Ctx) -> Result<()> {
        let mut slowest = SimDuration::ZERO;
        let mut placed: Vec<String> = Vec::with_capacity(to.len());
        for tier_name in to {
            let tier = self.tier(tier_name)?;
            match self.tier_put_retrying(&tier, key, &data, ctx) {
                Ok(latency) => {
                    slowest = slowest.max(latency);
                    placed.push(tier_name.clone());
                    if ctx.inserted.as_ref() == Some(key) {
                        ctx.placed_inserted.insert(tier_name.clone());
                    }
                }
                Err(e) => {
                    let failover =
                        self.retry_active.load(Ordering::Acquire) && self.retry.read().failover;
                    if !failover {
                        return Err(e);
                    }
                    let exclude: Vec<String> =
                        to.iter().chain(placed.iter()).cloned().collect();
                    match self.failover_put(key, &data, tier_name, &exclude, ctx) {
                        Some((alt, latency)) => {
                            slowest = slowest.max(latency);
                            if ctx.inserted.as_ref() == Some(key) {
                                ctx.placed_inserted.insert(alt.clone());
                            }
                            placed.push(alt);
                        }
                        None => return Err(e),
                    }
                }
            }
        }
        ctx.charge(slowest);
        self.registry.update(key, |m| {
            for t in &placed {
                m.locations.insert(t.clone());
            }
            m.stored_size = data.len() as u64;
        });
        // Landing on a durable tier does not clear dirty — only an explicit
        // copy/move does (the dirty bit means "not yet persisted by
        // policy"); but a store that *itself* targets a durable tier is a
        // synchronous persist.
        if placed
            .iter()
            .any(|t| self.tier(t).map(|t| t.tier_traits().durable).unwrap_or(false))
        {
            self.registry.update(key, |m| m.dirty = false);
        }
        Ok(())
    }

    fn store_once_one(
        &self,
        key: &ObjectKey,
        data: Bytes,
        to: &[String],
        ctx: &mut Ctx,
    ) -> Result<()> {
        let digest = Digest::of(&data);
        let physical = ObjectKey::new(format!("sha256:{}", digest.to_hex()));
        if ctx.inserted.as_ref() == Some(key) {
            ctx.placed_inserted.extend(to.iter().cloned());
        }
        match self.registry.dedup_acquire(digest, physical.clone()) {
            Some(_existing) => {
                // Content already stored: no tier writes at all (this is
                // what cuts the S3 PUT count in Fig 12b). The logical entry
                // just records the digest pointer.
                self.registry.update(key, |m| {
                    m.digest = Some(digest);
                });
            }
            None => {
                let mut slowest = SimDuration::ZERO;
                for tier_name in to {
                    let tier = self.tier(tier_name)?;
                    let receipt = tier.put(&physical, data.clone(), ctx.now)?;
                    slowest = slowest.max(receipt.latency);
                }
                ctx.charge(slowest);
                // The physical object owns locations and participates in
                // LRU ordering; logical entries point at it via the digest.
                let mut pm = ObjectMeta::new(data.len() as u64, ctx.now);
                pm.dirty = true;
                pm.locations = to.iter().cloned().collect();
                pm.touch(ctx.now);
                let durable = to.iter().any(|t| {
                    self.tier(t).map(|t| t.tier_traits().durable).unwrap_or(false)
                });
                if durable {
                    pm.dirty = false;
                }
                self.registry.upsert(physical, pm);
                self.registry.update(key, |m| {
                    m.digest = Some(digest);
                    m.stored_size = data.len() as u64;
                });
            }
        }
        Ok(())
    }

    fn exec_retrieve(&self, what: &Selector, ctx: &mut Ctx) -> Result<()> {
        let keys = self
            .registry
            .select(what, ctx.inserted.as_ref(), ctx.now);
        for key in keys {
            let meta = self
                .registry
                .get(&key)
                .ok_or_else(|| TieraError::NoSuchObject(key.to_string()))?;
            let _ = self.read_raw(&key, &meta, ctx)?;
            self.registry.touch(&key, ctx.now);
        }
        Ok(())
    }

    fn exec_copy(
        &self,
        what: &Selector,
        to: &[String],
        bandwidth: Option<BandwidthCap>,
        delete_source: bool,
        ctx: &mut Ctx,
    ) -> Result<()> {
        let keys = self
            .registry
            .select(what, ctx.inserted.as_ref(), ctx.now);
        // Background copies self-pace via continuations: one object per
        // step, re-enqueued at the transfer rate, so they interleave with
        // foreground traffic in virtual time (paper Fig 14). Without an
        // explicit cap the replication stream runs at the device-limited
        // rate of a busy volume (~4 MB/s for 4 KB objects on 2014
        // magnetic EBS), which is exactly what makes uncapped replication
        // visibly inflate foreground latency.
        if ctx.background {
            let cap = bandwidth.unwrap_or(UNCAPPED_STREAM_RATE);
            let keys: std::collections::VecDeque<ObjectKey> = keys
                .into_iter()
                .map(|k| self.resolve_physical(&k))
                .collect();
            if !keys.is_empty() {
                self.background.lock().push(PendingWork {
                    due: ctx.now,
                    work: WorkItem::PacedCopy {
                        keys,
                        to: to.to_vec(),
                        cap,
                        delete_source,
                    },
                    inserted: ctx.inserted.clone(),
                    attempts: 0,
                });
            }
            return Ok(());
        }
        for key in keys {
            // Foreground capped copies pace inline (charged to the caller).
            if let Some(cap) = bandwidth {
                if let Some(meta) = self.registry.get(&self.resolve_physical(&key)) {
                    ctx.charge(cap.pace(meta.stored_size as usize));
                }
            }
            self.copy_single(&key, to, delete_source, ctx)?;
        }
        Ok(())
    }

    /// Copies one object to `to`, optionally vacating its other locations.
    /// Returns the number of bytes moved.
    fn copy_single(
        &self,
        key: &ObjectKey,
        to: &[String],
        delete_source: bool,
        ctx: &mut Ctx,
    ) -> Result<usize> {
        // Dedup'd logical keys redirect to their physical object, which
        // owns the locations (and the bytes).
        let key = self.resolve_physical(key);
        // No-op short-circuit: the object already lives exactly where the
        // copy/move would put it.
        if let Some(meta) = self.registry.get(&key) {
            let covered = to.iter().all(|t| meta.locations.contains(t));
            let exact = meta.locations.len() == to.len();
            if covered && (!delete_source || exact) && ctx.inserted.as_ref() != Some(&key) {
                return Ok(meta.stored_size as usize);
            }
        }
        let data = self.fetch_stored(&key, ctx)?;
        let moved = data.len();
        let mut slowest = SimDuration::ZERO;
        for tier_name in to {
            let tier = self.tier(tier_name)?;
            let latency = self.tier_put_retrying(&tier, &key, &data, ctx)?;
            slowest = slowest.max(latency);
            if ctx.inserted.as_ref() == Some(&key) {
                ctx.placed_inserted.insert(tier_name.clone());
            }
        }
        ctx.charge(slowest);

        let dest_durable = to
            .iter()
            .any(|t| self.tier(t).map(|t| t.tier_traits().durable).unwrap_or(false));

        if delete_source {
            let old = self.registry.get(&key).map(|m| m.locations.clone()).unwrap_or_default();
            for loc in old.iter().filter(|l| !to.contains(l)) {
                if let Ok(tier) = self.tier(loc) {
                    let _ = tier.delete(&key, ctx.now)?;
                }
            }
            self.registry.update(&key, |m| {
                m.locations = to.iter().cloned().collect::<BTreeSet<_>>();
                if dest_durable {
                    m.dirty = false;
                }
            });
        } else {
            self.registry.update(&key, |m| {
                for t in to {
                    m.locations.insert(t.clone());
                }
                if dest_durable {
                    m.dirty = false;
                }
            });
        }
        Ok(moved)
    }

    fn exec_delete(&self, what: &Selector, from: Option<&str>, ctx: &mut Ctx) -> Result<()> {
        let keys = self
            .registry
            .select(what, ctx.inserted.as_ref(), ctx.now);
        for key in keys {
            let Some(meta) = self.registry.get(&key) else {
                continue;
            };
            match from {
                Some(tier_name) => {
                    if meta.locations.contains(tier_name) {
                        if meta.digest.is_none() {
                            let tier = self.tier(tier_name)?;
                            let receipt = tier.delete(&key, ctx.now)?;
                            ctx.charge(receipt.latency);
                        }
                        let updated = self.registry.update(&key, |m| {
                            m.locations.remove(tier_name);
                        });
                        if updated.map(|m| m.locations.is_empty()).unwrap_or(false) {
                            self.registry.remove(&key);
                        }
                    }
                }
                None => {
                    if let Some(d) = meta.digest {
                        if let Some(physical) = self.registry.dedup_release(&d) {
                            self.delete_physical(&physical, ctx.now);
                        }
                    } else {
                        for loc in &meta.locations {
                            if let Ok(tier) = self.tier(loc) {
                                let receipt = tier.delete(&key, ctx.now)?;
                                ctx.charge(receipt.latency);
                            }
                        }
                    }
                    self.registry.remove(&key);
                }
            }
        }
        Ok(())
    }

    /// Deletes a dedup physical object's bytes from every attached tier and
    /// drops its registry entry (called when the last logical reference is
    /// released).
    fn delete_physical(&self, physical: &ObjectKey, now: SimTime) {
        for tier in self.tiers.read().iter() {
            if tier.contains(physical) {
                let _ = tier.delete(physical, now);
            }
        }
        self.registry.remove(physical);
    }

    fn exec_crypt(&self, what: &Selector, key_id: &str, encrypt: bool, ctx: &mut Ctx) -> Result<()> {
        let k = self
            .keyring
            .read()
            .get(key_id)
            .copied()
            .ok_or_else(|| TieraError::Codec(format!("unknown key id {key_id}")))?;
        let keys = self
            .registry
            .select(what, ctx.inserted.as_ref(), ctx.now);
        for key in keys {
            let meta = self
                .registry
                .get(&key)
                .ok_or_else(|| TieraError::NoSuchObject(key.to_string()))?;
            if meta.encrypted == encrypt {
                continue; // already in the requested state
            }
            let (raw, _) = self.read_raw(&key, &meta, ctx)?;
            let mut buf = raw.to_vec();
            ChaCha20::new(&k).apply(&ChaCha20::nonce_for(key.as_str().as_bytes()), &mut buf);
            let data = Bytes::from(buf);
            // Rewrite in place at every location.
            let mut slowest = SimDuration::ZERO;
            for loc in &meta.locations {
                let tier = self.tier(loc)?;
                let receipt = tier.put(&key, data.clone(), ctx.now)?;
                slowest = slowest.max(receipt.latency);
            }
            ctx.charge(slowest);
            self.registry.update(&key, |m| {
                m.encrypted = encrypt;
                m.encryption_key_id = if encrypt { Some(key_id.to_string()) } else { None };
            });
        }
        Ok(())
    }

    fn exec_compress(&self, what: &Selector, compress: bool, ctx: &mut Ctx) -> Result<()> {
        let keys = self
            .registry
            .select(what, ctx.inserted.as_ref(), ctx.now);
        for key in keys {
            let meta = self
                .registry
                .get(&key)
                .ok_or_else(|| TieraError::NoSuchObject(key.to_string()))?;
            if meta.compressed == compress {
                continue;
            }
            if meta.encrypted {
                return Err(TieraError::Codec(format!(
                    "refusing to (de)compress encrypted object {key}; decrypt first"
                )));
            }
            let (raw, _) = self.read_raw(&key, &meta, ctx)?;
            let data = if compress {
                Bytes::from(lzss::compress(&raw))
            } else {
                Bytes::from(
                    lzss::decompress(&raw)
                        .map_err(|e| TieraError::Codec(format!("uncompress {key}: {e}")))?,
                )
            };
            let mut slowest = SimDuration::ZERO;
            for loc in &meta.locations {
                let tier = self.tier(loc)?;
                let receipt = tier.put(&key, data.clone(), ctx.now)?;
                slowest = slowest.max(receipt.latency);
            }
            ctx.charge(slowest);
            self.registry.update(&key, |m| {
                m.compressed = compress;
                m.stored_size = data.len() as u64;
            });
        }
        Ok(())
    }

    fn exec_evict_until_fit(
        &self,
        from: &str,
        to: &str,
        order: EvictOrder,
        ctx: &mut Ctx,
    ) -> Result<()> {
        let from_tier = self.tier(from)?;
        // Incoming size: the payload being inserted, or (for eviction fired
        // from a GET/move context) the object's stored size from metadata.
        let incoming = ctx
            .inserted_data
            .as_ref()
            .map(|d| d.len() as u64)
            .or_else(|| {
                ctx.inserted
                    .as_ref()
                    .and_then(|k| self.registry.get(k))
                    .map(|m| m.stored_size)
            })
            .unwrap_or(0);
        let mut evicted = 0usize;
        // Never evict the object being inserted, and bound the loop by the
        // tier's object count.
        let max_evictions = self.registry.aggregates(from).objects as usize + 1;
        while from_tier.would_overflow(incoming, ctx.now) && evicted <= max_evictions {
            let victim = match order {
                EvictOrder::Lru => self.registry.oldest_in(from),
                EvictOrder::Mru => self.registry.newest_in(from),
            };
            let Some(victim) = victim else { break };
            if Some(&victim) == ctx.inserted.as_ref() {
                break;
            }
            // Move the victim down a tier.
            self.exec_copy(
                &Selector::Key(victim.clone()),
                std::slice::from_ref(&to.to_string()),
                None,
                false,
                ctx,
            )?;
            // Drop it from the fast tier.
            self.exec_delete(&Selector::Key(victim), Some(from), ctx)?;
            evicted += 1;
        }
        Ok(())
    }
}

/// Whether a response (recursively) stores the inserted object.
fn places_inserted(spec: &ResponseSpec) -> bool {
    match spec {
        ResponseSpec::Store { what, .. } | ResponseSpec::StoreOnce { what, .. } => {
            what.is_inserted_only()
        }
        ResponseSpec::If { then, .. } => then.iter().any(places_inserted),
        _ => false,
    }
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("name", &self.name)
            .field("tiers", &self.tier_names())
            .field("rules", &self.policy.len())
            .field("objects", &self.registry.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InstanceBuilder;
    use crate::tier::{MemTier, TierTraits};
    use std::sync::Arc;
    use tiera_sim::StorageClass;

    const T0: SimTime = SimTime::ZERO;

    fn durable_tier(name: &str, cap: u64) -> Arc<MemTier> {
        MemTier::with_traits(
            name,
            cap,
            TierTraits {
                durable: true,
                availability_zone: "zone-a".into(),
                class: StorageClass::BlockStore,
            },
        )
    }

    /// Figure 3's LowLatencyInstance: store to cache on insert, copy dirty
    /// data to the persistent tier on a timer (write-back).
    fn low_latency_instance(writeback: SimDuration) -> Arc<Instance> {
        InstanceBuilder::new("LowLatencyInstance", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 1 << 20))
            .tier(durable_tier("tier2", 1 << 20))
            .rule(
                Rule::on(EventKind::action(ActionOp::Put))
                    .respond(ResponseSpec::store(Selector::Inserted, ["tier1"])),
            )
            .rule(
                Rule::on(EventKind::timer(writeback)).respond(ResponseSpec::copy(
                    Selector::InTier("tier1".into()).and(Selector::Dirty),
                    ["tier2"],
                )),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn put_get_roundtrip_default_placement() {
        let inst = InstanceBuilder::new("plain", SimEnv::new(1))
            .tier(MemTier::with_capacity("t1", 1 << 20))
            .build()
            .unwrap();
        inst.put("k", &b"value"[..], T0).unwrap();
        let (data, receipt) = inst.get("k", T0).unwrap();
        assert_eq!(&data[..], b"value");
        assert_eq!(receipt.served_by, "t1");
        let meta = inst.registry().get(&ObjectKey::new("k")).unwrap();
        assert!(meta.in_tier("t1"));
        assert!(meta.dirty, "volatile placement leaves the object dirty");
    }

    #[test]
    fn install_rule_validates_against_attached_tiers() {
        let inst = low_latency_instance(SimDuration::from_secs(30));
        let before = inst.policy().len();

        // References only attached tiers: installed.
        let ok = Rule::on(EventKind::timer(SimDuration::from_secs(5)))
            .respond(ResponseSpec::copy(Selector::Dirty, ["tier2"]));
        inst.install_rule(ok).unwrap();
        assert_eq!(inst.policy().len(), before + 1);

        // Unattached response target: rejected, policy untouched.
        let bad = Rule::on(EventKind::timer(SimDuration::from_secs(5)))
            .respond(ResponseSpec::copy(Selector::Dirty, ["tier9"]));
        let err = inst.install_rule(bad).unwrap_err();
        assert!(matches!(err, TieraError::InvalidConfig(_)), "{err}");
        assert_eq!(inst.policy().len(), before + 1);

        // Unattached threshold metric tier: rejected.
        let bad = Rule::on(EventKind::threshold_at_least(
            Metric::TierFillFraction("tier9".into()),
            0.5,
        ))
        .respond(ResponseSpec::copy(Selector::Dirty, ["tier2"]));
        assert!(inst.install_rule(bad).is_err());

        // Unattached action scope: rejected.
        let bad = Rule::on(EventKind::Action {
            op: ActionOp::Put,
            tier: Some("tier9".into()),
            background: false,
        })
        .respond(ResponseSpec::store(Selector::Inserted, ["tier1"]));
        assert!(inst.install_rule(bad).is_err());

        // Zero timer period: rejected.
        let bad = Rule::on(EventKind::timer(SimDuration::ZERO))
            .respond(ResponseSpec::copy(Selector::Dirty, ["tier2"]));
        let err = inst.install_rule(bad).unwrap_err();
        assert!(err.to_string().contains("zero period"), "{err}");
    }

    #[test]
    fn get_missing_object_errors() {
        let inst = low_latency_instance(SimDuration::from_secs(30));
        assert!(matches!(
            inst.get("ghost", T0),
            Err(TieraError::NoSuchObject(_))
        ));
    }

    #[test]
    fn write_back_timer_persists_dirty_data() {
        let inst = low_latency_instance(SimDuration::from_secs(30));
        inst.put("a", &b"1"[..], T0).unwrap();
        let meta = inst.registry().get(&ObjectKey::new("a")).unwrap();
        assert!(meta.dirty);
        assert!(!meta.in_tier("tier2"));

        // Before the period elapses nothing is copied.
        let r = inst.pump(SimTime::from_secs(29)).unwrap();
        assert_eq!(r.timers_fired, 0);
        // At the period boundary the copy fires and cleans the object.
        let r = inst.pump(SimTime::from_secs(30)).unwrap();
        assert_eq!(r.timers_fired, 1);
        let meta = inst.registry().get(&ObjectKey::new("a")).unwrap();
        assert!(meta.in_tier("tier1") && meta.in_tier("tier2"));
        assert!(!meta.dirty);
    }

    #[test]
    fn timer_fires_once_per_period() {
        let inst = low_latency_instance(SimDuration::from_secs(10));
        inst.put("a", &b"1"[..], T0).unwrap();
        let r = inst.pump(SimTime::from_secs(35)).unwrap();
        assert_eq!(r.timers_fired, 3, "three whole periods in 35 s");
        let r = inst.pump(SimTime::from_secs(40)).unwrap();
        assert_eq!(r.timers_fired, 1);
    }

    #[test]
    fn write_through_persistent_instance() {
        // Figure 4's core: implicit placement to tier1 + copy to tier2 on
        // insert (foreground write-through, charged to the client).
        let inst = InstanceBuilder::new("PersistentInstance", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 1 << 20))
            .tier(durable_tier("tier2", 1 << 20))
            .rule(
                Rule::on(EventKind::action_on(ActionOp::Put, "tier1"))
                    .respond(ResponseSpec::copy(Selector::Inserted, ["tier2"])),
            )
            .build()
            .unwrap();
        inst.put("x", &b"data"[..], T0).unwrap();
        let meta = inst.registry().get(&ObjectKey::new("x")).unwrap();
        assert!(meta.in_tier("tier1") && meta.in_tier("tier2"));
        assert!(!meta.dirty, "write-through to a durable tier cleans");
    }

    #[test]
    fn lru_eviction_makes_room() {
        // Figure 5's LRU policy: evict oldest from tier1 into tier2 until
        // the inserted object fits.
        let inst = InstanceBuilder::new("lru", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 10))
            .tier(durable_tier("tier2", 1 << 20))
            .rule(
                Rule::on(EventKind::action(ActionOp::Put))
                    .respond(ResponseSpec::evict_lru("tier1", "tier2"))
                    .respond(ResponseSpec::store(Selector::Inserted, ["tier1"])),
            )
            .build()
            .unwrap();
        inst.put("a", Bytes::from(vec![1u8; 4]), T0).unwrap();
        inst.put("b", Bytes::from(vec![2u8; 4]), SimTime::from_secs(1))
            .unwrap();
        // "c" needs 4 bytes; tier1 has 2 free → "a" (oldest) is evicted.
        inst.put("c", Bytes::from(vec![3u8; 4]), SimTime::from_secs(2))
            .unwrap();
        let a = inst.registry().get(&ObjectKey::new("a")).unwrap();
        assert!(!a.in_tier("tier1") && a.in_tier("tier2"), "{a:?}");
        let c = inst.registry().get(&ObjectKey::new("c")).unwrap();
        assert!(c.in_tier("tier1"));
        // Data remains readable from the lower tier.
        let (data, receipt) = inst.get("a", SimTime::from_secs(3)).unwrap();
        assert_eq!(&data[..], &[1u8; 4][..]);
        assert_eq!(receipt.served_by, "tier2");
    }

    #[test]
    fn mru_eviction_picks_newest() {
        let inst = InstanceBuilder::new("mru", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 10))
            .tier(durable_tier("tier2", 1 << 20))
            .rule(
                Rule::on(EventKind::action(ActionOp::Put))
                    .respond(ResponseSpec::EvictUntilFit {
                        from: "tier1".into(),
                        to: "tier2".into(),
                        order: EvictOrder::Mru,
                    })
                    .respond(ResponseSpec::store(Selector::Inserted, ["tier1"])),
            )
            .build()
            .unwrap();
        inst.put("a", Bytes::from(vec![1u8; 4]), T0).unwrap();
        inst.put("b", Bytes::from(vec![2u8; 4]), SimTime::from_secs(1))
            .unwrap();
        inst.put("c", Bytes::from(vec![3u8; 4]), SimTime::from_secs(2))
            .unwrap();
        // MRU evicts "b" (the newest resident, not the inserted object).
        let b = inst.registry().get(&ObjectKey::new("b")).unwrap();
        assert!(!b.in_tier("tier1") && b.in_tier("tier2"), "{b:?}");
        let a = inst.registry().get(&ObjectKey::new("a")).unwrap();
        assert!(a.in_tier("tier1"));
    }

    #[test]
    fn store_once_deduplicates_payloads() {
        let inst = InstanceBuilder::new("dedup", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 1 << 20))
            .rule(
                Rule::on(EventKind::action(ActionOp::Put))
                    .respond(ResponseSpec::store_once(Selector::Inserted, ["tier1"])),
            )
            .build()
            .unwrap();
        inst.put("one", &b"same-content"[..], T0).unwrap();
        inst.put("two", &b"same-content"[..], T0).unwrap();
        inst.put("three", &b"different"[..], T0).unwrap();
        // Two physical objects despite three logical ones.
        let tier = inst.tier("tier1").unwrap();
        assert_eq!(
            tier.request_counts().puts,
            2,
            "duplicate content causes no second PUT"
        );
        // All logical objects read back correctly.
        for (k, v) in [("one", "same-content"), ("two", "same-content"), ("three", "different")] {
            let (data, _) = inst.get(k, SimTime::from_secs(1)).unwrap();
            assert_eq!(&data[..], v.as_bytes(), "{k}");
        }
        // Deleting one duplicate keeps the shared bytes alive.
        inst.delete("one", SimTime::from_secs(2)).unwrap();
        let (data, _) = inst.get("two", SimTime::from_secs(3)).unwrap();
        assert_eq!(&data[..], b"same-content");
        // Deleting the last reference frees the physical object.
        inst.delete("two", SimTime::from_secs(4)).unwrap();
        assert_eq!(inst.registry().len(), 2, "only 'three' and its physical object remain");
    }

    #[test]
    fn threshold_grow_expands_tier() {
        // Figure 6: grow tier1 by 100% when it is 75% full.
        let inst = InstanceBuilder::new("grow", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 100))
            .rule(
                Rule::on(EventKind::threshold_at_least(
                    Metric::TierFillFraction("tier1".into()),
                    0.75,
                ))
                .respond(ResponseSpec::Grow {
                    tier: "tier1".into(),
                    percent: 100.0,
                }),
            )
            .build()
            .unwrap();
        inst.put("a", Bytes::from(vec![0u8; 74]), T0).unwrap();
        assert_eq!(inst.tier("tier1").unwrap().capacity(T0), 100);
        inst.put("b", Bytes::from(vec![0u8; 2]), T0).unwrap(); // 76% full
        assert_eq!(
            inst.tier("tier1").unwrap().capacity(T0),
            200,
            "grow fired at the 75% crossing"
        );
        // Edge triggering: staying above the threshold must not re-fire.
        inst.put("c", Bytes::from(vec![0u8; 2]), T0).unwrap();
        assert_eq!(inst.tier("tier1").unwrap().capacity(T0), 200);
    }

    #[test]
    fn background_threshold_defers_to_pump() {
        let inst = InstanceBuilder::new("bg", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 100))
            .tier(durable_tier("tier2", 1 << 20))
            .rule(
                Rule::on(
                    EventKind::threshold_at_least(
                        Metric::TierFillFraction("tier1".into()),
                        0.5,
                    )
                    .background(),
                )
                .respond(ResponseSpec::copy(Selector::InTier("tier1".into()), ["tier2"])),
            )
            .build()
            .unwrap();
        inst.put("a", Bytes::from(vec![0u8; 60]), T0).unwrap();
        assert_eq!(inst.background_depth(), 1, "queued, not executed");
        let a = inst.registry().get(&ObjectKey::new("a")).unwrap();
        assert!(!a.in_tier("tier2"));
        inst.pump(T0).unwrap();
        let a = inst.registry().get(&ObjectKey::new("a")).unwrap();
        assert!(a.in_tier("tier2"), "executed by pump");
    }

    #[test]
    fn encrypt_decrypt_roundtrip_via_policy() {
        let inst = InstanceBuilder::new("crypt", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 1 << 20))
            .build()
            .unwrap();
        inst.add_key("default", [7u8; 32]);
        inst.put("secret", &b"plaintext"[..], T0).unwrap();
        // Encrypt in place.
        let mut ctx = Ctx::background(T0);
        inst.execute_response(
            &ResponseSpec::Encrypt {
                what: Selector::Key(ObjectKey::new("secret")),
                key_id: "default".into(),
            },
            &mut ctx,
        )
        .unwrap();
        // The stored bytes are not the plaintext.
        let tier = inst.tier("tier1").unwrap();
        let (stored, _) = tier.get(&ObjectKey::new("secret"), T0).unwrap();
        assert_ne!(&stored[..], b"plaintext");
        // But GET transparently decrypts.
        let (data, _) = inst.get("secret", T0).unwrap();
        assert_eq!(&data[..], b"plaintext");
        // Explicit decrypt restores the stored form.
        inst.execute_response(
            &ResponseSpec::Decrypt {
                what: Selector::Key(ObjectKey::new("secret")),
                key_id: "default".into(),
            },
            &mut ctx,
        )
        .unwrap();
        let (stored, _) = tier.get(&ObjectKey::new("secret"), T0).unwrap();
        assert_eq!(&stored[..], b"plaintext");
    }

    #[test]
    fn compress_uncompress_roundtrip() {
        let inst = InstanceBuilder::new("zip", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 1 << 20))
            .build()
            .unwrap();
        let payload: Vec<u8> = b"abc".iter().cycle().take(10_000).copied().collect();
        inst.put("log", Bytes::from(payload.clone()), T0).unwrap();
        let mut ctx = Ctx::background(T0);
        inst.execute_response(
            &ResponseSpec::Compress {
                what: Selector::Key(ObjectKey::new("log")),
            },
            &mut ctx,
        )
        .unwrap();
        let meta = inst.registry().get(&ObjectKey::new("log")).unwrap();
        assert!(meta.compressed);
        assert!(meta.stored_size < meta.size / 2, "{meta:?}");
        assert!(inst.tier("tier1").unwrap().used() < 5_000);
        // Transparent decompression on GET.
        let (data, _) = inst.get("log", T0).unwrap();
        assert_eq!(&data[..], &payload[..]);
        // Explicit uncompress restores.
        inst.execute_response(
            &ResponseSpec::Uncompress {
                what: Selector::Key(ObjectKey::new("log")),
            },
            &mut ctx,
        )
        .unwrap();
        let meta = inst.registry().get(&ObjectKey::new("log")).unwrap();
        assert!(!meta.compressed);
        assert_eq!(meta.stored_size, meta.size);
    }

    #[test]
    fn overwrite_cleans_stale_copies() {
        let inst = low_latency_instance(SimDuration::from_secs(10));
        inst.put("k", &b"v1"[..], T0).unwrap();
        inst.pump(SimTime::from_secs(10)).unwrap(); // copy to tier2
        let meta = inst.registry().get(&ObjectKey::new("k")).unwrap();
        assert!(meta.in_tier("tier2"));
        // Overwrite places only in tier1; the stale tier2 copy must go.
        inst.put("k", &b"v2"[..], SimTime::from_secs(11)).unwrap();
        let meta = inst.registry().get(&ObjectKey::new("k")).unwrap();
        assert!(meta.in_tier("tier1") && !meta.in_tier("tier2"), "{meta:?}");
        assert!(!inst.tier("tier2").unwrap().contains(&ObjectKey::new("k")));
        let (data, _) = inst.get("k", SimTime::from_secs(12)).unwrap();
        assert_eq!(&data[..], b"v2");
    }

    #[test]
    fn delete_removes_everywhere() {
        let inst = low_latency_instance(SimDuration::from_secs(10));
        inst.put("k", &b"v"[..], T0).unwrap();
        inst.pump(SimTime::from_secs(10)).unwrap();
        inst.delete("k", SimTime::from_secs(11)).unwrap();
        assert!(!inst.contains("k"));
        assert!(!inst.tier("tier1").unwrap().contains(&ObjectKey::new("k")));
        assert!(!inst.tier("tier2").unwrap().contains(&ObjectKey::new("k")));
        assert!(matches!(
            inst.delete("k", SimTime::from_secs(12)),
            Err(TieraError::NoSuchObject(_))
        ));
    }

    #[test]
    fn runtime_tier_and_policy_swap() {
        // The Figure 17 reconfiguration path: detach the failed tier,
        // attach replacements, and replace the policy — while serving.
        let inst = InstanceBuilder::new("failover", SimEnv::new(1))
            .tier(MemTier::with_capacity("memcached", 1 << 20))
            .tier(durable_tier("ebs", 1 << 20))
            .rule(
                Rule::on(EventKind::action(ActionOp::Put))
                    .respond(ResponseSpec::store(Selector::Inserted, ["memcached", "ebs"])),
            )
            .build()
            .unwrap();
        inst.put("before", &b"x"[..], T0).unwrap();

        // Reconfigure: ebs → ephemeral + s3.
        inst.detach_tier("ebs").unwrap();
        inst.attach_tier(MemTier::with_capacity("ephemeral", 1 << 20))
            .unwrap();
        inst.attach_tier(durable_tier("s3", 1 << 20)).unwrap();
        inst.policy().replace_all([
            Rule::on(EventKind::action(ActionOp::Put)).respond(ResponseSpec::store(
                Selector::Inserted,
                ["memcached", "ephemeral"],
            )),
            Rule::on(EventKind::timer(SimDuration::from_secs(120))).respond(
                ResponseSpec::copy(
                    Selector::InTier("ephemeral".into()).and(Selector::Dirty),
                    ["s3"],
                ),
            ),
        ]);

        inst.put("after", &b"y"[..], SimTime::from_secs(1)).unwrap();
        let meta = inst.registry().get(&ObjectKey::new("after")).unwrap();
        assert!(meta.in_tier("ephemeral") && !meta.in_tier("ebs"));
        inst.pump(SimTime::from_secs(121)).unwrap();
        let meta = inst.registry().get(&ObjectKey::new("after")).unwrap();
        assert!(meta.in_tier("s3"), "backup rule took over: {meta:?}");
        assert!(matches!(
            inst.detach_tier("ebs"),
            Err(TieraError::NoSuchTier(_))
        ));
    }

    #[test]
    fn control_layer_bypass_still_stores() {
        let inst = low_latency_instance(SimDuration::from_secs(10));
        inst.set_control_layer(false);
        inst.put("raw", &b"v"[..], T0).unwrap();
        let (data, _) = inst.get("raw", T0).unwrap();
        assert_eq!(&data[..], b"v");
        let (events, _, _) = inst.stats().dispatch_counters();
        assert_eq!(events, 0, "no events evaluated with the layer off");
    }

    #[test]
    fn tags_flow_through_put_options() {
        let inst = low_latency_instance(SimDuration::from_secs(10));
        inst.put_with(
            "tmpfile",
            &b"scratch"[..],
            PutOptions {
                tags: vec![Tag::new("tmp")],
            },
            T0,
        )
        .unwrap();
        let hits = inst
            .registry()
            .select(&Selector::Tagged(Tag::new("tmp")), None, T0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].as_str(), "tmpfile");
    }

    #[test]
    fn failed_put_leaves_no_phantom_metadata() {
        let inst = InstanceBuilder::new("tight", SimEnv::new(1))
            .tier(MemTier::with_capacity("t1", 4))
            .build()
            .unwrap();
        let err = inst.put("big", Bytes::from(vec![0u8; 100]), T0);
        assert!(matches!(err, Err(TieraError::TierFull { .. })));
        assert!(!inst.contains("big"));
        assert_eq!(inst.registry().len(), 0);
    }

    #[test]
    fn move_response_vacates_source() {
        let inst = low_latency_instance(SimDuration::from_secs(10));
        inst.put("k", &b"v"[..], T0).unwrap();
        // Foreground context: background moves are paced via continuations.
        let mut ctx = Ctx::foreground(SimTime::from_secs(1));
        inst.execute_response(
            &ResponseSpec::move_to(Selector::Key(ObjectKey::new("k")), ["tier2"]),
            &mut ctx,
        )
        .unwrap();
        let meta = inst.registry().get(&ObjectKey::new("k")).unwrap();
        assert!(!meta.in_tier("tier1") && meta.in_tier("tier2"));
        assert!(!inst.tier("tier1").unwrap().contains(&ObjectKey::new("k")));
        assert!(!meta.dirty, "moved to durable tier");
    }

    #[test]
    fn retrieve_touches_access_stats() {
        let inst = low_latency_instance(SimDuration::from_secs(10));
        inst.put("k", &b"v"[..], T0).unwrap();
        let before = inst.registry().get(&ObjectKey::new("k")).unwrap().access_count;
        let mut ctx = Ctx::background(SimTime::from_secs(5));
        inst.execute_response(
            &ResponseSpec::Retrieve {
                what: Selector::Key(ObjectKey::new("k")),
            },
            &mut ctx,
        )
        .unwrap();
        let after = inst.registry().get(&ObjectKey::new("k")).unwrap();
        assert_eq!(after.access_count, before + 1);
        assert_eq!(after.last_access, SimTime::from_secs(5));
    }

    #[test]
    fn background_queue_pops_earliest_due_not_first_queued() {
        // Regression for the VecDeque-era bug: `iter().position(|w| w.due
        // <= now)` popped the first *queued* due item, so a later-queued
        // earlier-due item ran after it. The heap must drain by due time.
        let mut q = BackgroundQueue::default();
        for (name, due_s) in [("late", 30u64), ("early", 10), ("mid", 20)] {
            q.push(PendingWork {
                due: SimTime::from_secs(due_s),
                work: WorkItem::Responses(Vec::new()),
                inserted: Some(ObjectKey::new(name)),
                attempts: 0,
            });
        }
        assert_eq!(q.len(), 3);
        // Nothing due yet.
        assert!(q.pop_due(SimTime::from_secs(5)).is_none());
        let now = SimTime::from_secs(60);
        let order: Vec<String> = std::iter::from_fn(|| q.pop_due(now))
            .map(|w| w.inserted.unwrap().as_str().to_string())
            .collect();
        assert_eq!(order, ["early", "mid", "late"]);
    }

    #[test]
    fn background_queue_is_fifo_among_equal_dues() {
        let mut q = BackgroundQueue::default();
        for name in ["first", "second", "third"] {
            q.push(PendingWork {
                due: T0,
                work: WorkItem::Responses(Vec::new()),
                inserted: Some(ObjectKey::new(name)),
                attempts: 0,
            });
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop_due(T0))
            .map(|w| w.inserted.unwrap().as_str().to_string())
            .collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn pump_executes_paced_continuations_in_due_order() {
        // Two paced background copies of two objects each: the slow-capped
        // one is queued first, the fast-capped one second. After the first
        // step of each, the fast copy's continuation is due at 1 s and the
        // slow one's at 10 s — due-order draining must run "fast2" before
        // "slow2" even though the slow copy was queued first. (The old
        // first-queued draining executed "slow2" first.)
        let inst = InstanceBuilder::new("paced", SimEnv::new(1))
            .tier(MemTier::with_capacity("tier1", 1 << 20))
            .tier(durable_tier("tier2", 1 << 20))
            .build()
            .unwrap();
        for k in ["slow1", "slow2", "fast1", "fast2"] {
            inst.put(k, Bytes::from(vec![7u8; 1000]), T0).unwrap();
        }
        // 1000-byte objects: 100 B/s paces the continuation 10 s out,
        // 1000 B/s paces it 1 s out.
        for (keys, bps) in [(["slow1", "slow2"], 100.0), (["fast1", "fast2"], 1000.0)] {
            inst.background.lock().push(PendingWork {
                due: T0,
                work: WorkItem::PacedCopy {
                    keys: keys.iter().map(|k| ObjectKey::new(*k)).collect(),
                    to: vec!["tier2".into()],
                    cap: BandwidthCap { bytes_per_sec: bps },
                    delete_source: false,
                },
                inserted: None,
                attempts: 0,
            });
        }
        inst.pump(SimTime::from_secs(60)).unwrap();
        for k in ["slow1", "slow2", "fast1", "fast2"] {
            assert!(inst.registry().get(&ObjectKey::new(k)).unwrap().in_tier("tier2"));
        }
        // fast2 ran at its 1 s continuation, slow2 at 10 s — slow2's
        // registry update is the later one, so it surfaces as newest.
        assert_eq!(
            inst.registry().newest_in("tier2").unwrap().as_str(),
            "slow2",
            "slow continuation (due 10 s) executed after fast (due 1 s)"
        );
    }
}
