//! Retry, backoff, and failover policy for tier operations.
//!
//! The paper's robustness story (§4.2.3, Figure 17) reacts to failures
//! *between* operations: an external monitor detects an outage and
//! reconfigures the instance. [`RetryPolicy`] adds the in-operation half:
//! bounded retries with exponential backoff in virtual time, an optional
//! per-operation time budget, and — for PUTs — failover to the next
//! writable tier, surfaced to the monitor as a [`FailureAlert`]
//! (the paper's FAILURE_ALERT event).
//!
//! The default policy is [`RetryPolicy::none`]: one attempt, no failover.
//! Every retry knob is opt-in so existing deterministic experiments replay
//! byte-identically unless a caller asks for robustness.

use tiera_sim::{SimDuration, SimTime};
use tiera_support::SimRng;

use crate::error::TieraError;

/// Bounded-retry policy with exponential backoff in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per tier operation (≥ 1; 1 means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: SimDuration,
    /// Upper bound on any single backoff.
    pub max_backoff: SimDuration,
    /// Optional per-operation budget: once an operation has spent this much
    /// virtual time across attempts and backoffs, it stops retrying.
    pub op_budget: Option<SimDuration>,
    /// Whether a PUT that exhausts its attempts fails over to the next
    /// writable tier (durable tiers preferred) and emits a
    /// [`FailureAlert`].
    pub failover: bool,
    /// Multiplicative jitter spread in `[0, 1)`: each backoff is scaled by
    /// a factor drawn uniformly from `[1, 1 + jitter)`. Kept below 1 so the
    /// jittered schedule stays monotone under doubling.
    pub jitter: f64,
}

impl RetryPolicy {
    /// One attempt, no failover: the pre-retry behavior.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            op_budget: None,
            failover: false,
            jitter: 0.0,
        }
    }

    /// A production-shaped policy: 4 attempts, 100 ms base backoff capped
    /// at 2 s, a 30 s per-op budget, failover enabled.
    pub fn robust() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_secs(2),
            op_budget: Some(SimDuration::from_secs(30)),
            failover: true,
            jitter: 0.5,
        }
    }

    /// Whether the policy changes nothing relative to [`RetryPolicy::none`]
    /// (lets the hot path skip all retry bookkeeping).
    pub fn is_trivial(&self) -> bool {
        self.max_attempts <= 1 && !self.failover
    }

    /// Whether `err` is worth retrying: transient tier conditions are,
    /// logical errors (missing object, bad config) are not.
    pub fn retryable(err: &TieraError) -> bool {
        matches!(
            err,
            TieraError::Timeout { .. } | TieraError::TierFull { .. }
        )
    }

    /// Backoff before retry number `retry` (0-based), jittered from `rng`.
    ///
    /// The schedule is monotone non-decreasing, bounded by `max_backoff`,
    /// and a pure function of the RNG stream (deterministic per seed): the
    /// pre-cap sequence `base · 2^retry · f` with `f ∈ [1, 1+jitter)` and
    /// `jitter < 1` grows strictly between steps, and the cap clamp
    /// preserves monotonicity.
    pub fn backoff(&self, retry: u32, rng: &mut SimRng) -> SimDuration {
        let spread = self.jitter.clamp(0.0, 0.999_999);
        let factor = 1.0 + spread * rng.next_f64();
        let doubled = self
            .base_backoff
            .as_nanos()
            .saturating_mul(1u64.checked_shl(retry).unwrap_or(u64::MAX));
        let jittered = SimDuration::from_nanos(doubled).mul_f64(factor);
        jittered.min(self.max_backoff)
    }

    /// The full backoff schedule for one operation (`max_attempts - 1`
    /// entries), drawn from `rng` in retry order.
    pub fn schedule(&self, rng: &mut SimRng) -> Vec<SimDuration> {
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| self.backoff(i, rng))
            .collect()
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// A degradation event: an operation exhausted its retries against a tier
/// and the instance compensated (or gave up). This is the paper's
/// FAILURE_ALERT surfaced as data — [`crate::monitor::FailureMonitor`] can
/// consume these in addition to its canary probes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureAlert {
    /// Virtual time of the alert.
    pub at: SimTime,
    /// The tier that failed the operation.
    pub tier: String,
    /// The operation that failed (`"put"`, `"get"`, `"background"`).
    pub op: &'static str,
    /// Where the operation was redirected, if failover succeeded.
    pub failover_to: Option<String>,
    /// Human-readable failure detail.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_trivial() {
        assert!(RetryPolicy::default().is_trivial());
        assert!(RetryPolicy::none().is_trivial());
        assert!(!RetryPolicy::robust().is_trivial());
    }

    #[test]
    fn schedule_length_matches_attempts() {
        let mut rng = SimRng::new(1);
        assert!(RetryPolicy::none().schedule(&mut rng).is_empty());
        assert_eq!(RetryPolicy::robust().schedule(&mut rng).len(), 3);
    }

    #[test]
    fn retryable_classification() {
        assert!(RetryPolicy::retryable(&TieraError::Timeout {
            tier: "t".into(),
            waited: SimDuration::from_secs(1),
        }));
        assert!(RetryPolicy::retryable(&TieraError::TierFull {
            tier: "t".into(),
            needed: 1,
            available: 0,
        }));
        assert!(!RetryPolicy::retryable(&TieraError::NoSuchObject("k".into())));
        assert!(!RetryPolicy::retryable(&TieraError::NoSuchTier("t".into())));
    }

    #[test]
    fn huge_retry_index_saturates_at_cap() {
        let policy = RetryPolicy::robust();
        let mut rng = SimRng::new(2);
        assert_eq!(policy.backoff(63, &mut rng), policy.max_backoff);
        assert_eq!(policy.backoff(200, &mut rng), policy.max_backoff);
    }
}
