//! Error types for the Tiera middleware.

use tiera_sim::SimDuration;

/// Result alias using [`TieraError`].
pub type Result<T> = std::result::Result<T, TieraError>;

/// Errors surfaced by Tiera instances and tiers.
#[derive(Debug)]
pub enum TieraError {
    /// The requested object does not exist in the instance.
    NoSuchObject(String),
    /// The named tier is not part of the instance.
    NoSuchTier(String),
    /// A tier rejected a write because it is out of capacity and no policy
    /// made room.
    TierFull {
        /// Tier that rejected the write.
        tier: String,
        /// Bytes the write needed.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// A storage operation timed out (e.g. a simulated outage, paper Fig 17).
    Timeout {
        /// Tier that timed out.
        tier: String,
        /// How long the client waited before giving up.
        waited: SimDuration,
    },
    /// The object's payload could not be decoded (decompression/decryption).
    Codec(String),
    /// The instance specification or reconfiguration request is invalid.
    InvalidConfig(String),
    /// Metadata persistence failed.
    Metadata(String),
    /// The object exists but none of its recorded locations is attached.
    LocationsUnavailable(String),
}

impl std::fmt::Display for TieraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TieraError::NoSuchObject(k) => write!(f, "no such object: {k}"),
            TieraError::NoSuchTier(t) => write!(f, "no such tier: {t}"),
            TieraError::TierFull {
                tier,
                needed,
                available,
            } => write!(
                f,
                "tier {tier} full: need {needed} bytes, {available} available"
            ),
            TieraError::Timeout { tier, waited } => {
                write!(f, "operation on tier {tier} timed out after {waited}")
            }
            TieraError::Codec(msg) => write!(f, "codec error: {msg}"),
            TieraError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TieraError::Metadata(msg) => write!(f, "metadata error: {msg}"),
            TieraError::LocationsUnavailable(k) => {
                write!(f, "object {k} has no reachable location")
            }
        }
    }
}

impl std::error::Error for TieraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TieraError::TierFull {
            tier: "cache".into(),
            needed: 4096,
            available: 100,
        };
        let s = e.to_string();
        assert!(s.contains("cache") && s.contains("4096") && s.contains("100"));

        let e = TieraError::Timeout {
            tier: "ebs".into(),
            waited: SimDuration::from_secs(5),
        };
        assert!(e.to_string().contains("ebs"));
    }
}
