//! Property tests for [`RetryPolicy`] backoff schedules.
//!
//! The contract (see `retry.rs`): for any policy with `jitter < 1`, the
//! schedule is monotone non-decreasing, every entry is bounded by
//! `max_backoff`, and the whole schedule is a pure function of the RNG
//! seed.

use tiera_core::prelude::*;
use tiera_support::prop::gen;
use tiera_support::{prop_check, SimRng};

fn random_policy(rng: &mut SimRng) -> RetryPolicy {
    let base_ns = gen::u64_in(rng, 1..2_000_000_000); // up to 2 s
    let cap_ns = gen::u64_in(rng, base_ns..base_ns.saturating_mul(64).max(base_ns + 1));
    RetryPolicy {
        max_attempts: gen::u64_in(rng, 1..12) as u32,
        base_backoff: SimDuration::from_nanos(base_ns),
        max_backoff: SimDuration::from_nanos(cap_ns),
        op_budget: None,
        failover: false,
        jitter: rng.next_f64() * 0.999, // contract requires jitter < 1
    }
}

#[test]
fn backoff_schedules_are_monotone_and_bounded_by_the_cap() {
    prop_check!(cases = 128, |rng| {
        let policy = random_policy(rng);
        let mut draws = SimRng::new(rng.next_u64());
        let schedule = policy.schedule(&mut draws);
        assert_eq!(schedule.len(), policy.max_attempts.saturating_sub(1) as usize);
        for (i, pair) in schedule.windows(2).enumerate() {
            assert!(
                pair[0] <= pair[1],
                "schedule not monotone at step {i}: {:?} > {:?} (policy {policy:?})",
                pair[0],
                pair[1]
            );
        }
        for (i, d) in schedule.iter().enumerate() {
            assert!(
                *d <= policy.max_backoff,
                "step {i} exceeds cap: {d:?} > {:?}",
                policy.max_backoff
            );
        }
    });
}

#[test]
fn backoff_schedules_are_deterministic_per_seed() {
    prop_check!(cases = 64, |rng| {
        let policy = random_policy(rng);
        let seed = rng.next_u64();
        let a = policy.schedule(&mut SimRng::new(seed));
        let b = policy.schedule(&mut SimRng::new(seed));
        assert_eq!(a, b, "same seed must replay the same schedule");
        // And a different seed perturbs a jittered schedule (when there is
        // any jitter and any entry below the cap to perturb).
        let c = policy.schedule(&mut SimRng::new(seed ^ 0xDEAD_BEEF));
        if policy.jitter > 0.01 && a.iter().any(|d| *d < policy.max_backoff && d.as_nanos() > 1_000)
        {
            // Not a hard guarantee per case (draws can collide), so only
            // sanity-check the shape: lengths always match.
            assert_eq!(a.len(), c.len());
        }
    });
}

#[test]
fn first_backoff_is_at_least_the_base_and_grows_from_it() {
    prop_check!(cases = 96, |rng| {
        let policy = random_policy(rng);
        if policy.max_attempts < 2 {
            return;
        }
        let mut draws = SimRng::new(rng.next_u64());
        let schedule = policy.schedule(&mut draws);
        let floor = policy.base_backoff.min(policy.max_backoff);
        assert!(
            schedule[0] >= floor,
            "first backoff {:?} below base {floor:?}",
            schedule[0]
        );
    });
}

#[test]
fn trivial_policies_have_empty_schedules() {
    prop_check!(cases = 32, |rng| {
        let mut policy = random_policy(rng);
        policy.max_attempts = 1;
        assert!(policy.schedule(&mut SimRng::new(rng.next_u64())).is_empty());
        assert!(RetryPolicy::none().schedule(&mut SimRng::new(0)).is_empty());
    });
}
