//! Concurrency tests for the sharded metadata hot path.
//!
//! The registry's invariant under any operation interleaving: the
//! incrementally-maintained per-tier `TierAggregates` must equal a
//! from-scratch recount of the object map, and every order index must hold
//! exactly the live keys. Checked two ways — a deterministic `prop_check!`
//! sweep over random operation sequences (replays bit-identically from the
//! printed seed), and a genuinely parallel hammer through one `Instance`
//! with a concurrent pump thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tiera_core::prelude::*;
use tiera_core::registry::Registry;
use tiera_sim::SimEnv;
use tiera_support::prop::gen;
use tiera_support::prop_check;

const TIERS: [&str; 3] = ["t1", "t2", "t3"];

/// Random single-registry operation sequences: after every step, the
/// incremental aggregates equal a recount and the per-tier order index
/// agrees with the map.
#[test]
fn prop_aggregates_equal_recount_after_any_interleaving() {
    prop_check!(cases = 48, |rng| {
        let reg = Registry::in_memory();
        let mut live: Vec<String> = Vec::new();
        for step in 0..gen::usize_in(rng, 20..120) {
            let op = gen::usize_in(rng, 0..100);
            let now = SimTime::from_secs(step as u64);
            match op {
                // upsert (fresh or overwriting)
                0..=39 => {
                    let key = format!("k{}", gen::usize_in(rng, 0..40));
                    let mut meta = ObjectMeta::new(gen::u64_in(rng, 1..4096), now);
                    meta.dirty = gen::boolean(rng);
                    for tier in &TIERS {
                        if gen::boolean(rng) {
                            meta.locations.insert((*tier).into());
                        }
                    }
                    reg.upsert(ObjectKey::new(key.clone()), meta);
                    if !live.contains(&key) {
                        live.push(key);
                    }
                }
                // update: flip dirty and/or move between tiers
                40..=64 => {
                    if let Some(key) = pick_live(rng, &live) {
                        reg.update(&ObjectKey::new(key), |m| {
                            m.dirty = !m.dirty;
                            let tier = *gen::pick(rng, &TIERS);
                            if !m.locations.insert(tier.into()) {
                                m.locations.remove(tier);
                            }
                        });
                    }
                }
                // touch
                65..=79 => {
                    if let Some(key) = pick_live(rng, &live) {
                        reg.touch(&ObjectKey::new(key), now);
                    }
                }
                // remove
                _ => {
                    if let Some(key) = pick_live(rng, &live) {
                        reg.remove(&ObjectKey::new(key.clone()));
                        live.retain(|k| k != &key);
                    }
                }
            }
        }
        for tier in &TIERS {
            assert_eq!(
                reg.aggregates(tier),
                reg.recount_aggregates(tier),
                "tier {tier} aggregates drifted from recount"
            );
            assert_eq!(
                reg.keys_in(tier).len() as u64,
                reg.recount_aggregates(tier).objects,
                "tier {tier} order index disagrees with map"
            );
        }
    });
}

fn pick_live(rng: &mut tiera_support::SimRng, live: &[String]) -> Option<String> {
    if live.is_empty() {
        None
    } else {
        Some(gen::pick(rng, live).clone())
    }
}

/// Parallel hammer: four mutator threads doing put/get/delete through one
/// shared `Instance` while a fifth thread pumps background work, all
/// racing on the sharded registry, striped stats, and heap queue. The
/// instance has a write-back timer so pumps actually execute responses.
#[test]
fn hammer_instance_with_concurrent_pump() {
    let env = SimEnv::new(99);
    let inst = InstanceBuilder::new("hammer", env.clone())
        .tier(MemTier::with_capacity("t1", 64 << 20))
        .tier(MemTier::with_traits(
            "t2",
            64 << 20,
            TierTraits {
                durable: true,
                availability_zone: "zone-a".into(),
                class: tiera_sim::StorageClass::BlockStore,
            },
        ))
        .rule(
            Rule::on(EventKind::timer(SimDuration::from_secs(1)))
                .respond(ResponseSpec::copy(Selector::Dirty, ["t2"])),
        )
        .build()
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let pumper = {
        let inst = Arc::clone(&inst);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut tick = 0u64;
            while !stop.load(Ordering::Relaxed) {
                tick += 1;
                inst.pump(SimTime::from_secs(tick)).unwrap();
                // Keep the pump thread from starving the mutators on
                // small machines; contention, not throughput, is the test.
                std::thread::yield_now();
            }
        })
    };

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let inst = Arc::clone(&inst);
            std::thread::spawn(move || {
                for i in 0..300u64 {
                    let key = format!("h{t}-{}", i % 40);
                    let now = SimTime::from_secs(i);
                    inst.put(&key, format!("v{t}-{i}").as_bytes(), now).unwrap();
                    let (data, _) = inst.get(&key, now).unwrap();
                    assert_eq!(data.as_ref(), format!("v{t}-{i}").as_bytes());
                    if i % 7 == 0 {
                        inst.delete(&key, now).unwrap();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    pumper.join().unwrap();
    // One final pump drains whatever the mutators queued last.
    inst.pump(SimTime::from_secs(100_000)).unwrap();

    let reg = inst.registry();
    for tier in ["t1", "t2"] {
        assert_eq!(
            reg.aggregates(tier),
            reg.recount_aggregates(tier),
            "tier {tier} aggregates drifted under parallel load"
        );
    }
    // Every key the hammer left behind is readable and correctly indexed.
    let now = SimTime::from_secs(100_001);
    for key in reg.select(&Selector::All, None, now) {
        let meta = reg.get(&key).expect("indexed key exists");
        assert!(!meta.locations.is_empty(), "{key:?} has no location");
        inst.get(key.as_str(), now).unwrap();
    }
}
