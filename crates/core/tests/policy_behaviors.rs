//! Behavioral tests of policy composition — the paper's §2.3 claim that "a
//! rich array of data management policies can be easily constructed" from
//! the event/response building blocks.

use std::sync::Arc;

use tiera_support::Bytes;
use tiera_core::event::{ActionOp, EventKind, Metric, Relation};
use tiera_core::prelude::*;
use tiera_core::response::Guard;
use tiera_core::tier::TierTraits;
use tiera_sim::{SimEnv, StorageClass};

const T0: SimTime = SimTime::ZERO;

fn durable(name: &str, cap: u64) -> Arc<MemTier> {
    MemTier::with_traits(
        name,
        cap,
        TierTraits {
            durable: true,
            availability_zone: "zone-a".into(),
            class: StorageClass::BlockStore,
        },
    )
}

/// Paper §2.1: a `tmp` tag routes an object class to inexpensive volatile
/// storage while everything else is persisted.
#[test]
fn tmp_tag_routes_object_class_to_volatile_tier() {
    let inst = InstanceBuilder::new("tags", SimEnv::new(1))
        .tier(MemTier::with_capacity("scratch", 1 << 20))
        .tier(durable("persist", 1 << 20))
        .rule(
            Rule::on(EventKind::action(ActionOp::Put))
                .respond(ResponseSpec::store(Selector::Inserted, ["scratch"])),
        )
        .rule(
            // Periodically persist everything that is *not* scratch data.
            Rule::on(EventKind::timer(SimDuration::from_secs(5))).respond(ResponseSpec::copy(
                Selector::InTier("scratch".into()).and(Selector::Dirty),
                ["persist"],
            )),
        )
        .rule(
            // And purge the tmp class wholesale.
            Rule::on(EventKind::timer(SimDuration::from_secs(60))).respond(
                ResponseSpec::Delete {
                    what: Selector::Tagged(Tag::new("tmp")),
                    from: None,
                },
            ),
        )
        .build()
        .unwrap();
    inst.put_with(
        "cache-entry",
        &b"ephemeral"[..],
        tiera_core::instance::PutOptions {
            tags: vec![Tag::new("tmp")],
        },
        T0,
    )
    .unwrap();
    inst.put("real-data", &b"important"[..], T0).unwrap();

    // The write-back copy is paced background work: pump once to fire the
    // timer and once more to drain the paced continuation.
    inst.pump(SimTime::from_secs(5)).unwrap();
    inst.pump(SimTime::from_secs(6)).unwrap();
    // Both were persisted by the write-back (the tag doesn't exempt them
    // from the generic rule)...
    assert!(inst.registry().get(&"real-data".into()).unwrap().in_tier("persist"));
    // ...but after the purge timer the tmp class is gone entirely.
    inst.pump(SimTime::from_secs(60)).unwrap();
    assert!(!inst.contains("cache-entry"));
    assert!(inst.contains("real-data"));
}

/// Hot/cold placement via access frequency (paper §2.3: "access frequency
/// can be used for easy specification of hot and cold objects").
#[test]
fn cold_objects_demoted_by_frequency_policy() {
    let inst = InstanceBuilder::new("hotcold", SimEnv::new(2))
        .tier(MemTier::with_capacity("fast", 1 << 20))
        .tier(durable("cold-store", 1 << 20))
        .rule(
            Rule::on(EventKind::timer(SimDuration::from_secs(100))).respond(
                ResponseSpec::Move {
                    what: Selector::ColderThan(0.05).and(Selector::InTier("fast".into())),
                    to: vec!["cold-store".into()],
                    bandwidth: None,
                },
            ),
        )
        .build()
        .unwrap();
    inst.put("hot", &b"h"[..], T0).unwrap();
    inst.put("cold", &b"c"[..], T0).unwrap();
    // Touch "hot" a lot across the window; leave "cold" alone.
    for i in 1..50 {
        let _ = inst.get("hot", SimTime::from_secs(i * 2)).unwrap();
    }
    inst.pump(SimTime::from_secs(100)).unwrap();
    let hot = inst.registry().get(&"hot".into()).unwrap();
    let cold = inst.registry().get(&"cold".into()).unwrap();
    assert!(hot.in_tier("fast"), "{hot:?}");
    assert!(cold.in_tier("cold-store") && !cold.in_tier("fast"), "{cold:?}");
}

/// Background action events defer their responses to the response pool
/// (paper §3: "If a slow response needs to be associated with an action
/// event then it should be specified as a background event").
#[test]
fn background_action_event_defers_work() {
    let inst = InstanceBuilder::new("bg-action", SimEnv::new(3))
        .tier(MemTier::with_capacity("t1", 1 << 20))
        .tier(durable("t2", 1 << 20))
        .rule(
            Rule::on(EventKind::action(ActionOp::Put).background())
                .respond(ResponseSpec::copy(Selector::Inserted, ["t2"])),
        )
        .build()
        .unwrap();
    let receipt = inst.put("k", &b"v"[..], T0).unwrap();
    // The background copy charged nothing to the client...
    assert!(inst.background_depth() > 0);
    let meta = inst.registry().get(&"k".into()).unwrap();
    assert!(!meta.in_tier("t2"));
    // ...and runs on the next pump.
    inst.pump(T0 + receipt.latency).unwrap();
    let meta = inst.registry().get(&"k".into()).unwrap();
    assert!(meta.in_tier("t2"));
}

/// AtMost thresholds: shrink an over-provisioned tier when usage drops.
#[test]
fn at_most_threshold_shrinks_idle_tier() {
    let inst = InstanceBuilder::new("shrink", SimEnv::new(4))
        .tier(MemTier::with_capacity("t1", 1000))
        .rule(
            Rule::on(EventKind::Threshold {
                metric: Metric::TierFillFraction("t1".into()),
                relation: Relation::AtMost,
                value: 0.10,
                background: false,
            })
            .respond(ResponseSpec::Shrink {
                tier: "t1".into(),
                percent: 50.0,
            }),
        )
        .build()
        .unwrap();
    // Fill to 50% (above the 10% floor) — the rule arms but must not fire
    // while usage is high... then delete everything and watch it fire.
    inst.put("a", Bytes::from(vec![0u8; 500]), T0).unwrap();
    assert_eq!(inst.tier("t1").unwrap().capacity(T0), 1000);
    inst.delete("a", T0).unwrap();
    assert_eq!(
        inst.tier("t1").unwrap().capacity(T0),
        500,
        "shrink fired when usage fell to 0%"
    );
}

/// Runtime rule replacement mid-stream redirects placement without
/// restarting the instance (paper §4.2.3).
#[test]
fn rule_replace_redirects_placement_between_puts() {
    let inst = InstanceBuilder::new("swap", SimEnv::new(5))
        .tier(MemTier::with_capacity("a", 1 << 20))
        .tier(MemTier::with_capacity("b", 1 << 20))
        .build()
        .unwrap();
    let id = inst.policy().add(
        Rule::on(EventKind::action(ActionOp::Put))
            .respond(ResponseSpec::store(Selector::Inserted, ["a"])),
    );
    inst.put("one", &b"1"[..], T0).unwrap();
    assert!(inst.registry().get(&"one".into()).unwrap().in_tier("a"));

    assert!(inst.policy().replace(
        id,
        Rule::on(EventKind::action(ActionOp::Put))
            .respond(ResponseSpec::store(Selector::Inserted, ["b"])),
    ));
    inst.put("two", &b"2"[..], T0).unwrap();
    let two = inst.registry().get(&"two".into()).unwrap();
    assert!(two.in_tier("b") && !two.in_tier("a"));
}

/// A three-tier eviction chain: memcached → block → object store, all via
/// the Figure 5 idiom (the Table 2 instances' shape).
#[test]
fn three_tier_eviction_chain() {
    let inst = InstanceBuilder::new("chain", SimEnv::new(6))
        .tier(MemTier::with_capacity("l1", 8))
        .tier(durable("l2", 8))
        .tier(durable("l3", 1 << 20))
        .rule(
            Rule::on(EventKind::action(ActionOp::Put))
                .respond(ResponseSpec::evict_lru("l2", "l3"))
                .respond(ResponseSpec::evict_lru("l1", "l2"))
                .respond(ResponseSpec::store(Selector::Inserted, ["l1"])),
        )
        .build()
        .unwrap();
    for (i, key) in ["w", "x", "y", "z"].iter().enumerate() {
        inst.put(*key, Bytes::from(vec![i as u8; 4]), SimTime::from_secs(i as u64))
            .unwrap();
    }
    // With 4 × 4-byte objects over 8-byte l1/l2: w and x get evicted from
    // l1 into l2 (which just fits them); the newest two stay in l1.
    let locs = |k: &str| {
        inst.registry()
            .get(&k.into())
            .unwrap()
            .locations
            .iter()
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(locs("z"), vec!["l1"]);
    assert_eq!(locs("y"), vec!["l1"]);
    assert_eq!(locs("x"), vec!["l2"]);
    assert_eq!(locs("w"), vec!["l2"]);
    // Every object is still readable through the chain.
    for key in ["w", "x", "y", "z"] {
        let (data, _) = inst.get(key, SimTime::from_secs(10)).unwrap();
        assert_eq!(data.len(), 4, "{key}");
    }
}

/// Encrypt-cold-data-by-timer: compression + encryption compose with
/// selectors (the paper's "expose storage primitives ... for applications
/// to use").
#[test]
fn timer_encrypts_tagged_class() {
    let inst = InstanceBuilder::new("enc", SimEnv::new(7))
        .tier(MemTier::with_capacity("t1", 1 << 20))
        .rule(
            Rule::on(EventKind::timer(SimDuration::from_secs(10))).respond(
                ResponseSpec::Encrypt {
                    what: Selector::Tagged(Tag::new("sensitive")),
                    key_id: "vault".into(),
                },
            ),
        )
        .build()
        .unwrap();
    inst.add_key("vault", [3u8; 32]);
    inst.put_with(
        "secret",
        &b"classified"[..],
        tiera_core::instance::PutOptions {
            tags: vec![Tag::new("sensitive")],
        },
        T0,
    )
    .unwrap();
    inst.put("public", &b"open"[..], T0).unwrap();
    inst.pump(SimTime::from_secs(10)).unwrap();

    assert!(inst.registry().get(&"secret".into()).unwrap().encrypted);
    assert!(!inst.registry().get(&"public".into()).unwrap().encrypted);
    // Transparent decryption on GET.
    let (data, _) = inst.get("secret", SimTime::from_secs(11)).unwrap();
    assert_eq!(&data[..], b"classified");
}

/// storeOnce + overwrite: replacing a dedup'd object's content releases the
/// old digest reference and acquires the new one.
#[test]
fn store_once_overwrite_switches_digest() {
    let inst = InstanceBuilder::new("dd-over", SimEnv::new(8))
        .tier(MemTier::with_capacity("t", 1 << 20))
        .rule(
            Rule::on(EventKind::action(ActionOp::Put))
                .respond(ResponseSpec::store_once(Selector::Inserted, ["t"])),
        )
        .build()
        .unwrap();
    inst.put("a", &b"content-1"[..], T0).unwrap();
    inst.put("b", &b"content-1"[..], T0).unwrap();
    let puts_before = inst.tier("t").unwrap().request_counts().puts;
    assert_eq!(puts_before, 1, "deduped");
    // Overwrite "a" with new content: new physical object appears, the old
    // one survives because "b" still references it.
    inst.put("a", &b"content-2"[..], SimTime::from_secs(1)).unwrap();
    let (data_a, _) = inst.get("a", SimTime::from_secs(2)).unwrap();
    let (data_b, _) = inst.get("b", SimTime::from_secs(2)).unwrap();
    assert_eq!(&data_a[..], b"content-2");
    assert_eq!(&data_b[..], b"content-1");
    // Deleting "b" (the last content-1 reference) frees its bytes.
    inst.delete("b", SimTime::from_secs(3)).unwrap();
    let used = inst.tier("t").unwrap().used();
    assert_eq!(used, b"content-2".len() as u64);
}

/// Delete action events fire policies (e.g. audit trails / tombstones).
#[test]
fn delete_action_event_fires() {
    let inst = InstanceBuilder::new("del-event", SimEnv::new(9))
        .tier(MemTier::with_capacity("t1", 1 << 20))
        .rule(
            Rule::on(EventKind::action(ActionOp::Delete))
                .respond(ResponseSpec::Grow {
                    tier: "t1".into(),
                    percent: 1.0,
                })
                .labeled("audit: grow a little on every delete"),
        )
        .build()
        .unwrap();
    let before = inst.tier("t1").unwrap().capacity(T0);
    inst.put("x", &b"v"[..], T0).unwrap();
    inst.delete("x", T0).unwrap();
    assert!(inst.tier("t1").unwrap().capacity(T0) > before);
}

/// Guards compose: a not-filled guard keeps a conditional store from
/// overflowing (the Figure 16 overflow-placement pattern).
#[test]
fn guarded_overflow_placement() {
    let inst = InstanceBuilder::new("guard", SimEnv::new(10))
        .tier(MemTier::with_capacity("small", 8))
        .tier(durable("big", 1 << 20))
        .rule(
            Rule::on(EventKind::action(ActionOp::Put))
                .respond(ResponseSpec::If {
                    guard: Guard::tier_filled("small"),
                    then: vec![ResponseSpec::store(Selector::Inserted, ["big"])],
                })
                .respond(ResponseSpec::If {
                    guard: Guard::tier_filled("small").not(),
                    then: vec![ResponseSpec::store(Selector::Inserted, ["small"])],
                }),
        )
        .build()
        .unwrap();
    inst.put("fits-1", Bytes::from(vec![1u8; 4]), T0).unwrap();
    inst.put("fits-2", Bytes::from(vec![2u8; 4]), T0).unwrap();
    inst.put("overflow", Bytes::from(vec![3u8; 4]), T0).unwrap();
    assert!(inst.registry().get(&"fits-1".into()).unwrap().in_tier("small"));
    assert!(inst.registry().get(&"fits-2".into()).unwrap().in_tier("small"));
    let over = inst.registry().get(&"overflow".into()).unwrap();
    assert!(over.in_tier("big") && !over.in_tier("small"));
}

/// Object-attribute threshold: auto-promote an object to the fast tier
/// once its access count crosses a bound (paper §2.2: thresholds "can be
/// based on attributes of data objects").
#[test]
fn object_access_threshold_promotes_hot_object() {
    let inst = InstanceBuilder::new("hot-promote", SimEnv::new(11))
        .tier(durable("slow", 1 << 20))
        .tier(MemTier::with_capacity("fast", 1 << 20))
        .rule(
            Rule::on(EventKind::threshold_at_least(
                Metric::ObjectAccessCount("popular".into()),
                5.0,
            ))
            .respond(ResponseSpec::copy(
                Selector::Key("popular".into()),
                ["fast"],
            )),
        )
        .build()
        .unwrap();
    inst.put("popular", &b"v"[..], T0).unwrap();
    inst.put("quiet", &b"v"[..], T0).unwrap();
    for i in 0..3 {
        let _ = inst.get("popular", SimTime::from_secs(i + 1)).unwrap();
    }
    assert!(
        !inst.registry().get(&"popular".into()).unwrap().in_tier("fast"),
        "below the bound: not yet promoted"
    );
    let _ = inst.get("popular", SimTime::from_secs(5)).unwrap(); // 5th access
    let meta = inst.registry().get(&"popular".into()).unwrap();
    assert!(meta.in_tier("fast"), "{meta:?}");
    assert!(!inst.registry().get(&"quiet".into()).unwrap().in_tier("fast"));
}
