//! Integration tests for the retry/failover/alert path through a real
//! `Instance`, using a scripted flaky tier (no simulation crates needed).

use std::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use tiera_core::monitor::{FailureMonitor, ProbeOutcome};
use tiera_core::prelude::*;
use tiera_core::tier::RequestCounts;
use tiera_sim::SimEnv;
use tiera_support::Bytes;

/// A tier that fails its next `fail_puts` PUTs (or everything while
/// `down`), then behaves like a `MemTier`.
struct FlakyTier {
    name: String,
    durable: bool,
    inner: Arc<MemTier>,
    fail_puts: AtomicU32,
    down: AtomicBool,
    put_attempts: AtomicU32,
}

impl FlakyTier {
    fn new(name: &str, capacity: u64, durable: bool) -> Arc<Self> {
        let mut traits_ = TierTraits::default();
        traits_.durable = durable;
        Arc::new(Self {
            name: name.to_string(),
            durable,
            inner: MemTier::with_traits(format!("{name}-inner"), capacity, traits_),
            fail_puts: AtomicU32::new(0),
            down: AtomicBool::new(false),
            put_attempts: AtomicU32::new(0),
        })
    }

    fn fail_next_puts(&self, n: u32) {
        self.fail_puts.store(n, Ordering::SeqCst);
    }

    fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    fn attempts(&self) -> u32 {
        self.put_attempts.load(Ordering::SeqCst)
    }

    fn timeout(&self) -> TieraError {
        TieraError::Timeout {
            tier: self.name.clone(),
            waited: SimDuration::from_millis(100),
        }
    }
}

impl Tier for FlakyTier {
    fn name(&self) -> &str {
        &self.name
    }
    fn tier_traits(&self) -> TierTraits {
        let mut t = self.inner.tier_traits();
        t.durable = self.durable;
        t
    }
    fn capacity(&self, now: SimTime) -> u64 {
        self.inner.capacity(now)
    }
    fn used(&self) -> u64 {
        self.inner.used()
    }
    fn put(&self, key: &ObjectKey, data: Bytes, now: SimTime) -> tiera_core::Result<OpReceipt> {
        self.put_attempts.fetch_add(1, Ordering::SeqCst);
        if self.down.load(Ordering::SeqCst) {
            return Err(self.timeout());
        }
        if self
            .fail_puts
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(self.timeout());
        }
        self.inner.put(key, data, now)
    }
    fn get(&self, key: &ObjectKey, now: SimTime) -> tiera_core::Result<(Bytes, OpReceipt)> {
        if self.down.load(Ordering::SeqCst) {
            return Err(self.timeout());
        }
        self.inner.get(key, now)
    }
    fn delete(&self, key: &ObjectKey, now: SimTime) -> tiera_core::Result<OpReceipt> {
        self.inner.delete(key, now)
    }
    fn contains(&self, key: &ObjectKey) -> bool {
        self.inner.contains(key)
    }
    fn grow(&self, percent: f64, now: SimTime) -> SimTime {
        self.inner.grow(percent, now)
    }
    fn shrink(&self, percent: f64, now: SimTime) {
        self.inner.shrink(percent, now)
    }
    fn request_counts(&self) -> RequestCounts {
        self.inner.request_counts()
    }
}

fn instance_with(flaky: Arc<FlakyTier>, fallback: Arc<FlakyTier>) -> Arc<Instance> {
    InstanceBuilder::new("retry-it", SimEnv::new(11))
        .tier(flaky)
        .tier(fallback)
        .build()
        .unwrap()
}

const T0: SimTime = SimTime::ZERO;

#[test]
fn transient_put_failure_succeeds_via_retry() {
    let primary = FlakyTier::new("primary", 1 << 20, true);
    let fallback = FlakyTier::new("fallback", 1 << 20, true);
    let inst = instance_with(primary.clone(), fallback.clone());
    inst.set_retry_policy(RetryPolicy::robust());

    primary.fail_next_puts(2); // robust() allows 4 attempts
    let receipt = inst.put("k", &b"value"[..], T0).unwrap();
    assert_eq!(primary.attempts(), 3, "2 failures + 1 success");
    // The client paid for the two timed-out attempts plus backoff.
    assert!(receipt.latency >= SimDuration::from_millis(200));
    assert_eq!(inst.alerts_emitted(), 0, "retry success is not an alert");
    let meta = inst.registry().get(&ObjectKey::new("k")).unwrap();
    assert!(meta.in_tier("primary"));
    assert!(!meta.in_tier("fallback"));
}

#[test]
fn default_policy_does_not_retry() {
    let primary = FlakyTier::new("primary", 1 << 20, true);
    let fallback = FlakyTier::new("fallback", 1 << 20, true);
    let inst = instance_with(primary.clone(), fallback.clone());

    primary.fail_next_puts(1);
    let err = inst.put("k", &b"value"[..], T0).unwrap_err();
    assert!(matches!(err, TieraError::Timeout { .. }));
    assert_eq!(primary.attempts(), 1, "no retries by default");
    assert!(!inst.contains("k"), "failed PUT leaves no phantom metadata");
    assert_eq!(inst.alerts_emitted(), 0);
}

#[test]
fn put_fails_over_to_next_durable_tier_and_emits_alert() {
    let primary = FlakyTier::new("primary", 1 << 20, true);
    // Attach a non-durable tier *before* the durable fallback: failover
    // must still prefer the durable one.
    let volatile = FlakyTier::new("volatile", 1 << 20, false);
    let durable = FlakyTier::new("durable", 1 << 20, true);
    let inst = InstanceBuilder::new("failover-it", SimEnv::new(12))
        .tier(primary.clone())
        .tier(volatile.clone())
        .tier(durable.clone())
        .build()
        .unwrap();
    inst.set_retry_policy(RetryPolicy::robust());

    primary.set_down(true);
    inst.put("k", &b"value"[..], T0).unwrap();

    let meta = inst.registry().get(&ObjectKey::new("k")).unwrap();
    assert!(meta.in_tier("durable"), "failover prefers durable tiers");
    assert!(!meta.in_tier("volatile"));
    assert!(!meta.dirty, "landed durably → not dirty");

    let alerts = inst.drain_alerts();
    assert_eq!(alerts.len(), 1);
    assert_eq!(alerts[0].tier, "primary");
    assert_eq!(alerts[0].op, "put");
    assert_eq!(alerts[0].failover_to.as_deref(), Some("durable"));
    assert!(inst.drain_alerts().is_empty(), "drain empties the queue");
    assert_eq!(inst.alerts_emitted(), 1, "lifetime counter survives drains");

    // Reads come back from the failover location.
    let (data, receipt) = inst.get("k", T0).unwrap();
    assert_eq!(&data[..], b"value");
    assert_eq!(receipt.served_by, "durable");
}

#[test]
fn put_fails_when_no_fallback_accepts() {
    let primary = FlakyTier::new("primary", 1 << 20, true);
    let fallback = FlakyTier::new("fallback", 1 << 20, true);
    let inst = instance_with(primary.clone(), fallback.clone());
    inst.set_retry_policy(RetryPolicy::robust());

    primary.set_down(true);
    fallback.set_down(true);
    let err = inst.put("k", &b"value"[..], T0).unwrap_err();
    assert!(matches!(err, TieraError::Timeout { .. }));
    assert!(!inst.contains("k"));
    let alerts = inst.drain_alerts();
    assert_eq!(alerts.len(), 1);
    assert_eq!(alerts[0].failover_to, None, "total failure alert");
}

#[test]
fn get_falls_back_along_the_tier_chain() {
    let primary = FlakyTier::new("primary", 1 << 20, true);
    let fallback = FlakyTier::new("fallback", 1 << 20, true);
    let inst = instance_with(primary.clone(), fallback.clone());

    // Place the object in both tiers via an explicit store rule-free path:
    // default placement puts it in primary; copy it to fallback manually.
    inst.put("k", &b"value"[..], T0).unwrap();
    fallback
        .put(&ObjectKey::new("k"), Bytes::from_static(b"value"), T0)
        .unwrap();
    inst.registry()
        .update(&ObjectKey::new("k"), |m| {
            m.locations.insert("fallback".into());
        });

    primary.set_down(true);
    let (data, receipt) = inst.get("k", SimTime::from_secs(1)).unwrap();
    assert_eq!(&data[..], b"value");
    assert_eq!(receipt.served_by, "fallback");
    // The timeout against primary was charged to the client.
    assert!(receipt.latency >= SimDuration::from_millis(100));
}

#[test]
fn monitor_reacts_to_drained_alerts() {
    let primary = FlakyTier::new("primary", 1 << 20, true);
    let fallback = FlakyTier::new("fallback", 1 << 20, true);
    let inst = instance_with(primary.clone(), fallback.clone());
    inst.set_retry_policy(RetryPolicy::robust());

    let mut mon = FailureMonitor::new(
        inst.clone(),
        SimDuration::from_secs(120),
        1,
        |i| {
            let _ = i.detach_tier("primary");
        },
    )
    .observing_alerts();

    // Degraded PUT → FAILURE_ALERT → monitor reconfigures on next tick,
    // well before any canary probe fails (canaries go through failover
    // too, so a canary-only monitor would never fire here).
    primary.set_down(true);
    inst.put("k", &b"value"[..], T0).unwrap();
    assert!(inst.alerts_emitted() >= 1);
    let outcomes = mon.tick(SimTime::from_secs(1));
    assert_eq!(outcomes.first(), Some(&ProbeOutcome::Reconfigured));
    assert!(mon.has_reconfigured());
    assert!(!inst.tier_names().iter().any(|t| t == "primary"));
}

#[test]
fn pump_survives_failing_background_work_and_requeues_it() {
    let primary = FlakyTier::new("primary", 1 << 20, true);
    let fallback = FlakyTier::new("fallback", 1 << 20, true);
    let inst = instance_with(primary.clone(), fallback.clone());
    // Background write-back to fallback; no retry policy needed — the
    // pump's own requeue logic is under test.
    inst.policy().add(Rule {
        event: EventKind::Action {
            op: ActionOp::Put,
            tier: None,
            background: true,
        },
        responses: vec![ResponseSpec::copy(Selector::Inserted, ["fallback".to_string()])],
        label: None,
    });

    fallback.set_down(true);
    inst.put("k", &b"value"[..], T0).unwrap();
    assert_eq!(inst.background_depth(), 1);

    // The first pump runs the copy rule (which enqueues a paced copy) and
    // the paced copy itself, which fails; it must neither error nor lose
    // the queued work: it requeues with a delay (1 s, so pumping to 500 ms
    // sees exactly the one failed attempt).
    let report = inst.pump(SimTime::from_millis(500)).unwrap();
    assert_eq!(report.background_executed, 2);
    assert_eq!(inst.background_depth(), 1, "failed work requeued, not lost");

    // Tier recovers: the requeued work eventually lands.
    fallback.set_down(false);
    inst.pump(SimTime::from_secs(120)).unwrap();
    assert_eq!(inst.background_depth(), 0);
    assert!(
        inst.registry()
            .get(&ObjectKey::new("k"))
            .unwrap()
            .in_tier("fallback")
    );
}

#[test]
fn pump_drops_poisoned_work_after_attempt_budget_with_alert() {
    let primary = FlakyTier::new("primary", 1 << 20, true);
    let fallback = FlakyTier::new("fallback", 1 << 20, true);
    let inst = instance_with(primary.clone(), fallback.clone());
    inst.policy().add(Rule {
        event: EventKind::Action {
            op: ActionOp::Put,
            tier: None,
            background: true,
        },
        responses: vec![ResponseSpec::copy(Selector::Inserted, ["fallback".to_string()])],
        label: None,
    });

    fallback.set_down(true);
    inst.put("k", &b"value"[..], T0).unwrap();

    // Drive far enough that every exponential requeue (1+2+4+...+60 s) has
    // come due and failed; the work is then dropped with an alert rather
    // than spinning forever.
    inst.pump(SimTime::from_secs(3600)).unwrap();
    assert_eq!(inst.background_depth(), 0, "poisoned work eventually dropped");
    let alerts = inst.drain_alerts();
    assert!(
        alerts.iter().any(|a| a.op == "background" && a.tier == "fallback"),
        "drop surfaced as an alert: {alerts:?}"
    );
}
