//! Deterministic kill-point crash testing for the sharded metastore.
//!
//! The metastore plants [`KillSite`]s at every durability transition
//! (mid-batch, either side of the batch fsync, both halves of a rotation,
//! and the whole snapshot protocol). This harness drives one store
//! per-site through a seeded workload, arms the site, lets it fire,
//! simulates the crash — truncating each shard's active segment to its
//! last-fsynced length per [`MetaStore::crash_image`], exactly what a
//! power cut leaves behind — reopens the directory, and checks the
//! recovery invariant:
//!
//! > **Every acknowledged durable mutation survives reopen, and no
//! > phantom keys appear.**
//!
//! Formally, per shard: the reopened state must equal the acknowledged
//! model extended by some *prefix* of the records the killed operation
//! had attempted (a killed-but-already-fsynced record may legitimately
//! surface — the usual "a failed write may still have happened" storage
//! semantics — but an unsynced one must not, and nothing acknowledged may
//! vanish).
//!
//! Every case is a pure function of `(site, seed)`: the workload, the
//! kill, the truncation, and the report replay byte-identically.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::path::Path;

use tiera_metastore::{KillSite, MetaStore, MetaStoreError, MetaStoreOptions};
use tiera_support::rng::SimRng;

/// Shards used by every crash case (small enough that both see traffic).
const SHARDS: usize = 2;
/// Small segments so rotation sites are reachable within the op budget.
const SEG_BYTES: u64 = 600;

/// One mutation, as the workload model tracks it.
#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
}

impl Op {
    fn key(&self) -> &[u8] {
        match self {
            Op::Put(k, _) | Op::Delete(k) => k,
        }
    }

    fn apply(&self, map: &mut BTreeMap<Vec<u8>, Vec<u8>>) {
        match self {
            Op::Put(k, v) => {
                map.insert(k.clone(), v.clone());
            }
            Op::Delete(k) => {
                map.remove(k);
            }
        }
    }
}

/// Outcome of one crash case — deterministic per `(site, seed)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashCaseReport {
    /// The site that fired ([`KillSite::name`]).
    pub site: &'static str,
    /// Acknowledged mutations before the kill (warmup + kill phase).
    pub acked_ops: usize,
    /// Records the killed operation had attempted (unacknowledged).
    pub attempted_records: usize,
    /// Live keys after reopen.
    pub recovered_keys: usize,
    /// Per shard, how many of the attempted records surfaced on reopen
    /// (always a prefix; indexed by shard).
    pub surfaced_prefix: Vec<usize>,
}

fn gen_key(rng: &mut SimRng) -> Vec<u8> {
    format!("k{:03}", rng.next_below(64)).into_bytes()
}

fn gen_value(rng: &mut SimRng) -> Vec<u8> {
    format!("v{:04}", rng.next_below(10_000)).into_bytes()
}

/// `n` distinct keys that all land on `shard` (deterministic pool, used
/// to build multi-record same-shard batches for the mid-batch site).
fn same_shard_keys(shard: usize, n: usize) -> Vec<Vec<u8>> {
    let mut keys = Vec::new();
    let mut i = 0u64;
    while keys.len() < n {
        let key = format!("batch-{i:04}").into_bytes();
        if MetaStore::shard_of(&key, SHARDS) == shard {
            keys.push(key);
        }
        i += 1;
    }
    keys
}

fn is_killed(err: &MetaStoreError) -> bool {
    matches!(err, MetaStoreError::Killed(_))
}

/// Runs one crash case in `dir` (which must be empty). Returns the report
/// or a description of the violated invariant.
pub fn run_crash_case(
    dir: &Path,
    site: KillSite,
    seed: u64,
) -> Result<CrashCaseReport, String> {
    let mut rng = SimRng::new(seed ^ 0xC4A5_4000);
    let opts = MetaStoreOptions {
        segment_max_bytes: SEG_BYTES,
        compact_garbage_ratio: 1.0, // rotation, never auto-snapshot
        sync_every_append: true,
        group_commit: true,
        shards: SHARDS,
        ..MetaStoreOptions::default()
    };
    let store =
        MetaStore::open_with(dir, opts).map_err(|e| format!("open failed: {e}"))?;

    // Acked mutations per shard, in commit order (single-threaded driver,
    // so issue order is commit order).
    let mut acked: Vec<Vec<Op>> = vec![Vec::new(); SHARDS];
    let mut ack_op = |op: Op| {
        let s = MetaStore::shard_of(op.key(), SHARDS);
        acked[s].push(op);
    };

    // Warmup: seeded puts and deletes, all acknowledged.
    for _ in 0..20 {
        let key = gen_key(&mut rng);
        if rng.chance(0.2) {
            store
                .delete(&key)
                .map_err(|e| format!("warmup delete failed: {e}"))?;
            ack_op(Op::Delete(key));
        } else {
            let value = gen_value(&mut rng);
            store
                .put(&key, &value)
                .map_err(|e| format!("warmup put failed: {e}"))?;
            ack_op(Op::Put(key, value));
        }
    }

    // Kill phase: arm the site, then drive the operation shape that
    // reaches it until it fires. Records the killed op had attempted are
    // tracked per shard — they may surface as a prefix, never beyond.
    store.kill_points().arm(site, 0);
    let mut attempted: Vec<Vec<Op>> = vec![Vec::new(); SHARDS];
    let mut fired = false;
    match site {
        KillSite::BatchMidAppend => {
            // A multi-record single-shard batch; the kill lands between
            // two of its appends.
            let keys = same_shard_keys(0, 4);
            let value = gen_value(&mut rng);
            let items: Vec<(&[u8], &[u8])> =
                keys.iter().map(|k| (k.as_slice(), value.as_slice())).collect();
            match store.put_many(&items) {
                Err(e) if is_killed(&e) => {
                    fired = true;
                    for k in &keys {
                        attempted[0].push(Op::Put(k.clone(), value.clone()));
                    }
                }
                Err(e) => return Err(format!("unexpected error: {e}")),
                Ok(()) => {}
            }
        }
        KillSite::SnapMidWrite
        | KillSite::SnapBeforeSync
        | KillSite::SnapBeforeRename
        | KillSite::SnapAfterRename
        | KillSite::SnapAfterCleanup => {
            // Snapshots mutate nothing: a kill anywhere in the protocol
            // must lose nothing acknowledged.
            match store.compact() {
                Err(e) if is_killed(&e) => fired = true,
                Err(e) => return Err(format!("unexpected error: {e}")),
                Ok(()) => {}
            }
        }
        _ => {
            // Batch-sync and rotation sites: single puts until the site
            // fires (rotation needs enough bytes to cross a segment).
            for _ in 0..400 {
                let key = gen_key(&mut rng);
                let value = gen_value(&mut rng);
                match store.put(&key, &value) {
                    Ok(()) => ack_op(Op::Put(key, value)),
                    Err(e) if is_killed(&e) => {
                        fired = true;
                        let s = MetaStore::shard_of(&key, SHARDS);
                        attempted[s].push(Op::Put(key, value));
                        break;
                    }
                    Err(e) => return Err(format!("unexpected error: {e}")),
                }
            }
        }
    }
    if !fired {
        return Err(format!("kill site {} never fired", site.name()));
    }

    // The crash: forget the process, keep only what the disk had fsynced.
    let image = store.crash_image();
    drop(store);
    for (path, synced) in image {
        // A site that fired mid-rotation may leave the active segment
        // already removed (snapshot cleanup) — nothing to truncate then.
        if path.exists() {
            OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(synced))
                .map_err(|e| format!("truncate {} failed: {e}", path.display()))?;
        }
    }

    // Reopen and check the invariant shard by shard.
    let store = MetaStore::open(dir).map_err(|e| format!("reopen failed: {e}"))?;
    let recovered: BTreeMap<Vec<u8>, Vec<u8>> =
        store.scan_prefix(b"").into_iter().collect();
    let mut shard_maps: Vec<BTreeMap<Vec<u8>, Vec<u8>>> =
        vec![BTreeMap::new(); SHARDS];
    for (k, v) in &recovered {
        shard_maps[MetaStore::shard_of(k, SHARDS)].insert(k.clone(), v.clone());
    }
    let mut surfaced_prefix = vec![0usize; SHARDS];
    for shard in 0..SHARDS {
        let mut model = BTreeMap::new();
        for op in &acked[shard] {
            op.apply(&mut model);
        }
        // Candidate states: acked model extended by each prefix of the
        // attempted records.
        let mut matched = false;
        for cut in 0..=attempted[shard].len() {
            let mut candidate = model.clone();
            for op in &attempted[shard][..cut] {
                op.apply(&mut candidate);
            }
            if shard_maps[shard] == candidate {
                surfaced_prefix[shard] = cut;
                matched = true;
                break;
            }
        }
        if !matched {
            let missing: Vec<String> = model
                .keys()
                .filter(|k| !shard_maps[shard].contains_key(*k))
                .map(|k| String::from_utf8_lossy(k).into_owned())
                .collect();
            let phantom: Vec<String> = shard_maps[shard]
                .keys()
                .filter(|k| !model.contains_key(*k))
                .filter(|k| {
                    !attempted[shard].iter().any(|op| op.key() == k.as_slice())
                })
                .map(|k| String::from_utf8_lossy(k).into_owned())
                .collect();
            return Err(format!(
                "site {} seed {seed} shard {shard}: recovered state is not \
                 acked-model + attempted-prefix (lost acked: {missing:?}; \
                 phantom: {phantom:?})",
                site.name()
            ));
        }
    }

    // The reopened store must be fully operational.
    store
        .put(b"post-crash", b"alive")
        .map_err(|e| format!("post-crash put failed: {e}"))?;
    if store.get(b"post-crash").as_deref() != Some(b"alive".as_slice()) {
        return Err("post-crash put not readable".into());
    }

    Ok(CrashCaseReport {
        site: site.name(),
        acked_ops: acked.iter().map(Vec::len).sum(),
        attempted_records: attempted.iter().map(Vec::len).sum(),
        recovered_keys: recovered.len(),
        surfaced_prefix,
    })
}

/// Runs the whole matrix — every [`KillSite`] once under `seed` — in
/// subdirectories of `base`. Returns per-site results in site order.
pub fn run_crash_matrix(
    base: &Path,
    seed: u64,
) -> Vec<(KillSite, Result<CrashCaseReport, String>)> {
    KillSite::ALL
        .iter()
        .map(|&site| {
            let dir = base.join(format!("site-{}", site.name().replace('.', "-")));
            fs::create_dir_all(&dir).ok();
            let result = run_crash_case(&dir, site, seed);
            fs::remove_dir_all(&dir).ok();
            (site, result)
        })
        .collect()
}
