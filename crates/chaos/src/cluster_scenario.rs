//! Cluster chaos scenarios: routed load through a [`Coordinator`] while
//! a seeded [`NodeFaultSchedule`] kills, partitions, and slows whole
//! nodes — including mid-rebalance — followed by recovery, a
//! survivability probe, and the replication-aware invariant sweep.
//!
//! A run is a pure function of its [`ClusterChaosConfig`]: the same
//! (seed, scenario) replays the identical schedule, op sequence, and
//! event log byte for byte, and `tiera-bench cluster-chaos --seed N`
//! reproduces a failure from the one number its report prints.
//!
//! The invariants, phrased at the level the cluster client observes:
//!
//! 1. **Every W-acked write survives any R−1 node kills** — checked
//!    directly: after recovery the probe kills R−1 members and reads
//!    every acked key back through the coordinator.
//! 2. **No phantom keys after rejoin** — failed brand-new PUTs and
//!    acked DELETEs stay unreadable even though stale replicas held
//!    copies, and rejoined owners of deleted keys are physically purged.
//! 3. **Ring convergence within bounded migration volume** — a
//!    membership change moves at most the keys whose owner set changed
//!    ([`tiera_cluster::Ring::plan_rebalance`] is minimal by
//!    construction and the run asserts `moved_keys ≤ planned`).

use std::sync::Arc;

use tiera_cluster::coordinator::RejoinReport;
use tiera_cluster::{ClusterNode, Coordinator, RebalanceReport};
use tiera_core::prelude::*;
use tiera_sim::SimEnv;
use tiera_support::{Bytes, SimRng};
use tiera_workloads::dist::KeyChooser;
use tiera_workloads::ycsb::{record_key, record_value};

use crate::invariants::{InvariantReport, WriteLedger};
use crate::node_schedule::{NodeFaultAction, NodeFaultDriver, NodeFaultSchedule};

/// The node-fault shape a cluster chaos run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterScenarioKind {
    /// Nodes die (state frozen) and later rejoin stale.
    NodeKill,
    /// Nodes are partitioned away and heal.
    NodePartition,
    /// One node dies almost immediately and rejoins near the end with
    /// maximally stale state; another crawls.
    RejoinStale,
    /// A node joins mid-run (starting a bandwidth-capped rebalance) and
    /// a migration source dies while the run is in flight.
    KillDuringRebalance,
}

impl ClusterScenarioKind {
    /// Stable name used in event logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            ClusterScenarioKind::NodeKill => "node-kill",
            ClusterScenarioKind::NodePartition => "node-partition",
            ClusterScenarioKind::RejoinStale => "rejoin-stale",
            ClusterScenarioKind::KillDuringRebalance => "kill-during-rebalance",
        }
    }

    /// Every scenario kind, in report order.
    pub fn all() -> [ClusterScenarioKind; 4] {
        [
            ClusterScenarioKind::NodeKill,
            ClusterScenarioKind::NodePartition,
            ClusterScenarioKind::RejoinStale,
            ClusterScenarioKind::KillDuringRebalance,
        ]
    }
}

/// Configuration for one cluster chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterChaosConfig {
    /// Seed for the schedule, the op stream, and every node's sim env.
    pub seed: u64,
    /// Node-fault shape.
    pub kind: ClusterScenarioKind,
    /// Cluster size at start.
    pub nodes: usize,
    /// Replica count R.
    pub replicas: usize,
    /// Write quorum W.
    pub write_quorum: usize,
    /// Distinct keys addressed.
    pub records: u64,
    /// Operations issued in the fault phase.
    pub ops: u64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Virtual-time horizon; all node faults clear by 60 % of it.
    pub horizon: SimDuration,
    /// Migration byte budget per op step (the bandwidth cap).
    pub rebalance_budget: u64,
}

impl ClusterChaosConfig {
    /// The full-size configuration for `seed`.
    pub fn new(seed: u64, kind: ClusterScenarioKind) -> Self {
        Self {
            seed,
            kind,
            nodes: 5,
            replicas: 3,
            write_quorum: 2,
            records: 768,
            ops: 3000,
            value_size: 2048,
            horizon: SimDuration::from_secs(600),
            rebalance_budget: 64 * 1024,
        }
    }

    /// A smaller configuration for smoke tests (`tiera-bench
    /// cluster-chaos --quick`).
    pub fn quick(seed: u64, kind: ClusterScenarioKind) -> Self {
        Self {
            seed,
            kind,
            nodes: 4,
            replicas: 3,
            write_quorum: 2,
            records: 192,
            ops: 700,
            value_size: 512,
            horizon: SimDuration::from_secs(240),
            rebalance_budget: 32 * 1024,
        }
    }
}

/// The result of one cluster chaos run.
#[derive(Debug, Clone)]
pub struct ClusterChaosOutcome {
    /// The seed that reproduces this run.
    pub seed: u64,
    /// The node-fault shape that ran.
    pub kind: ClusterScenarioKind,
    /// Write operations issued / acked / failed.
    pub writes: (u64, u64, u64),
    /// Reads that returned data / failed.
    pub reads: (u64, u64),
    /// Deletes acked / failed.
    pub deletes: (u64, u64),
    /// The completed rebalance run, if the scenario triggered one.
    pub rebalance: Option<RebalanceReport>,
    /// Whether every acked key survived the R−1-kill probe.
    pub survivability_ok: bool,
    /// Whether the post-recovery probe fully succeeded.
    pub recovered: bool,
    /// Replication-aware invariant sweep (plus inline violations).
    pub invariants: InvariantReport,
    /// Deterministic event log — byte-identical per (seed, scenario).
    pub event_log: Vec<String>,
}

impl ClusterChaosOutcome {
    /// Whether the run upheld the replicated storage contract.
    pub fn ok(&self) -> bool {
        self.recovered && self.survivability_ok && self.invariants.ok()
    }

    /// A human-readable report embedding the seed and replay command.
    pub fn report(&self) -> String {
        let mut out = format!(
            "cluster-chaos {} seed={} — {}\n  replay: tiera-bench cluster-chaos --seed {}\n",
            self.kind.name(),
            self.seed,
            if self.ok() { "OK" } else { "FAILED" },
            self.seed,
        );
        out.push_str(&format!(
            "  writes: {} issued, {} acked, {} failed; reads: {} ok, {} failed; deletes: {} acked, {} failed\n",
            self.writes.0, self.writes.1, self.writes.2, self.reads.0, self.reads.1,
            self.deletes.0, self.deletes.1,
        ));
        if let Some(r) = &self.rebalance {
            out.push_str(&format!(
                "  rebalance: planned={} moved_keys={} moved_bytes={} deferred={}\n",
                r.planned, r.moved_keys, r.moved_bytes, r.deferred
            ));
        }
        out.push_str(&format!(
            "  survivability(R-1 kills)={} recovered={}\n",
            self.survivability_ok, self.recovered
        ));
        for v in &self.invariants.violations {
            out.push_str(&format!("  VIOLATION: {v}\n"));
        }
        for line in &self.event_log {
            out.push_str(&format!("  | {line}\n"));
        }
        out
    }
}

fn build_node(name: &str, seed: u64) -> Arc<ClusterNode> {
    let inst = InstanceBuilder::new(name, SimEnv::new(seed))
        .tier(MemTier::with_traits(
            "store",
            256 << 20,
            TierTraits {
                durable: true,
                ..TierTraits::default()
            },
        ))
        .build()
        .expect("cluster chaos node builds");
    ClusterNode::new(name, inst)
}

fn log_rejoin(event_log: &mut Vec<String>, name: &str, report: &RejoinReport) {
    event_log.push(format!(
        "rejoin node={name}: checked={} repaired={} purged={}",
        report.checked, report.repaired, report.purged
    ));
}

/// Runs one cluster chaos scenario to completion.
pub fn run_cluster(cfg: &ClusterChaosConfig) -> ClusterChaosOutcome {
    let replicas = cfg.replicas.min(cfg.nodes).max(1);
    let write_quorum = cfg.write_quorum.min(replicas).max(1);
    let coord = Coordinator::new(replicas, write_quorum);
    let mut nodes: Vec<Arc<ClusterNode>> = Vec::new();
    for i in 0..cfg.nodes {
        let node = build_node(
            &format!("node-{i}"),
            cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64),
        );
        coord.add_node(Arc::clone(&node)).expect("distinct node names");
        nodes.push(node);
    }
    let names: Vec<String> = nodes.iter().map(|n| n.name().to_string()).collect();

    let schedule = match cfg.kind {
        ClusterScenarioKind::NodeKill => NodeFaultSchedule::kills(cfg.seed, &names, cfg.horizon),
        ClusterScenarioKind::NodePartition => {
            NodeFaultSchedule::partitions(cfg.seed, &names, cfg.horizon)
        }
        ClusterScenarioKind::RejoinStale => {
            NodeFaultSchedule::rejoin_stale(cfg.seed, &names, cfg.horizon)
        }
        ClusterScenarioKind::KillDuringRebalance => {
            NodeFaultSchedule::kill_during_window(cfg.seed, &names, cfg.horizon)
        }
    };
    let mut driver = NodeFaultDriver::new(schedule.clone());
    let mut event_log: Vec<String> = schedule
        .describe()
        .lines()
        .map(|l| l.trim_start().to_string())
        .collect();

    let join_at = match cfg.kind {
        ClusterScenarioKind::KillDuringRebalance => {
            Some(SimTime::ZERO + cfg.horizon.mul_f64(0.2))
        }
        _ => None,
    };
    let mut joined = false;
    let mut rebalancing = false;

    let mut ledger = WriteLedger::new();
    let mut inline = InvariantReport::default();
    let chooser = KeyChooser::uniform(cfg.records);
    let mut rng = SimRng::new(cfg.seed ^ 0xc105_7e12_10ad_5eed);
    let mut counts = ClusterChaosOutcome {
        seed: cfg.seed,
        kind: cfg.kind,
        writes: (0, 0, 0),
        reads: (0, 0),
        deletes: (0, 0),
        rebalance: None,
        survivability_ok: true,
        recovered: true,
        invariants: InvariantReport::default(),
        event_log: Vec::new(),
    };

    // Fixed per-op pacing spreads the op stream across ~55 % of the
    // horizon so the schedule's fault windows actually engage.
    let pace = cfg.horizon.mul_f64(0.55 / cfg.ops as f64);
    let mut t = SimTime::ZERO;
    let apply = |action: &NodeFaultAction,
                 nodes: &[Arc<ClusterNode>],
                 coord: &Coordinator,
                 t: SimTime,
                 event_log: &mut Vec<String>| {
        let target = |name: &str| nodes.iter().find(|n| n.name() == name).cloned();
        match action {
            NodeFaultAction::Kill(n) => {
                if let Some(node) = target(n) {
                    node.kill();
                }
            }
            NodeFaultAction::Rejoin(n) => {
                if let Ok(report) = coord.rejoin(n, t) {
                    log_rejoin(event_log, n, &report);
                }
            }
            NodeFaultAction::Partition(n) => {
                if let Some(node) = target(n) {
                    node.set_partitioned(true);
                }
            }
            NodeFaultAction::Heal(n) => {
                if let Some(node) = target(n) {
                    node.set_partitioned(false);
                }
                // A healed node syncs like a rejoiner: it may have missed
                // writes and deletes while isolated.
                if let Ok(report) = coord.rejoin(n, t) {
                    log_rejoin(event_log, n, &report);
                }
            }
            NodeFaultAction::Slow(n, p) => {
                if let Some(node) = target(n) {
                    node.set_slow_penalty(*p);
                }
            }
            NodeFaultAction::Unslow(n) => {
                if let Some(node) = target(n) {
                    node.set_slow_penalty(SimDuration::ZERO);
                }
            }
        }
    };

    for op in 0..cfg.ops {
        t = t + pace;
        for action in driver.actions(t) {
            event_log.push(format!("t={:.3}s {}", t.as_secs_f64(), action.describe()));
            apply(&action, &nodes, &coord, t, &mut event_log);
        }
        if let Some(at) = join_at {
            if !joined && t >= at {
                joined = true;
                let newcomer = build_node("node-new", cfg.seed.wrapping_mul(31).wrapping_add(997));
                nodes.push(Arc::clone(&newcomer));
                let planned = coord.add_node(newcomer).expect("fresh node name");
                rebalancing = planned > 0;
                event_log.push(format!(
                    "t={:.3}s join node=node-new planned_moves={planned}",
                    t.as_secs_f64()
                ));
            }
        }
        if rebalancing {
            let step = coord.rebalance_step(t, cfg.rebalance_budget);
            if step.done {
                rebalancing = false;
                let r = coord.last_rebalance().unwrap_or_default();
                event_log.push(format!(
                    "t={:.3}s rebalance done: planned={} moved_keys={} moved_bytes={} deferred={}",
                    t.as_secs_f64(),
                    r.planned,
                    r.moved_keys,
                    r.moved_bytes,
                    r.deferred
                ));
            }
        }

        let key_idx = chooser.next(&mut rng);
        let key = record_key(key_idx);
        let roll = rng.next_f64();
        if roll < 0.25 {
            match coord.get(&key, t) {
                Ok((data, latency)) => {
                    t = t + latency;
                    counts.reads.0 += 1;
                    if !ledger.verify_read(&key, &data) {
                        inline.violations.push(format!(
                            "mid-run read of key={key} returned bytes outside the acknowledged set"
                        ));
                    }
                }
                Err(_) => counts.reads.1 += 1,
            }
        } else if roll < 0.33 {
            match coord.delete(coord.next_token(), &key, t) {
                Ok(latency) => {
                    t = t + latency;
                    counts.deletes.0 += 1;
                    ledger.record_delete(&key);
                }
                // NoSuchObject: the key was never written (or already
                // deleted). NoQuorum: ambiguous — meta stays live, so the
                // previous acked value must remain readable; the ledger
                // keeps expecting it.
                Err(_) => counts.deletes.1 += 1,
            }
        } else {
            let value = record_value(key_idx ^ op.wrapping_mul(0x9e37_79b9), cfg.value_size);
            counts.writes.0 += 1;
            match coord.put(&key, Bytes::from(value.clone()), t) {
                Ok(latency) => {
                    t = t + latency;
                    counts.writes.1 += 1;
                    ledger.record_ack(&key, &value);
                }
                Err(_) => {
                    counts.writes.2 += 1;
                    ledger.record_failure(&key, &value);
                }
            }
        }
    }
    event_log.push(format!(
        "load-phase done: writes={}/{}/{} reads={}/{} deletes={}/{} t={:.3}s",
        counts.writes.0,
        counts.writes.1,
        counts.writes.2,
        counts.reads.0,
        counts.reads.1,
        counts.deletes.0,
        counts.deletes.1,
        t.as_secs_f64()
    ));

    // ---- quiesce: clear every outstanding fault, finish the rebalance,
    //      and run the anti-entropy sweep over every member.
    let clears = schedule.clears_by();
    if t < clears {
        t = clears;
    }
    t = t + SimDuration::from_secs(1);
    for action in driver.finish() {
        event_log.push(format!("t={:.3}s (sweep) {}", t.as_secs_f64(), action.describe()));
        apply(&action, &nodes, &coord, t, &mut event_log);
    }
    if !coord.rebalance_done() {
        let report = coord.rebalance_all(t, cfg.rebalance_budget);
        event_log.push(format!(
            "rebalance drained: planned={} moved_keys={} moved_bytes={} deferred={}",
            report.planned, report.moved_keys, report.moved_bytes, report.deferred
        ));
    }
    counts.rebalance = coord.last_rebalance();
    if let Some(r) = &counts.rebalance {
        // Ring convergence within bounded migration volume: the plan is
        // minimal, so actual copies can never exceed it.
        if r.moved_keys > r.planned as u64 {
            inline.violations.push(format!(
                "migration volume exceeded the plan: moved {} of {} planned keys",
                r.moved_keys, r.planned
            ));
        }
    }
    for node in &nodes {
        node.set_partitioned(false);
        node.set_slow_penalty(SimDuration::ZERO);
        if let Ok(report) = coord.rejoin(node.name(), t) {
            if report.repaired > 0 || report.purged > 0 {
                log_rejoin(&mut event_log, node.name(), &report);
            }
        }
    }

    // ---- survivability probe: every W-acked write must survive any
    //      R−1 node kills. Kill R−1 seeded-chosen members and read every
    //      acked key through the coordinator.
    let mut probe_rng = SimRng::new(cfg.seed ^ 0x5042_0be5_a17e_d00d);
    let mut member_names = coord.node_names();
    let mut victims = Vec::new();
    for _ in 0..replicas.saturating_sub(1).min(member_names.len().saturating_sub(1)) {
        let i = probe_rng.next_below(member_names.len() as u64) as usize;
        victims.push(member_names.swap_remove(i));
    }
    victims.sort();
    for v in &victims {
        if let Some(node) = nodes.iter().find(|n| n.name() == *v) {
            node.kill();
        }
    }
    event_log.push(format!("survivability probe: killed {victims:?}"));
    let probe = ledger.check_cluster(|key| match coord.get(key, t) {
        Ok((data, _)) => Ok(data.to_vec()),
        Err(e) => Err(e.to_string()),
    });
    if !probe.ok() {
        counts.survivability_ok = false;
        for v in probe.violations {
            inline
                .violations
                .push(format!("under R-1 kills: {v}"));
        }
    }
    for v in &victims {
        if let Some(node) = nodes.iter().find(|n| n.name() == *v) {
            node.revive();
        }
        if let Ok(report) = coord.rejoin(v, t) {
            if report.repaired > 0 || report.purged > 0 {
                log_rejoin(&mut event_log, v, &report);
            }
        }
    }

    // ---- steady-state probe: fresh operations must succeed again.
    for i in 0..20u64 {
        let key = format!("recovery-{i}");
        let value = record_value(1_000_000 + i, cfg.value_size);
        match coord.put(&key, Bytes::from(value.clone()), t) {
            Ok(latency) => {
                t = t + latency;
                ledger.record_ack(&key, &value);
            }
            Err(e) => {
                counts.recovered = false;
                event_log.push(format!("recovery put {key} failed: {e}"));
            }
        }
        match coord.get(&key, t) {
            Ok((data, latency)) => {
                t = t + latency;
                if !ledger.verify_read(&key, &data) {
                    counts.recovered = false;
                    event_log.push(format!("recovery read {key} returned wrong bytes"));
                }
            }
            Err(e) => {
                counts.recovered = false;
                event_log.push(format!("recovery get {key} failed: {e}"));
            }
        }
    }
    event_log.push(format!("recovery probe: recovered={}", counts.recovered));

    // ---- the replication-aware invariant sweep, all nodes healthy.
    let mut invariants = ledger.check_cluster(|key| match coord.get(key, t) {
        Ok((data, _)) => Ok(data.to_vec()),
        Err(e) => Err(e.to_string()),
    });
    // No phantom copies on rejoined owners: a node that owns a deleted
    // key must no longer physically hold it after the sweep.
    let deleted_phantoms = {
        let mut hits = 0usize;
        for node in &nodes {
            for key in ledger_deleted_keys(&ledger) {
                if coord.owner_names(&key).iter().any(|o| o == node.name())
                    && node.instance().contains(key.as_str())
                {
                    invariants.violations.push(format!(
                        "phantom copy: rejoined owner {} still holds deleted key={key}",
                        node.name()
                    ));
                    hits += 1;
                }
            }
        }
        hits
    };
    invariants.merge(inline);
    event_log.push(format!(
        "invariants: {} violation(s); phantom_copies={deleted_phantoms}",
        invariants.violations.len()
    ));

    counts.invariants = invariants;
    counts.event_log = event_log;
    counts
}

/// The ledger's deleted keys (the ledger keeps them private; the runner
/// re-derives the set it needs for the per-node phantom check).
fn ledger_deleted_keys(ledger: &WriteLedger) -> Vec<String> {
    ledger.deleted_snapshot()
}

/// Runs the full scenario × seed matrix; `quick` selects the smoke-test
/// scale.
pub fn run_cluster_matrix(seeds: &[u64], quick: bool) -> Vec<ClusterChaosOutcome> {
    let mut out = Vec::new();
    for kind in ClusterScenarioKind::all() {
        for &seed in seeds {
            let cfg = if quick {
                ClusterChaosConfig::quick(seed, kind)
            } else {
                ClusterChaosConfig::new(seed, kind)
            };
            out.push(run_cluster(&cfg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_differ_in_scale_only() {
        let full = ClusterChaosConfig::new(1, ClusterScenarioKind::NodeKill);
        let quick = ClusterChaosConfig::quick(1, ClusterScenarioKind::NodeKill);
        assert!(quick.ops < full.ops);
        assert!(quick.records < full.records);
        assert_eq!(full.kind, quick.kind);
        assert_eq!(full.seed, quick.seed);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(ClusterScenarioKind::NodeKill.name(), "node-kill");
        assert_eq!(ClusterScenarioKind::NodePartition.name(), "node-partition");
        assert_eq!(ClusterScenarioKind::RejoinStale.name(), "rejoin-stale");
        assert_eq!(
            ClusterScenarioKind::KillDuringRebalance.name(),
            "kill-during-rebalance"
        );
        assert_eq!(ClusterScenarioKind::all().len(), 4);
    }

    #[test]
    fn quick_matrix_upholds_the_replicated_contract() {
        // The acceptance matrix at smoke scale: every (seed, scenario)
        // cell must hold every invariant.
        for outcome in run_cluster_matrix(&[11, 29], true) {
            assert!(
                outcome.ok(),
                "seed={} kind={} failed:\n{}",
                outcome.seed,
                outcome.kind.name(),
                outcome.report()
            );
        }
    }

    #[test]
    fn replay_is_byte_identical_per_seed_and_scenario() {
        for kind in ClusterScenarioKind::all() {
            let cfg = ClusterChaosConfig::quick(42, kind);
            let a = run_cluster(&cfg);
            let b = run_cluster(&cfg);
            assert_eq!(
                a.event_log,
                b.event_log,
                "kind={} replays diverged",
                kind.name()
            );
            assert_eq!(a.writes, b.writes);
            assert_eq!(a.reads, b.reads);
            assert_eq!(a.deletes, b.deletes);
        }
    }

    #[test]
    fn kill_during_rebalance_actually_rebalances() {
        let cfg = ClusterChaosConfig::quick(7, ClusterScenarioKind::KillDuringRebalance);
        let outcome = run_cluster(&cfg);
        assert!(outcome.ok(), "{}", outcome.report());
        let r = outcome.rebalance.expect("the join must trigger a rebalance");
        assert!(r.planned > 0);
        assert!(r.moved_keys <= r.planned as u64, "migration volume bounded");
    }

    #[test]
    fn outcome_report_embeds_seed_and_replay_command() {
        let outcome = run_cluster(&ClusterChaosConfig::quick(
            77,
            ClusterScenarioKind::NodePartition,
        ));
        let report = outcome.report();
        assert!(report.contains("seed=77"), "{report}");
        assert!(report.contains("tiera-bench cluster-chaos --seed 77"), "{report}");
    }
}
