//! The storage-contract invariants a chaos run must uphold.
//!
//! [`WriteLedger`] is the harness-side source of truth: it records what the
//! *client* was told (acked writes with a checksum of the acknowledged
//! bytes, failed brand-new PUTs, ambiguous failed overwrites), and
//! [`WriteLedger::check`] compares the instance against it after the run.
//! Violations come back as strings naming the key and the broken contract
//! clause, ready to embed — together with the fault-schedule seed — in a
//! failure report.

use std::collections::{BTreeMap, BTreeSet};

use tiera_core::prelude::Selector;
use tiera_core::{Instance, ObjectKey};
use tiera_sim::SimTime;

/// FNV-1a checksum of an acknowledged value (collision-resistant enough to
/// catch torn/stale reads; not cryptographic).
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What the client may legitimately observe for one key.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Expectation {
    /// Checksums of values a read may return. One entry after a clean ack;
    /// a failed overwrite adds the attempted value (the failure is
    /// ambiguous: the new bytes may or may not have landed in some tier).
    acceptable: BTreeSet<u64>,
}

/// Client-side record of every write the harness issued.
///
/// Deterministic containers throughout (`BTreeMap`/`BTreeSet`), so
/// violation reports list keys in a stable order run to run.
#[derive(Debug, Default, Clone)]
pub struct WriteLedger {
    acked: BTreeMap<String, Expectation>,
    /// Brand-new PUTs that failed and were never subsequently acked: these
    /// keys must not exist (no phantom metadata).
    failed_new: BTreeSet<String>,
    /// Keys whose DELETE was acknowledged (and that were not re-written
    /// afterwards): these keys must not be readable — a copy surviving on
    /// some stale replica must never surface (no phantom keys after
    /// rejoin).
    deleted: BTreeSet<String>,
}

impl WriteLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a PUT the instance acknowledged.
    pub fn record_ack(&mut self, key: &str, value: &[u8]) {
        self.failed_new.remove(key);
        self.deleted.remove(key);
        let mut acceptable = BTreeSet::new();
        acceptable.insert(checksum(value));
        self.acked
            .insert(key.to_string(), Expectation { acceptable });
    }

    /// Records a DELETE the store acknowledged: the key must not be
    /// readable afterwards (until a later acked PUT resurrects it).
    pub fn record_delete(&mut self, key: &str) {
        self.acked.remove(key);
        self.failed_new.remove(key);
        self.deleted.insert(key.to_string());
    }

    /// Records a PUT the instance failed. If the key was already acked the
    /// failure is an ambiguous overwrite (either value may be visible);
    /// otherwise the key must stay absent.
    pub fn record_failure(&mut self, key: &str, value: &[u8]) {
        if let Some(expect) = self.acked.get_mut(key) {
            expect.acceptable.insert(checksum(value));
        } else {
            self.failed_new.insert(key.to_string());
        }
    }

    /// Whether bytes returned by a read of `key` are consistent with the
    /// ledger: any acknowledged (or ambiguously-attempted) value passes;
    /// keys the ledger never acked pass vacuously.
    pub fn verify_read(&self, key: &str, data: &[u8]) -> bool {
        match self.acked.get(key) {
            Some(expect) => expect.acceptable.contains(&checksum(data)),
            None => true,
        }
    }

    /// Number of distinct acked keys.
    pub fn acked_keys(&self) -> usize {
        self.acked.len()
    }

    /// Number of keys whose only writes failed.
    pub fn failed_new_keys(&self) -> usize {
        self.failed_new.len()
    }

    /// Number of keys whose latest acknowledged op was a DELETE.
    pub fn deleted_keys(&self) -> usize {
        self.deleted.len()
    }

    /// The deleted keys, sorted (for per-replica phantom sweeps).
    pub fn deleted_snapshot(&self) -> Vec<String> {
        self.deleted.iter().cloned().collect()
    }

    /// Checks the ledger against a *replicated* store through a read
    /// closure (`Ok(bytes)` on success, `Err(description)` otherwise —
    /// a "no such object" error counts as not-found).
    ///
    /// This is the replication-aware half of the contract, phrased at
    /// the level a cluster client observes:
    ///
    /// 1. **Every W-acked write survives** — each acked key reads back
    ///    one of its acknowledged values.
    /// 2. **No phantom keys** — failed brand-new PUTs and acked DELETEs
    ///    are unreadable, even if stale replicas still hold copies.
    pub fn check_cluster(
        &self,
        mut read: impl FnMut(&str) -> Result<Vec<u8>, String>,
    ) -> InvariantReport {
        let mut violations = Vec::new();
        for (key, expect) in &self.acked {
            match read(key) {
                Ok(data) => {
                    let got = checksum(&data);
                    if !expect.acceptable.contains(&got) {
                        violations.push(format!(
                            "acked write corrupted: key={key} checksum={got:#x} not among {} acknowledged value(s)",
                            expect.acceptable.len()
                        ));
                    }
                }
                Err(e) => violations.push(format!("acked write lost: key={key}: {e}")),
            }
        }
        for key in &self.failed_new {
            if read(key).is_ok() {
                violations.push(format!("phantom key: failed new PUT key={key} is readable"));
            }
        }
        for key in &self.deleted {
            if read(key).is_ok() {
                violations.push(format!(
                    "phantom key: deleted key={key} is readable again"
                ));
            }
        }
        InvariantReport { violations }
    }

    /// Checks every ledger-backed invariant plus the registry's own
    /// consistency at virtual time `now`.
    ///
    /// `expect_clean` asserts the post-quiesce clauses too: no dirty
    /// objects stranded anywhere (write-back deadlines have all passed)
    /// and no queued background work.
    pub fn check(&self, instance: &Instance, now: SimTime, expect_clean: bool) -> InvariantReport {
        let mut violations = Vec::new();

        // 1. No acknowledged write lost (and no value from outside the
        //    acceptable set surfaced).
        let mut t = now;
        for (key, expect) in &self.acked {
            match instance.get(key.as_str(), t) {
                Ok((data, receipt)) => {
                    t += receipt.latency;
                    let got = checksum(&data);
                    if !expect.acceptable.contains(&got) {
                        violations.push(format!(
                            "acked write corrupted: key={key} checksum={got:#x} not among {} acknowledged value(s)",
                            expect.acceptable.len()
                        ));
                    }
                }
                Err(e) => violations.push(format!("acked write lost: key={key}: {e}")),
            }
        }

        // 2. No phantom metadata for failed brand-new PUTs or acked
        //    DELETEs.
        for key in &self.failed_new {
            if instance.registry().contains(&ObjectKey::new(key.as_str())) {
                violations.push(format!("phantom metadata: failed new PUT key={key} exists"));
            }
        }
        for key in &self.deleted {
            if instance.registry().contains(&ObjectKey::new(key.as_str())) {
                violations.push(format!("phantom metadata: deleted key={key} exists"));
            }
        }

        // 3. Registry aggregates equal a full recount, per tier.
        for tier in instance.tier_names() {
            let fast = instance.registry().aggregates(&tier);
            let slow = instance.registry().recount_aggregates(&tier);
            if fast != slow {
                violations.push(format!(
                    "aggregate drift: tier={tier} incremental={fast:?} recount={slow:?}"
                ));
            }
        }

        if expect_clean {
            // 4. Nothing dirty stranded past its write-back deadline.
            let dirty = instance.registry().select(&Selector::Dirty, None, t);
            if !dirty.is_empty() {
                violations.push(format!(
                    "stranded dirty data after quiesce: {} object(s), first={}",
                    dirty.len(),
                    dirty[0]
                ));
            }
            // ... and the background queue fully drained.
            let depth = instance.background_depth();
            if depth != 0 {
                violations.push(format!(
                    "background queue not drained after quiesce: {depth} item(s)"
                ));
            }
        }

        InvariantReport { violations }
    }
}

/// The outcome of an invariant sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Human-readable contract violations; empty means the run held.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: InvariantReport) {
        self.violations.extend(other.violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tiera_core::prelude::*;
    use tiera_sim::SimEnv;

    fn instance() -> Arc<Instance> {
        // Durable single tier: default placement is a synchronous persist,
        // so a clean run really is clean (nothing left dirty).
        InstanceBuilder::new("inv", SimEnv::new(11))
            .tier(MemTier::with_traits(
                "t1",
                1 << 20,
                TierTraits {
                    durable: true,
                    ..TierTraits::default()
                },
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn checksum_distinguishes_values() {
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_eq!(checksum(b"same"), checksum(b"same"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn clean_run_passes_all_invariants() {
        let inst = instance();
        let mut ledger = WriteLedger::new();
        let mut t = SimTime::ZERO;
        for i in 0..32 {
            let key = format!("k{i}");
            let val = vec![i as u8; 64];
            let r = inst.put(key.as_str(), val.clone(), t).unwrap();
            t += r.latency;
            ledger.record_ack(&key, &val);
        }
        let report = ledger.check(&inst, t, true);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(ledger.acked_keys(), 32);
    }

    #[test]
    fn lost_acked_write_is_reported() {
        let inst = instance();
        let mut ledger = WriteLedger::new();
        inst.put("k", &b"v"[..], SimTime::ZERO).unwrap();
        ledger.record_ack("k", b"v");
        // Sabotage: remove the object behind the ledger's back.
        inst.delete("k", SimTime::from_secs(1)).unwrap();
        let report = ledger.check(&inst, SimTime::from_secs(2), false);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("acked write lost"), "{report:?}");
    }

    #[test]
    fn corrupted_acked_write_is_reported() {
        let inst = instance();
        let mut ledger = WriteLedger::new();
        inst.put("k", &b"honest"[..], SimTime::ZERO).unwrap();
        // Ledger believes a different value was acknowledged.
        ledger.record_ack("k", b"expected");
        let report = ledger.check(&inst, SimTime::from_secs(1), false);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("corrupted"), "{report:?}");
    }

    #[test]
    fn phantom_metadata_is_reported() {
        let inst = instance();
        let mut ledger = WriteLedger::new();
        // The ledger saw a failure for a brand-new key, but the key exists.
        inst.put("ghost", &b"v"[..], SimTime::ZERO).unwrap();
        ledger.record_failure("ghost", b"v");
        let report = ledger.check(&inst, SimTime::from_secs(1), false);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("phantom metadata")),
            "{report:?}"
        );
        assert_eq!(ledger.failed_new_keys(), 1);
    }

    #[test]
    fn failed_overwrite_accepts_either_value() {
        let inst = instance();
        let mut ledger = WriteLedger::new();
        inst.put("k", &b"old"[..], SimTime::ZERO).unwrap();
        ledger.record_ack("k", b"old");
        // A failed overwrite with new bytes: either value is acceptable
        // afterwards. Here the instance still holds "old".
        ledger.record_failure("k", b"new");
        let report = ledger.check(&inst, SimTime::from_secs(1), false);
        assert!(report.ok(), "{:?}", report.violations);
        // And a key whose overwrite failed is not phantom-tracked.
        assert_eq!(ledger.failed_new_keys(), 0);
    }

    #[test]
    fn ack_after_failed_new_clears_phantom_tracking() {
        let inst = instance();
        let mut ledger = WriteLedger::new();
        ledger.record_failure("k", b"v1");
        assert_eq!(ledger.failed_new_keys(), 1);
        inst.put("k", &b"v2"[..], SimTime::ZERO).unwrap();
        ledger.record_ack("k", b"v2");
        assert_eq!(ledger.failed_new_keys(), 0);
        assert!(ledger.check(&inst, SimTime::from_secs(1), false).ok());
    }

    #[test]
    fn deleted_keys_must_stay_unreadable() {
        let inst = instance();
        let mut ledger = WriteLedger::new();
        inst.put("k", &b"v"[..], SimTime::ZERO).unwrap();
        ledger.record_ack("k", b"v");
        inst.delete("k", SimTime::from_secs(1)).unwrap();
        ledger.record_delete("k");
        assert_eq!(ledger.deleted_keys(), 1);
        assert_eq!(ledger.acked_keys(), 0);
        assert!(ledger.check(&inst, SimTime::from_secs(2), false).ok());
        // Resurrect behind the ledger's back: phantom.
        inst.put("k", &b"v"[..], SimTime::from_secs(3)).unwrap();
        let report = ledger.check(&inst, SimTime::from_secs(4), false);
        assert!(
            report.violations.iter().any(|v| v.contains("deleted key=k")),
            "{report:?}"
        );
        // A later acked PUT legitimately resurrects the key.
        ledger.record_ack("k", b"v");
        assert_eq!(ledger.deleted_keys(), 0);
        assert!(ledger.check(&inst, SimTime::from_secs(5), false).ok());
    }

    #[test]
    fn check_cluster_reports_lost_corrupt_and_phantom() {
        let mut ledger = WriteLedger::new();
        ledger.record_ack("good", b"fresh");
        ledger.record_ack("corrupt", b"fresh");
        ledger.record_ack("lost", b"fresh");
        ledger.record_failure("never", b"x");
        ledger.record_delete("gone");
        let report = ledger.check_cluster(|key| match key {
            "good" => Ok(b"fresh".to_vec()),
            "corrupt" => Ok(b"torn!".to_vec()),
            "never" => Ok(b"boo".to_vec()),
            "gone" => Ok(b"zombie".to_vec()),
            _ => Err(format!("no such object: {key}")),
        });
        assert_eq!(report.violations.len(), 4, "{report:?}");
        assert!(report.violations.iter().any(|v| v.contains("corrupted: key=corrupt")));
        assert!(report.violations.iter().any(|v| v.contains("lost: key=lost")));
        assert!(report.violations.iter().any(|v| v.contains("failed new PUT key=never")));
        assert!(report.violations.iter().any(|v| v.contains("deleted key=gone")));
        // The all-clean world passes.
        let clean = ledger.check_cluster(|key| match key {
            "good" | "corrupt" | "lost" => Ok(b"fresh".to_vec()),
            _ => Err("no such object".into()),
        });
        assert!(clean.ok(), "{clean:?}");
    }

    #[test]
    fn stranded_dirty_data_is_reported_only_when_clean_expected() {
        // MemTier writes via a store rule mark nothing dirty by default;
        // force dirtiness through the registry directly.
        let inst = instance();
        inst.put("k", &b"v"[..], SimTime::ZERO).unwrap();
        inst.registry().update(&ObjectKey::new("k"), |m| {
            m.dirty = true;
        });
        let ledger = WriteLedger::new();
        assert!(ledger.check(&inst, SimTime::from_secs(1), false).ok());
        let strict = ledger.check(&inst, SimTime::from_secs(1), true);
        assert!(
            strict.violations.iter().any(|v| v.contains("stranded dirty")),
            "{strict:?}"
        );
    }
}
