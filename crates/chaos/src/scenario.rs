//! Chaos scenarios: YCSB/OLTP-shaped load driven through a seeded fault
//! schedule, followed by quiesce, invariant checking, and a steady-state
//! recovery probe.
//!
//! A scenario is a pure function of its [`ChaosConfig`]: the same config
//! (in particular the same seed) replays the identical fault schedule,
//! op sequence, and event log. A failing run therefore reports exactly one
//! thing to remember — the seed — and `tiera-bench chaos --seed N`
//! reproduces it.

use std::sync::Arc;

use tiera_core::monitor::FailureMonitor;
use tiera_core::prelude::*;
use tiera_sim::SimEnv;
use tiera_tiers::{BlockTier, MemoryTier, ObjectStoreTier};
use tiera_workloads::dist::KeyChooser;
use tiera_workloads::ycsb::{record_key, record_value};

use crate::invariants::{InvariantReport, WriteLedger};
use crate::schedule::FaultSchedule;

/// The workload shape a chaos run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Write-through: every PUT lands synchronously in cache + EBS
    /// (Figure 3's write-through variant; the Figure 17 shape).
    WriteThrough,
    /// Write-back: PUTs land in cache only; a 30 s timer persists dirty
    /// data to EBS (Figure 15's shape).
    WriteBack,
    /// OLTP-style mix: zipfian keys, 50 % reads, write-back persistence.
    OltpMix,
}

impl ScenarioKind {
    /// Stable name used in event logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::WriteThrough => "write-through",
            ScenarioKind::WriteBack => "write-back",
            ScenarioKind::OltpMix => "oltp-mix",
        }
    }

    /// Every scenario kind, in report order.
    pub fn all() -> [ScenarioKind; 3] {
        [
            ScenarioKind::WriteThrough,
            ScenarioKind::WriteBack,
            ScenarioKind::OltpMix,
        ]
    }
}

/// Configuration for one chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the fault schedule, the injectors, and the op stream.
    pub seed: u64,
    /// Workload shape.
    pub kind: ScenarioKind,
    /// Distinct keys addressed.
    pub records: u64,
    /// Operations issued in the fault phase.
    pub ops: u64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Virtual-time horizon the fault schedule is generated against; all
    /// generated faults clear by 60 % of it.
    pub horizon: SimDuration,
}

impl ChaosConfig {
    /// The full-size configuration for `seed`.
    pub fn new(seed: u64, kind: ScenarioKind) -> Self {
        Self {
            seed,
            kind,
            records: 2048,
            ops: 6000,
            value_size: 4096,
            horizon: SimDuration::from_secs(600),
        }
    }

    /// A smaller configuration for smoke tests (`tiera-bench chaos
    /// --quick`).
    pub fn quick(seed: u64, kind: ScenarioKind) -> Self {
        Self {
            seed,
            kind,
            records: 512,
            ops: 1500,
            value_size: 1024,
            horizon: SimDuration::from_secs(240),
        }
    }
}

/// The result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The seed that reproduces this run.
    pub seed: u64,
    /// Workload shape that ran.
    pub kind: ScenarioKind,
    /// Write operations issued.
    pub writes_issued: u64,
    /// Writes the instance acknowledged.
    pub writes_acked: u64,
    /// Writes the instance failed.
    pub writes_failed: u64,
    /// Reads that returned data.
    pub reads_ok: u64,
    /// Reads that failed (including reads of never-written keys).
    pub reads_failed: u64,
    /// FAILURE_ALERT events the instance emitted.
    pub alerts: u64,
    /// Times the failure monitor saw trouble.
    pub monitor_signals: u64,
    /// Whether the steady-state probe after quiesce fully succeeded.
    pub recovered: bool,
    /// Invariant check results (includes inline read-verification
    /// violations).
    pub invariants: InvariantReport,
    /// Deterministic event log: two runs with the same config produce
    /// byte-identical logs (the replay contract).
    pub event_log: Vec<String>,
}

impl ChaosOutcome {
    /// Whether the run upheld the storage contract and recovered.
    pub fn ok(&self) -> bool {
        self.recovered && self.invariants.ok()
    }

    /// A human-readable report; embeds the seed and the replay command.
    pub fn report(&self) -> String {
        let mut out = format!(
            "chaos {} seed={} — {}\n  replay: tiera-bench chaos --seed {}\n",
            self.kind.name(),
            self.seed,
            if self.ok() { "OK" } else { "FAILED" },
            self.seed,
        );
        out.push_str(&format!(
            "  writes: {} issued, {} acked, {} failed; reads: {} ok, {} failed; alerts: {}; recovered: {}\n",
            self.writes_issued,
            self.writes_acked,
            self.writes_failed,
            self.reads_ok,
            self.reads_failed,
            self.alerts,
            self.recovered,
        ));
        for v in &self.invariants.violations {
            out.push_str(&format!("  VIOLATION: {v}\n"));
        }
        for line in &self.event_log {
            out.push_str(&format!("  | {line}\n"));
        }
        out
    }
}

/// Runs one chaos scenario to completion.
pub fn run(cfg: &ChaosConfig) -> ChaosOutcome {
    let env = SimEnv::new(cfg.seed);
    let mem = Arc::new(MemoryTier::same_az("memcached", 64 << 20, &env));
    let ebs = Arc::new(BlockTier::ebs("ebs", 256 << 20, &env));
    let s3 = Arc::new(ObjectStoreTier::s3("s3", 1 << 30, &env));

    let builder = InstanceBuilder::new("chaos", env.clone())
        .tier(Arc::clone(&mem))
        .tier(Arc::clone(&ebs))
        .tier(Arc::clone(&s3));
    let builder = match cfg.kind {
        ScenarioKind::WriteThrough => builder.rule(
            Rule::on(EventKind::action(ActionOp::Put)).respond(ResponseSpec::store(
                Selector::Inserted,
                ["memcached", "ebs"],
            )),
        ),
        ScenarioKind::WriteBack | ScenarioKind::OltpMix => builder
            .rule(
                Rule::on(EventKind::action(ActionOp::Put))
                    .respond(ResponseSpec::store(Selector::Inserted, ["memcached"])),
            )
            .rule(
                Rule::on(EventKind::timer(SimDuration::from_secs(30))).respond(
                    ResponseSpec::copy(
                        Selector::InTier("memcached".into()).and(Selector::Dirty),
                        ["ebs"],
                    ),
                ),
            ),
    };
    let instance = builder.build().expect("chaos instance builds");
    instance.set_retry_policy(RetryPolicy::robust());

    // S3 is deliberately left out of the schedule: it is the failover
    // target of last resort, so every generated schedule is survivable.
    let schedule = FaultSchedule::random(cfg.seed, &["memcached", "ebs"], cfg.horizon);
    let injectors = [("memcached", mem.failures()), ("ebs", ebs.failures())];
    let injector_refs: Vec<(&str, &tiera_sim::FailureInjector)> = injectors
        .iter()
        .map(|(n, i)| (*n, i.as_ref() as &tiera_sim::FailureInjector))
        .collect();
    schedule.apply(&injector_refs);

    let mut event_log: Vec<String> = schedule
        .describe()
        .lines()
        .map(|l| l.trim_start().to_string())
        .collect();

    let mut monitor =
        FailureMonitor::new(Arc::clone(&instance), SimDuration::from_secs(60), u32::MAX, |_| {})
            .observing_alerts();

    let mut ledger = WriteLedger::new();
    let mut inline = InvariantReport::default();
    let mut outcome_counts = (0u64, 0u64, 0u64, 0u64, 0u64); // issued, acked, failed, reads_ok, reads_failed

    let chooser = match cfg.kind {
        ScenarioKind::OltpMix => KeyChooser::zipfian(cfg.records),
        _ => KeyChooser::uniform(cfg.records),
    };
    let read_proportion = match cfg.kind {
        ScenarioKind::OltpMix => 0.5,
        _ => 0.25,
    };
    let mut rng = env.rng_for("chaos-load");
    let mut monitor_signals = 0u64;
    let mut t = SimTime::ZERO;
    for op in 0..cfg.ops {
        let key_idx = chooser.next(&mut rng);
        let key = record_key(key_idx);
        if rng.chance(read_proportion) {
            match instance.get(key.as_str(), t) {
                Ok((data, receipt)) => {
                    t += receipt.latency;
                    outcome_counts.3 += 1;
                    if !ledger.verify_read(&key, &data) {
                        inline.violations.push(format!(
                            "mid-run read of key={key} returned bytes outside the acknowledged set"
                        ));
                    }
                }
                Err(_) => {
                    outcome_counts.4 += 1;
                    t += SimDuration::from_millis(250);
                }
            }
        } else {
            // Distinct payload per (key, op): checksum mismatches catch
            // torn or stale values, not just lost keys.
            let value = record_value(key_idx ^ op.wrapping_mul(0x9e37_79b9), cfg.value_size);
            outcome_counts.0 += 1;
            match instance.put(key.as_str(), value.clone(), t) {
                Ok(r) => {
                    t += r.latency;
                    outcome_counts.1 += 1;
                    ledger.record_ack(&key, &value);
                }
                Err(_) => {
                    outcome_counts.2 += 1;
                    ledger.record_failure(&key, &value);
                    t += SimDuration::from_millis(250);
                }
            }
        }
        if op % 16 == 0 {
            let _ = instance.pump(t);
            monitor_signals += monitor
                .tick(t)
                .iter()
                .filter(|o| !matches!(o, tiera_core::monitor::ProbeOutcome::Healthy))
                .count() as u64;
        }
    }
    event_log.push(format!(
        "load-phase done: issued={} acked={} failed={} reads_ok={} reads_failed={} t={:.3}s",
        outcome_counts.0,
        outcome_counts.1,
        outcome_counts.2,
        outcome_counts.3,
        outcome_counts.4,
        t.as_secs_f64()
    ));

    // ---- quiesce: clear the fault plane, let deadlines and queues drain.
    schedule.clear(&injector_refs);
    if let Some(clears) = schedule.clears_by() {
        if t < clears {
            t = clears;
        }
    }
    t += SimDuration::from_secs(1);
    let mut drain_rounds = 0u32;
    loop {
        t += SimDuration::from_secs(31); // past the 30 s write-back timer
        let _ = instance.pump(t);
        let dirty = instance.registry().select(&Selector::Dirty, None, t);
        if instance.background_depth() == 0 && dirty.is_empty() {
            break;
        }
        drain_rounds += 1;
        if drain_rounds > 64 {
            event_log.push(format!(
                "quiesce stalled: background_depth={} dirty={}",
                instance.background_depth(),
                dirty.len()
            ));
            break;
        }
    }
    event_log.push(format!("quiesced after {drain_rounds} extra round(s)"));

    // ---- steady-state probe: fresh operations must succeed again.
    let mut recovered = true;
    for i in 0..20u64 {
        let key = format!("recovery-{i}");
        let value = record_value(1_000_000 + i, cfg.value_size);
        match instance.put(key.as_str(), value.clone(), t) {
            Ok(r) => {
                t += r.latency;
                ledger.record_ack(&key, &value);
            }
            Err(e) => {
                recovered = false;
                event_log.push(format!("recovery put {key} failed: {e}"));
            }
        }
        match instance.get(key.as_str(), t) {
            Ok((data, receipt)) => {
                t += receipt.latency;
                if !ledger.verify_read(&key, &data) {
                    recovered = false;
                    event_log.push(format!("recovery read {key} returned wrong bytes"));
                }
            }
            Err(e) => {
                recovered = false;
                event_log.push(format!("recovery get {key} failed: {e}"));
            }
        }
    }
    let _ = instance.pump(t + SimDuration::from_secs(31));
    event_log.push(format!("recovery probe: recovered={recovered}"));

    // ---- the invariant sweep.
    let mut invariants = ledger.check(&instance, t, true);
    invariants.merge(inline);
    let alerts = instance.alerts_emitted();
    event_log.push(format!(
        "invariants: {} violation(s); alerts={alerts}; monitor_signals={monitor_signals}",
        invariants.violations.len()
    ));

    ChaosOutcome {
        seed: cfg.seed,
        kind: cfg.kind,
        writes_issued: outcome_counts.0,
        writes_acked: outcome_counts.1,
        writes_failed: outcome_counts.2,
        reads_ok: outcome_counts.3,
        reads_failed: outcome_counts.4,
        alerts,
        monitor_signals,
        recovered,
        invariants,
        event_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_differ_in_scale_only() {
        let full = ChaosConfig::new(1, ScenarioKind::WriteBack);
        let quick = ChaosConfig::quick(1, ScenarioKind::WriteBack);
        assert!(quick.ops < full.ops);
        assert!(quick.records < full.records);
        assert_eq!(full.kind, quick.kind);
        assert_eq!(full.seed, quick.seed);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(ScenarioKind::WriteThrough.name(), "write-through");
        assert_eq!(ScenarioKind::WriteBack.name(), "write-back");
        assert_eq!(ScenarioKind::OltpMix.name(), "oltp-mix");
        assert_eq!(ScenarioKind::all().len(), 3);
    }

    #[test]
    fn outcome_report_embeds_seed_and_replay_command() {
        let outcome = run(&ChaosConfig::quick(77, ScenarioKind::WriteThrough));
        let report = outcome.report();
        assert!(report.contains("seed=77"), "{report}");
        assert!(report.contains("tiera-bench chaos --seed 77"), "{report}");
    }
}
