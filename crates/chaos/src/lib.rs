//! # tiera-chaos — deterministic simulation testing
//!
//! The paper's robustness claims (§4.2.3, Figure 17) are demonstrated with
//! one hand-written outage. This crate turns that demonstration into a
//! harness: seed-driven *fault schedules* over the
//! [`tiera_sim::FailureInjector`] fault plane, YCSB/OLTP-shaped *chaos
//! scenarios* that drive an instance through those schedules, and an
//! *invariant checker* that asserts the storage contract held throughout:
//!
//! 1. **No acknowledged write is lost** — every PUT the client saw succeed
//!    is readable afterwards and returns the acknowledged bytes.
//! 2. **No phantom metadata** — a brand-new PUT that failed leaves no
//!    registry entry behind.
//! 3. **Registry aggregates equal a full recount** for every tier.
//! 4. **No stranded dirty data** — once the outage clears and write-back
//!    deadlines pass, nothing dirty remains in a volatile tier.
//! 5. **Steady state returns** — after the schedule ends, fresh operations
//!    succeed at normal latency.
//!
//! The same machinery generalizes from tier faults to **node faults**:
//! [`node_schedule`] generates seeded kill / partition / slow-node /
//! rejoin-with-stale-state schedules, and [`cluster_scenario`] drives a
//! replicated `tiera-cluster` deployment through them with the ledger
//! invariants extended to the replication contract — every W-acked
//! write survives any R−1 node kills, no phantom keys reappear after a
//! stale rejoin, and rebalance migration volume never exceeds the plan.
//!
//! Everything is deterministic in virtual time: a scenario is a pure
//! function of its seed, every failure report prints that seed, and
//! re-running with `--seed N` (or [`scenario::run`] with the same config)
//! replays the identical fault schedule and event log byte for byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster_scenario;
pub mod invariants;
pub mod metastore_crash;
pub mod node_schedule;
pub mod scenario;
pub mod schedule;
pub mod wrapped;

pub use cluster_scenario::{
    run_cluster, run_cluster_matrix, ClusterChaosConfig, ClusterChaosOutcome, ClusterScenarioKind,
};
pub use invariants::{InvariantReport, WriteLedger};
pub use metastore_crash::{run_crash_case, run_crash_matrix, CrashCaseReport};
pub use node_schedule::{NodeFaultAction, NodeFaultDriver, NodeFaultEvent, NodeFaultSchedule};
pub use scenario::{ChaosConfig, ChaosOutcome, ScenarioKind};
pub use schedule::{FaultEvent, FaultSchedule};
pub use wrapped::run_wrapped;
