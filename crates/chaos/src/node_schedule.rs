//! Seed-driven **node**-fault schedules for cluster chaos runs.
//!
//! Where [`crate::schedule::FaultSchedule`] fails individual *tiers*
//! inside one instance, a [`NodeFaultSchedule`] fails whole *cluster
//! members*: kill (freeze state, refuse ops, later rejoin with whatever
//! stale state was frozen), partition (unreachable, heals), and slow
//! (fixed virtual-latency penalty per op). Every generator is a pure
//! function of its seed, every event is bounded, and every event's
//! active window closes by `0.6 × horizon` — the same replay contract
//! the tier schedules honour: one number reproduces the run.
//!
//! Schedules are plain data; the [`NodeFaultDriver`] turns one into a
//! stream of [`NodeFaultAction`]s as virtual time passes, each fired
//! exactly once, in event order — which is what makes a cluster
//! scenario's event log byte-identical run to run.

use tiera_sim::{SimDuration, SimTime};
use tiera_support::SimRng;

/// One fault against one cluster node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeFaultEvent {
    /// Kill at `at`; rejoin (revive + anti-entropy) at `rejoin_at`. The
    /// node keeps the state it froze with, so it rejoins stale.
    Kill {
        /// The node to kill.
        node: String,
        /// Kill instant.
        at: SimTime,
        /// Rejoin instant (strictly after `at`).
        rejoin_at: SimTime,
    },
    /// Network partition over `[from, until)`; heals afterwards.
    Partition {
        /// The node to isolate.
        node: String,
        /// Partition start.
        from: SimTime,
        /// Partition end (heal).
        until: SimTime,
    },
    /// A fixed per-op latency penalty over `[from, until)`.
    Slow {
        /// The node to slow down.
        node: String,
        /// Penalty start.
        from: SimTime,
        /// Penalty end.
        until: SimTime,
        /// Added virtual latency per op.
        penalty: SimDuration,
    },
}

impl NodeFaultEvent {
    /// The node this event targets.
    pub fn node(&self) -> &str {
        match self {
            NodeFaultEvent::Kill { node, .. }
            | NodeFaultEvent::Partition { node, .. }
            | NodeFaultEvent::Slow { node, .. } => node,
        }
    }
}

/// A state transition the driver asks the scenario to apply.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeFaultAction {
    /// Kill the node (freeze state, refuse ops).
    Kill(String),
    /// Revive the node and run the coordinator's anti-entropy sweep.
    Rejoin(String),
    /// Partition the node away.
    Partition(String),
    /// Heal the partition (followed by anti-entropy, like a rejoin).
    Heal(String),
    /// Install a per-op latency penalty.
    Slow(String, SimDuration),
    /// Clear the penalty.
    Unslow(String),
}

impl NodeFaultAction {
    /// A stable one-line description for event logs.
    pub fn describe(&self) -> String {
        match self {
            NodeFaultAction::Kill(n) => format!("kill node={n}"),
            NodeFaultAction::Rejoin(n) => format!("rejoin node={n}"),
            NodeFaultAction::Partition(n) => format!("partition node={n}"),
            NodeFaultAction::Heal(n) => format!("heal node={n}"),
            NodeFaultAction::Slow(n, p) => {
                format!("slow node={n} penalty={:.3}s", p.as_secs_f64())
            }
            NodeFaultAction::Unslow(n) => format!("unslow node={n}"),
        }
    }
}

/// A seeded, declarative node-fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFaultSchedule {
    /// The seed the generator ran with (embedded in failure reports).
    pub seed: u64,
    /// The fault events, in generation order.
    pub events: Vec<NodeFaultEvent>,
}

fn frac(horizon: SimDuration, f: f64) -> SimTime {
    SimTime::ZERO + horizon.mul_f64(f)
}

fn pick_distinct(rng: &mut SimRng, names: &[String], k: usize) -> Vec<String> {
    let mut pool: Vec<String> = names.to_vec();
    let mut out = Vec::new();
    for _ in 0..k.min(pool.len()) {
        let i = rng.next_below(pool.len() as u64) as usize;
        out.push(pool.swap_remove(i));
    }
    out.sort();
    out
}

impl NodeFaultSchedule {
    /// An empty schedule.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Kill 1–2 nodes (never all of them) at seeded instants in
    /// `[0.10, 0.35] × horizon`, each rejoining `[0.10, 0.20] × horizon`
    /// later — pure function of `seed`.
    pub fn kills(seed: u64, nodes: &[String], horizon: SimDuration) -> Self {
        let mut rng = SimRng::new(seed ^ 0x6b11_6b11_6b11_6b11);
        let mut s = Self::new(seed);
        let k = (1 + rng.next_below(2) as usize).min(nodes.len().saturating_sub(1)).max(1);
        for node in pick_distinct(&mut rng, nodes, k) {
            let at = frac(horizon, 0.10 + rng.next_f64() * 0.25);
            let rejoin_at = at + horizon.mul_f64(0.10 + rng.next_f64() * 0.10);
            s.events.push(NodeFaultEvent::Kill {
                node,
                at,
                rejoin_at,
            });
        }
        s
    }

    /// Partition 1–2 nodes over seeded windows inside
    /// `[0.10, 0.55] × horizon`.
    pub fn partitions(seed: u64, nodes: &[String], horizon: SimDuration) -> Self {
        let mut rng = SimRng::new(seed ^ 0x9a27_9a27_9a27_9a27);
        let mut s = Self::new(seed);
        let k = (1 + rng.next_below(2) as usize).min(nodes.len().saturating_sub(1)).max(1);
        for node in pick_distinct(&mut rng, nodes, k) {
            let from = frac(horizon, 0.10 + rng.next_f64() * 0.25);
            let until = from + horizon.mul_f64(0.05 + rng.next_f64() * 0.15);
            s.events.push(NodeFaultEvent::Partition { node, from, until });
        }
        s
    }

    /// The long-staleness shape: one node dies almost immediately and
    /// only rejoins near the end of the fault window (missing most of
    /// the run's writes), while another node crawls for a while.
    pub fn rejoin_stale(seed: u64, nodes: &[String], horizon: SimDuration) -> Self {
        let mut rng = SimRng::new(seed ^ 0x4e10_4e10_4e10_4e10);
        let mut s = Self::new(seed);
        let picked = pick_distinct(&mut rng, nodes, 2);
        if let Some(victim) = picked.first() {
            s.events.push(NodeFaultEvent::Kill {
                node: victim.clone(),
                at: frac(horizon, 0.05),
                rejoin_at: frac(horizon, 0.45 + rng.next_f64() * 0.10),
            });
        }
        if let Some(slowpoke) = picked.get(1) {
            let from = frac(horizon, 0.10 + rng.next_f64() * 0.10);
            s.events.push(NodeFaultEvent::Slow {
                node: slowpoke.clone(),
                from,
                until: from + horizon.mul_f64(0.20),
                penalty: SimDuration::from_millis(40 + rng.next_below(80)),
            });
        }
        s
    }

    /// A kill window timed to overlap a rebalance that starts around
    /// `0.2 × horizon`: one node dies inside `[0.22, 0.30] × horizon`
    /// (while it is still a migration source) and rejoins before
    /// `0.55 × horizon`.
    pub fn kill_during_window(seed: u64, nodes: &[String], horizon: SimDuration) -> Self {
        let mut rng = SimRng::new(seed ^ 0x2eba_2eba_2eba_2eba);
        let mut s = Self::new(seed);
        for node in pick_distinct(&mut rng, nodes, 1) {
            let at = frac(horizon, 0.22 + rng.next_f64() * 0.08);
            let rejoin_at = at + horizon.mul_f64(0.15 + rng.next_f64() * 0.10);
            s.events.push(NodeFaultEvent::Kill {
                node,
                at,
                rejoin_at,
            });
        }
        s
    }

    /// The latest instant at which any event is still active. Every
    /// generator above keeps this at or below `0.6 × horizon`.
    pub fn clears_by(&self) -> SimTime {
        let mut latest = SimTime::ZERO;
        for event in &self.events {
            let end = match event {
                NodeFaultEvent::Kill { rejoin_at, .. } => *rejoin_at,
                NodeFaultEvent::Partition { until, .. } => *until,
                NodeFaultEvent::Slow { until, .. } => *until,
            };
            if end > latest {
                latest = end;
            }
        }
        latest
    }

    /// Deterministic, line-oriented description — the replay contract:
    /// identical seeds must print identical text.
    pub fn describe(&self) -> String {
        let mut out = format!("node-fault-schedule seed={}\n", self.seed);
        if self.events.is_empty() {
            out.push_str("  (no node faults)\n");
        }
        for event in &self.events {
            match event {
                NodeFaultEvent::Kill {
                    node,
                    at,
                    rejoin_at,
                } => out.push_str(&format!(
                    "  kill node={node} at={:.3}s rejoin={:.3}s\n",
                    at.as_secs_f64(),
                    rejoin_at.as_secs_f64()
                )),
                NodeFaultEvent::Partition { node, from, until } => out.push_str(&format!(
                    "  partition node={node} from={:.3}s until={:.3}s\n",
                    from.as_secs_f64(),
                    until.as_secs_f64()
                )),
                NodeFaultEvent::Slow {
                    node,
                    from,
                    until,
                    penalty,
                } => out.push_str(&format!(
                    "  slow node={node} from={:.3}s until={:.3}s penalty={:.3}s\n",
                    from.as_secs_f64(),
                    until.as_secs_f64(),
                    penalty.as_secs_f64()
                )),
            }
        }
        out
    }
}

/// Replays a [`NodeFaultSchedule`] as virtual time advances, emitting
/// each phase of each event exactly once.
#[derive(Debug, Clone)]
pub struct NodeFaultDriver {
    schedule: NodeFaultSchedule,
    /// Per event: (onset fired, clearance fired).
    fired: Vec<(bool, bool)>,
}

impl NodeFaultDriver {
    /// A driver over `schedule` with nothing fired yet.
    pub fn new(schedule: NodeFaultSchedule) -> Self {
        let fired = vec![(false, false); schedule.events.len()];
        Self { schedule, fired }
    }

    /// The schedule being driven.
    pub fn schedule(&self) -> &NodeFaultSchedule {
        &self.schedule
    }

    /// Actions due at or before `now` that have not fired yet, in event
    /// order (an event's onset always precedes its clearance).
    pub fn actions(&mut self, now: SimTime) -> Vec<NodeFaultAction> {
        let mut out = Vec::new();
        for (i, event) in self.schedule.events.iter().enumerate() {
            let (onset, clearance) = self.fired[i];
            match event {
                NodeFaultEvent::Kill {
                    node,
                    at,
                    rejoin_at,
                } => {
                    if !onset && now >= *at {
                        out.push(NodeFaultAction::Kill(node.clone()));
                        self.fired[i].0 = true;
                    }
                    if self.fired[i].0 && !clearance && now >= *rejoin_at {
                        out.push(NodeFaultAction::Rejoin(node.clone()));
                        self.fired[i].1 = true;
                    }
                }
                NodeFaultEvent::Partition { node, from, until } => {
                    if !onset && now >= *from {
                        out.push(NodeFaultAction::Partition(node.clone()));
                        self.fired[i].0 = true;
                    }
                    if self.fired[i].0 && !clearance && now >= *until {
                        out.push(NodeFaultAction::Heal(node.clone()));
                        self.fired[i].1 = true;
                    }
                }
                NodeFaultEvent::Slow {
                    node,
                    from,
                    until,
                    penalty,
                } => {
                    if !onset && now >= *from {
                        out.push(NodeFaultAction::Slow(node.clone(), *penalty));
                        self.fired[i].0 = true;
                    }
                    if self.fired[i].0 && !clearance && now >= *until {
                        out.push(NodeFaultAction::Unslow(node.clone()));
                        self.fired[i].1 = true;
                    }
                }
            }
        }
        out
    }

    /// Events whose clearance has not fired yet.
    pub fn outstanding(&self) -> usize {
        self.fired.iter().filter(|(_, c)| !c).count()
    }

    /// Fires everything still outstanding (the end-of-run sweep): each
    /// remaining onset and clearance, in event order.
    pub fn finish(&mut self) -> Vec<NodeFaultAction> {
        // Far enough past any bounded schedule.
        self.actions(SimTime::ZERO + SimDuration::from_secs(u32::MAX as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("node-{i}")).collect()
    }

    #[test]
    fn generators_are_pure_functions_of_the_seed() {
        let h = SimDuration::from_secs(600);
        let nodes = names(5);
        for seed in 0..20u64 {
            assert_eq!(
                NodeFaultSchedule::kills(seed, &nodes, h),
                NodeFaultSchedule::kills(seed, &nodes, h)
            );
            assert_eq!(
                NodeFaultSchedule::partitions(seed, &nodes, h).describe(),
                NodeFaultSchedule::partitions(seed, &nodes, h).describe()
            );
            assert_eq!(
                NodeFaultSchedule::rejoin_stale(seed, &nodes, h),
                NodeFaultSchedule::rejoin_stale(seed, &nodes, h)
            );
            assert_eq!(
                NodeFaultSchedule::kill_during_window(seed, &nodes, h),
                NodeFaultSchedule::kill_during_window(seed, &nodes, h)
            );
        }
    }

    #[test]
    fn every_generator_clears_by_sixty_percent_of_horizon() {
        let h = SimDuration::from_secs(1000);
        let bound = SimTime::ZERO + h.mul_f64(0.6) + SimDuration::from_secs(1);
        let nodes = names(5);
        for seed in 0..40u64 {
            for s in [
                NodeFaultSchedule::kills(seed, &nodes, h),
                NodeFaultSchedule::partitions(seed, &nodes, h),
                NodeFaultSchedule::rejoin_stale(seed, &nodes, h),
                NodeFaultSchedule::kill_during_window(seed, &nodes, h),
            ] {
                assert!(
                    s.clears_by() <= bound,
                    "seed {seed}: clears at {:.1}s\n{}",
                    s.clears_by().as_secs_f64(),
                    s.describe()
                );
            }
        }
    }

    #[test]
    fn kills_never_take_every_node() {
        let h = SimDuration::from_secs(600);
        let nodes = names(2);
        for seed in 0..30u64 {
            let s = NodeFaultSchedule::kills(seed, &nodes, h);
            assert!(s.events.len() < nodes.len(), "seed {seed} killed all nodes");
        }
    }

    #[test]
    fn driver_fires_each_phase_exactly_once_and_in_order() {
        let mut s = NodeFaultSchedule::new(1);
        s.events.push(NodeFaultEvent::Kill {
            node: "a".into(),
            at: SimTime::from_secs(10),
            rejoin_at: SimTime::from_secs(20),
        });
        s.events.push(NodeFaultEvent::Slow {
            node: "b".into(),
            from: SimTime::from_secs(5),
            until: SimTime::from_secs(15),
            penalty: SimDuration::from_millis(50),
        });
        let mut driver = NodeFaultDriver::new(s);
        assert!(driver.actions(SimTime::from_secs(1)).is_empty());
        assert_eq!(driver.outstanding(), 2);
        let at7 = driver.actions(SimTime::from_secs(7));
        assert_eq!(at7, vec![NodeFaultAction::Slow("b".into(), SimDuration::from_millis(50))]);
        let at12 = driver.actions(SimTime::from_secs(12));
        assert_eq!(at12, vec![NodeFaultAction::Kill("a".into())]);
        // Re-asking at the same instant fires nothing twice.
        assert!(driver.actions(SimTime::from_secs(12)).is_empty());
        let rest = driver.finish();
        assert_eq!(
            rest,
            vec![
                NodeFaultAction::Rejoin("a".into()),
                NodeFaultAction::Unslow("b".into()),
            ]
        );
        assert_eq!(driver.outstanding(), 0);
        assert!(driver.finish().is_empty());
    }

    #[test]
    fn onset_and_clearance_can_fire_in_one_call() {
        let mut s = NodeFaultSchedule::new(1);
        s.events.push(NodeFaultEvent::Partition {
            node: "a".into(),
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
        });
        let mut driver = NodeFaultDriver::new(s);
        let both = driver.actions(SimTime::from_secs(30));
        assert_eq!(
            both,
            vec![
                NodeFaultAction::Partition("a".into()),
                NodeFaultAction::Heal("a".into()),
            ]
        );
    }

    #[test]
    fn describe_is_stable_and_names_every_event() {
        let h = SimDuration::from_secs(600);
        let nodes = names(4);
        let s = NodeFaultSchedule::rejoin_stale(3, &nodes, h);
        let text = s.describe();
        assert!(text.contains("seed=3"));
        assert!(text.contains("kill node="));
        assert!(text.contains("slow node="));
        assert!(NodeFaultSchedule::new(9).describe().contains("(no node faults)"));
    }
}
