//! Chaos over payload-transforming tier wrappers.
//!
//! The plain scenarios ([`crate::scenario`]) prove the storage contract
//! over raw tiers; this module re-runs the same shapes with the
//! `tiera-tierx` wrappers in the data path — the cache tier transparently
//! lzss-compressed, the durable tier behind the canonical
//! dedup-over-compressed stack — and extends the invariant sweep with the
//! wrapper-specific contract:
//!
//! 1. Everything the ledger already checks (no acked write lost, no
//!    phantom metadata, aggregates == recount) must hold with the
//!    transforms in the chain, including under injected tier faults.
//! 2. **Refcounts never strand a live key's blob**:
//!    [`DedupTier::check_integrity`] must come back clean after the run —
//!    every mapped key's blob exists with a positive refcount, and every
//!    blob's refcount equals its live key count.
//! 3. The wrappers must have actually transformed data (the run is not
//!    vacuous): the compressed cache reports a logical/physical split and
//!    the dedup store reports unique blobs.
//!
//! The payload mix deliberately alternates compressible templates (which
//! collapse under both lzss and dedup) with YCSB's incompressible
//! `record_value` payloads (which exercise the per-object raw-fallback
//! path), all derived from the scenario seed so runs replay byte for
//! byte.

use std::sync::Arc;

use tiera_core::prelude::*;
use tiera_sim::SimEnv;
use tiera_support::Bytes;
use tiera_tiers::{BlockTier, MemoryTier, ObjectStoreTier};
use tiera_tierx::{CompressedTier, DedupTier};
use tiera_workloads::dist::KeyChooser;
use tiera_workloads::ycsb::{record_key, record_value};

use crate::invariants::{InvariantReport, WriteLedger};
use crate::scenario::{ChaosConfig, ChaosOutcome, ScenarioKind};
use crate::schedule::FaultSchedule;

/// A payload for `(key_idx, op)`: compressible-and-duplicated about half
/// the time (template index folds the keyspace 8:1, so distinct keys
/// share bytes), incompressible and unique otherwise.
fn wrapped_value(key_idx: u64, op: u64, size: usize) -> Bytes {
    if (key_idx ^ op) % 2 == 0 {
        let template = key_idx % 8;
        let phrase = format!("tiera wrapped-chaos template {template} ");
        let mut out = Vec::with_capacity(size);
        while out.len() < size {
            let take = phrase.len().min(size - out.len());
            out.extend_from_slice(&phrase.as_bytes()[..take]);
        }
        Bytes::from(out)
    } else {
        record_value(key_idx ^ op.wrapping_mul(0x9e37_79b9), size)
    }
}

/// Runs one chaos scenario with the tierx wrappers in the data path.
///
/// Same contract as [`crate::scenario::run`]: a pure function of the
/// config, reproducible from the seed alone.
pub fn run_wrapped(cfg: &ChaosConfig) -> ChaosOutcome {
    let env = SimEnv::new(cfg.seed);
    // Raw tiers are kept for the fault injectors; the instance only ever
    // sees the wrapped handles. Cache: compressed. Durable EBS: the
    // canonical dedup-over-compressed stack. S3 stays raw and unfaulted
    // (the failover target of last resort, as in the plain scenarios).
    let mem = Arc::new(MemoryTier::same_az("memcached", 64 << 20, &env));
    let ebs = Arc::new(BlockTier::ebs("ebs", 256 << 20, &env));
    let s3 = Arc::new(ObjectStoreTier::s3("s3", 1 << 30, &env));
    let mem_wrapped = CompressedTier::new(mem.clone());
    let ebs_wrapped = DedupTier::new(CompressedTier::new(ebs.clone()));

    let builder = InstanceBuilder::new("wrapped-chaos", env.clone())
        .tier_handle(mem_wrapped.clone())
        .tier_handle(ebs_wrapped.clone())
        .tier(Arc::clone(&s3));
    let builder = match cfg.kind {
        ScenarioKind::WriteThrough => builder.rule(
            Rule::on(EventKind::action(ActionOp::Put)).respond(ResponseSpec::store(
                Selector::Inserted,
                ["memcached", "ebs"],
            )),
        ),
        ScenarioKind::WriteBack | ScenarioKind::OltpMix => builder
            .rule(
                Rule::on(EventKind::action(ActionOp::Put))
                    .respond(ResponseSpec::store(Selector::Inserted, ["memcached"])),
            )
            .rule(
                Rule::on(EventKind::timer(SimDuration::from_secs(30))).respond(
                    ResponseSpec::copy(
                        Selector::InTier("memcached".into()).and(Selector::Dirty),
                        ["ebs"],
                    ),
                ),
            ),
    };
    let instance = builder.build().expect("wrapped chaos instance builds");
    instance.set_retry_policy(RetryPolicy::robust());

    let schedule = FaultSchedule::random(cfg.seed, &["memcached", "ebs"], cfg.horizon);
    let injectors = [("memcached", mem.failures()), ("ebs", ebs.failures())];
    let injector_refs: Vec<(&str, &tiera_sim::FailureInjector)> = injectors
        .iter()
        .map(|(n, i)| (*n, i.as_ref() as &tiera_sim::FailureInjector))
        .collect();
    schedule.apply(&injector_refs);

    let mut event_log: Vec<String> = schedule
        .describe()
        .lines()
        .map(|l| l.trim_start().to_string())
        .collect();

    let mut ledger = WriteLedger::new();
    let mut inline = InvariantReport::default();
    let (mut issued, mut acked, mut failed, mut reads_ok, mut reads_failed) =
        (0u64, 0u64, 0u64, 0u64, 0u64);

    let chooser = match cfg.kind {
        ScenarioKind::OltpMix => KeyChooser::zipfian(cfg.records),
        _ => KeyChooser::uniform(cfg.records),
    };
    let read_proportion = match cfg.kind {
        ScenarioKind::OltpMix => 0.5,
        _ => 0.25,
    };
    let mut rng = env.rng_for("wrapped-chaos-load");
    let mut t = SimTime::ZERO;
    for op in 0..cfg.ops {
        let key_idx = chooser.next(&mut rng);
        let key = record_key(key_idx);
        if rng.chance(read_proportion) {
            match instance.get(key.as_str(), t) {
                Ok((data, receipt)) => {
                    t += receipt.latency;
                    reads_ok += 1;
                    if !ledger.verify_read(&key, &data) {
                        inline.violations.push(format!(
                            "mid-run read of key={key} returned bytes outside the acknowledged set"
                        ));
                    }
                }
                Err(_) => {
                    reads_failed += 1;
                    t += SimDuration::from_millis(250);
                }
            }
        } else {
            let value = wrapped_value(key_idx, op, cfg.value_size);
            issued += 1;
            match instance.put(key.as_str(), value.clone(), t) {
                Ok(r) => {
                    t += r.latency;
                    acked += 1;
                    ledger.record_ack(&key, &value);
                }
                Err(_) => {
                    failed += 1;
                    ledger.record_failure(&key, &value);
                    t += SimDuration::from_millis(250);
                }
            }
        }
        if op % 16 == 0 {
            let _ = instance.pump(t);
        }
    }
    event_log.push(format!(
        "load-phase done: issued={issued} acked={acked} failed={failed} \
         reads_ok={reads_ok} reads_failed={reads_failed} t={:.3}s",
        t.as_secs_f64()
    ));

    // ---- quiesce: clear the fault plane, let deadlines and queues drain.
    schedule.clear(&injector_refs);
    if let Some(clears) = schedule.clears_by() {
        if t < clears {
            t = clears;
        }
    }
    t += SimDuration::from_secs(1);
    let mut drain_rounds = 0u32;
    loop {
        t += SimDuration::from_secs(31);
        let _ = instance.pump(t);
        let dirty = instance.registry().select(&Selector::Dirty, None, t);
        if instance.background_depth() == 0 && dirty.is_empty() {
            break;
        }
        drain_rounds += 1;
        if drain_rounds > 64 {
            event_log.push(format!(
                "quiesce stalled: background_depth={} dirty={}",
                instance.background_depth(),
                dirty.len()
            ));
            break;
        }
    }
    event_log.push(format!("quiesced after {drain_rounds} extra round(s)"));

    // ---- steady-state probe through the wrappers.
    let mut recovered = true;
    for i in 0..20u64 {
        let key = format!("recovery-{i}");
        let value = wrapped_value(1_000_000 + i, i, cfg.value_size);
        match instance.put(key.as_str(), value.clone(), t) {
            Ok(r) => {
                t += r.latency;
                ledger.record_ack(&key, &value);
            }
            Err(e) => {
                recovered = false;
                event_log.push(format!("recovery put {key} failed: {e}"));
            }
        }
        match instance.get(key.as_str(), t) {
            Ok((data, receipt)) => {
                t += receipt.latency;
                if !ledger.verify_read(&key, &data) {
                    recovered = false;
                    event_log.push(format!("recovery read {key} returned wrong bytes"));
                }
            }
            Err(e) => {
                recovered = false;
                event_log.push(format!("recovery get {key} failed: {e}"));
            }
        }
    }
    let _ = instance.pump(t + SimDuration::from_secs(31));
    event_log.push(format!("recovery probe: recovered={recovered}"));

    // ---- invariants: the ledger sweep plus the wrapper contract.
    let mut invariants = ledger.check(&instance, t, true);
    invariants.merge(inline);
    for problem in ebs_wrapped.check_integrity() {
        invariants
            .violations
            .push(format!("dedup integrity (ebs): {problem}"));
    }
    let cache = mem_wrapped
        .capacity_profile()
        .unwrap_or_default();
    let store = ebs_wrapped
        .capacity_profile()
        .unwrap_or_default();
    if cache.objects > 0 && cache.objects == cache.raw_fallback_objects {
        invariants.violations.push(
            "compressed cache never compressed anything — payload mix is broken".into(),
        );
    }
    if store.objects > 0 && store.unique_blobs == 0 {
        invariants
            .violations
            .push("dedup store holds keys but no blobs".into());
    }
    event_log.push(format!(
        "wrapper profiles: cache logical={} physical={} raw_fallback={} | \
         store blobs={} dedup_hits={}",
        cache.logical_bytes,
        cache.physical_bytes,
        cache.raw_fallback_objects,
        store.unique_blobs,
        store.dedup_hits
    ));
    let alerts = instance.alerts_emitted();
    event_log.push(format!(
        "invariants: {} violation(s); alerts={alerts}",
        invariants.violations.len()
    ));

    ChaosOutcome {
        seed: cfg.seed,
        kind: cfg.kind,
        writes_issued: issued,
        writes_acked: acked,
        writes_failed: failed,
        reads_ok,
        reads_failed,
        alerts,
        monitor_signals: 0,
        recovered,
        invariants,
        event_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressible_template_actually_compresses_and_duplicates() {
        let a = wrapped_value(0, 0, 1024);
        let b = wrapped_value(8, 2, 1024); // same template (8 % 8 == 0), even parity
        assert_eq!(a.as_slice(), b.as_slice(), "templates fold the keyspace 8:1");
        let compressed = tiera_codec::lzss::compress(a.as_slice());
        assert!(compressed.len() < a.len() / 2, "template must be compressible");
    }

    #[test]
    fn incompressible_arm_differs_per_op() {
        let a = wrapped_value(1, 2, 256); // (1 ^ 2) % 2 == 1 -> record_value
        let b = wrapped_value(1, 4, 256);
        assert_ne!(a.as_slice(), b.as_slice());
    }
}
