//! Seed-driven fault schedules over the [`FailureInjector`] fault plane.
//!
//! A [`FaultSchedule`] is a declarative list of fault events — outages,
//! flapping, and probabilistic noise — that can be *applied* to the
//! injectors of the tiers it names. Applying also re-seeds each injector
//! from the schedule's seed, so the probabilistic draws replay
//! byte-identically: the pair (schedule seed, op sequence) fully determines
//! every fault the run observes.
//!
//! [`FaultSchedule::random`] generates a bounded random schedule from a
//! seed — the generator itself is a pure function of the seed, so a chaos
//! failure report only ever needs to print one number.

use tiera_sim::{FailureInjector, FailureKind, FaultSpec, SimDuration, SimTime};
use tiera_support::SimRng;

/// One fault event against one tier.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A hard outage: every covered op inside the window fails.
    Outage {
        /// Affected tier name.
        tier: String,
        /// Outage start (inclusive).
        from: SimTime,
        /// Outage end (exclusive); `None` = until further notice.
        until: Option<SimTime>,
        /// Which operations fail.
        kind: FailureKind,
        /// Client-observed timeout per failed op.
        timeout: SimDuration,
    },
    /// Alternating down/up windows (tier flapping).
    Flap {
        /// Affected tier name.
        tier: String,
        /// First down-window start.
        start: SimTime,
        /// Down-window length.
        down: SimDuration,
        /// Up-window length between down windows.
        up: SimDuration,
        /// Number of down windows.
        cycles: u32,
        /// Which operations fail while down.
        kind: FailureKind,
        /// Client-observed timeout per failed op.
        timeout: SimDuration,
    },
    /// Probabilistic per-op noise (timeouts, torn writes, transient
    /// `TierFull`, latency spikes) drawn from the injector's seeded RNG.
    Noise {
        /// Affected tier name.
        tier: String,
        /// The fault spec to install.
        spec: FaultSpec,
    },
}

impl FaultEvent {
    /// The tier this event targets.
    pub fn tier(&self) -> &str {
        match self {
            FaultEvent::Outage { tier, .. }
            | FaultEvent::Flap { tier, .. }
            | FaultEvent::Noise { tier, .. } => tier,
        }
    }
}

/// A seeded, declarative fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Seed for the injectors' probabilistic draw streams (and, for
    /// [`FaultSchedule::random`], the generator itself).
    pub seed: u64,
    /// The fault events, in installation order.
    pub events: Vec<FaultEvent>,
}

fn kind_name(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::Reads => "reads",
        FailureKind::Writes => "writes",
        FailureKind::All => "all-ops",
    }
}

/// FNV-1a over the tier name: stable per-tier seed derivation, independent
/// of `std` hasher randomization.
fn tier_salt(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultSchedule {
    /// An empty schedule with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds a hard outage window (5 s client timeout).
    pub fn outage(
        mut self,
        tier: impl Into<String>,
        from: SimTime,
        until: Option<SimTime>,
        kind: FailureKind,
    ) -> Self {
        self.events.push(FaultEvent::Outage {
            tier: tier.into(),
            from,
            until,
            kind,
            timeout: SimDuration::from_secs(5),
        });
        self
    }

    /// Adds a flapping pattern: `cycles` down-windows of `down`, separated
    /// by `up` of health (1 s client timeout, so flaps are cheap to ride
    /// out with retries).
    pub fn flap(
        mut self,
        tier: impl Into<String>,
        start: SimTime,
        down: SimDuration,
        up: SimDuration,
        cycles: u32,
        kind: FailureKind,
    ) -> Self {
        self.events.push(FaultEvent::Flap {
            tier: tier.into(),
            start,
            down,
            up,
            cycles,
            kind,
            timeout: SimDuration::from_secs(1),
        });
        self
    }

    /// Adds probabilistic noise from a [`FaultSpec`].
    pub fn noise(mut self, tier: impl Into<String>, spec: FaultSpec) -> Self {
        self.events.push(FaultEvent::Noise {
            tier: tier.into(),
            spec,
        });
        self
    }

    /// Generates a bounded random schedule over `tiers` within
    /// `[0, horizon)`, as a pure function of `seed`.
    ///
    /// Every generated fault clears before `0.6 × horizon`, so a scenario
    /// that quiesces after the horizon always has a fault-free recovery
    /// tail; probabilities are kept modest so retries can ride out the
    /// noise and invariants are checked under stress rather than under
    /// guaranteed data loss.
    pub fn random(seed: u64, tiers: &[&str], horizon: SimDuration) -> Self {
        let mut rng = SimRng::new(seed ^ 0x5eed_5eed_5eed_5eed);
        let mut schedule = Self::new(seed);
        let span = horizon.mul_f64(0.6);
        for tier in tiers {
            // Each tier independently gets 0-2 events; a schedule with no
            // events at all is a valid (and useful) control run.
            let picks = rng.next_below(3);
            for _ in 0..picks {
                let kind = match rng.next_below(3) {
                    0 => FailureKind::Reads,
                    1 => FailureKind::Writes,
                    _ => FailureKind::All,
                };
                let a = span.mul_f64(rng.next_f64() * 0.5);
                let from = SimTime::ZERO + a;
                match rng.next_below(3) {
                    0 => {
                        let len = span.mul_f64(0.05 + rng.next_f64() * 0.25);
                        schedule = schedule.outage(*tier, from, Some(from + len), kind);
                    }
                    1 => {
                        // Worst case: from (≤ 0.5·span) + 4 cycles of
                        // (down + up) (≤ 0.44·span) stays inside span.
                        let down = span.mul_f64(0.02 + rng.next_f64() * 0.03);
                        let up = span.mul_f64(0.03 + rng.next_f64() * 0.03);
                        let cycles = 2 + rng.next_below(3) as u32;
                        schedule = schedule.flap(*tier, from, down, up, cycles, kind);
                    }
                    _ => {
                        let until = from + span.mul_f64(0.1 + rng.next_f64() * 0.3);
                        let spec = FaultSpec::new(kind, from, Some(until))
                            .error(0.02 + rng.next_f64() * 0.08)
                            .torn(rng.next_f64() * 0.05)
                            .transient_full(rng.next_f64() * 0.05)
                            .spikes(rng.next_f64() * 0.2, SimDuration::from_millis(150))
                            .timeout(SimDuration::from_millis(500));
                        schedule = schedule.noise(*tier, spec);
                    }
                }
            }
        }
        schedule
    }

    /// Installs the schedule into the named injectors, re-seeding each
    /// injector's draw stream from the schedule seed salted by the tier
    /// name (so two tiers never share a stream). Unnamed tiers are left
    /// untouched; events naming absent tiers are skipped.
    pub fn apply(&self, injectors: &[(&str, &FailureInjector)]) {
        for (name, injector) in injectors {
            injector.set_seed(self.seed ^ tier_salt(name));
        }
        for event in &self.events {
            let Some((_, injector)) = injectors.iter().find(|(n, _)| n == &event.tier()) else {
                continue;
            };
            match event {
                FaultEvent::Outage {
                    from,
                    until,
                    kind,
                    timeout,
                    ..
                } => injector.schedule(tiera_sim::FailureWindow {
                    from: *from,
                    until: *until,
                    kind: *kind,
                    timeout: *timeout,
                }),
                FaultEvent::Flap {
                    start,
                    down,
                    up,
                    cycles,
                    kind,
                    timeout,
                    ..
                } => injector.schedule_flap(*start, *down, *up, *cycles, *kind, *timeout),
                FaultEvent::Noise { spec, .. } => injector.install(*spec),
            }
        }
    }

    /// Clears every named injector (the "repair crew arrives" step).
    pub fn clear(&self, injectors: &[(&str, &FailureInjector)]) {
        for (_, injector) in injectors {
            injector.clear();
        }
    }

    /// A deterministic, line-oriented description of the schedule — the
    /// replay contract: two runs with the same seed must produce identical
    /// `describe()` output, and chaos failure reports embed it.
    pub fn describe(&self) -> String {
        let mut out = format!("fault-schedule seed={}\n", self.seed);
        if self.events.is_empty() {
            out.push_str("  (no faults)\n");
        }
        for event in &self.events {
            match event {
                FaultEvent::Outage {
                    tier,
                    from,
                    until,
                    kind,
                    timeout,
                } => {
                    let until = match until {
                        Some(u) => format!("{:.3}s", u.as_secs_f64()),
                        None => "open".to_string(),
                    };
                    out.push_str(&format!(
                        "  outage tier={tier} ops={} from={:.3}s until={until} timeout={:.3}s\n",
                        kind_name(*kind),
                        from.as_secs_f64(),
                        timeout.as_secs_f64(),
                    ));
                }
                FaultEvent::Flap {
                    tier,
                    start,
                    down,
                    up,
                    cycles,
                    kind,
                    timeout,
                } => out.push_str(&format!(
                    "  flap tier={tier} ops={} start={:.3}s down={:.3}s up={:.3}s cycles={cycles} timeout={:.3}s\n",
                    kind_name(*kind),
                    start.as_secs_f64(),
                    down.as_secs_f64(),
                    up.as_secs_f64(),
                    timeout.as_secs_f64(),
                )),
                FaultEvent::Noise { tier, spec } => {
                    let until = match spec.until {
                        Some(u) => format!("{:.3}s", u.as_secs_f64()),
                        None => "open".to_string(),
                    };
                    out.push_str(&format!(
                        "  noise tier={tier} ops={} from={:.3}s until={until} error={:.4} torn={:.4} full={:.4} spike={:.4}x{:.3}s\n",
                        kind_name(spec.ops),
                        spec.from.as_secs_f64(),
                        spec.error_prob,
                        spec.torn_prob,
                        spec.full_prob,
                        spec.spike_prob,
                        spec.spike.as_secs_f64(),
                    ));
                }
            }
        }
        out
    }

    /// The latest instant at which any scheduled fault can still be
    /// active, or `None` if an event is open-ended (or the schedule is
    /// empty).
    pub fn clears_by(&self) -> Option<SimTime> {
        if self.events.is_empty() {
            return Some(SimTime::ZERO);
        }
        let mut latest = SimTime::ZERO;
        for event in &self.events {
            let end = match event {
                FaultEvent::Outage { until, .. } => (*until)?,
                FaultEvent::Flap {
                    start,
                    down,
                    up,
                    cycles,
                    ..
                } => {
                    let mut at = *start;
                    for _ in 0..*cycles {
                        at = at + *down + *up;
                    }
                    at
                }
                FaultEvent::Noise { spec, .. } => spec.until?,
            };
            if end > latest {
                latest = end;
            }
        }
        Some(latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedule_is_a_pure_function_of_the_seed() {
        let a = FaultSchedule::random(42, &["mem", "ebs"], SimDuration::from_secs(600));
        let b = FaultSchedule::random(42, &["mem", "ebs"], SimDuration::from_secs(600));
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
    }

    #[test]
    fn different_seeds_differ() {
        let horizon = SimDuration::from_secs(600);
        let base = FaultSchedule::random(1, &["mem", "ebs"], horizon);
        assert!(
            (2..30u64).any(|s| FaultSchedule::random(s, &["mem", "ebs"], horizon) != base),
            "30 seeds all generated the identical schedule"
        );
    }

    #[test]
    fn random_schedule_clears_before_sixty_percent_of_horizon() {
        let horizon = SimDuration::from_secs(1000);
        for seed in 0..50 {
            let s = FaultSchedule::random(seed, &["a", "b", "c"], horizon);
            let clears = s.clears_by().expect("random schedules are bounded");
            assert!(
                clears <= SimTime::ZERO + horizon.mul_f64(0.6) + SimDuration::from_secs(1),
                "seed {seed}: clears at {:.1}s",
                clears.as_secs_f64()
            );
        }
    }

    #[test]
    fn describe_names_every_event() {
        let s = FaultSchedule::new(7)
            .outage("ebs", SimTime::from_secs(10), None, FailureKind::Writes)
            .flap(
                "mem",
                SimTime::from_secs(5),
                SimDuration::from_secs(2),
                SimDuration::from_secs(3),
                4,
                FailureKind::All,
            )
            .noise(
                "ebs",
                FaultSpec::new(FailureKind::Reads, SimTime::ZERO, None).error(0.1),
            );
        let text = s.describe();
        assert!(text.contains("seed=7"));
        assert!(text.contains("outage tier=ebs ops=writes"));
        assert!(text.contains("flap tier=mem ops=all-ops"));
        assert!(text.contains("noise tier=ebs ops=reads"));
    }

    #[test]
    fn apply_reseeds_and_installs_only_named_tiers() {
        let ebs = FailureInjector::new();
        let mem = FailureInjector::new();
        let s = FaultSchedule::new(9).outage(
            "ebs",
            SimTime::from_secs(1),
            Some(SimTime::from_secs(2)),
            FailureKind::Writes,
        );
        s.apply(&[("ebs", &ebs), ("mem", &mem)]);
        assert!(ebs.any_active(SimTime::from_secs(1)));
        assert!(!mem.any_active(SimTime::from_secs(1)));
        s.clear(&[("ebs", &ebs), ("mem", &mem)]);
        assert!(!ebs.any_active(SimTime::from_secs(1)));
    }

    #[test]
    fn clears_by_covers_flap_tail_and_open_ended_events() {
        let flappy = FaultSchedule::new(0).flap(
            "t",
            SimTime::from_secs(10),
            SimDuration::from_secs(2),
            SimDuration::from_secs(3),
            2,
            FailureKind::All,
        );
        assert_eq!(flappy.clears_by(), Some(SimTime::from_secs(20)));
        let open = FaultSchedule::new(0).outage("t", SimTime::ZERO, None, FailureKind::All);
        assert_eq!(open.clears_by(), None);
        assert_eq!(FaultSchedule::new(0).clears_by(), Some(SimTime::ZERO));
    }

    #[test]
    fn per_tier_streams_are_salted_apart() {
        // Same schedule applied to two tiers: their injector streams must
        // not be identical, or correlated faults would hit both tiers in
        // lockstep.
        assert_ne!(tier_salt("mem"), tier_salt("ebs"));
    }
}
