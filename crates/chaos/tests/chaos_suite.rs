//! The chaos suite: replay determinism, multi-seed invariant sweeps, and a
//! multi-threaded hammer over a flapping tier.
//!
//! Every assertion message embeds the scenario seed (via
//! `ChaosOutcome::report()`), so a failing run in CI is reproducible with
//! `tiera-bench chaos --seed N`.

use std::sync::Arc;

use tiera_chaos::invariants::WriteLedger;
use tiera_chaos::scenario::{self, ChaosConfig, ScenarioKind};
use tiera_chaos::schedule::FaultSchedule;
use tiera_core::monitor::FailureMonitor;
use tiera_core::prelude::*;
use tiera_sim::{FailureKind, SimEnv};
use tiera_tiers::{BlockTier, MemoryTier, ObjectStoreTier};
use tiera_workloads::ycsb::record_value;

fn replay_outcome_fingerprint(cfg: &ChaosConfig) -> (Vec<String>, u64, u64, u64, u64, bool) {
    let o = scenario::run(cfg);
    assert!(o.ok(), "{}", o.report());
    (
        o.event_log,
        o.writes_acked,
        o.writes_failed,
        o.reads_ok,
        o.alerts,
        o.recovered,
    )
}

#[test]
fn write_through_replays_byte_identically_from_seed() {
    let cfg = ChaosConfig::quick(101, ScenarioKind::WriteThrough);
    assert_eq!(
        replay_outcome_fingerprint(&cfg),
        replay_outcome_fingerprint(&cfg)
    );
}

#[test]
fn write_back_replays_byte_identically_from_seed() {
    let cfg = ChaosConfig::quick(202, ScenarioKind::WriteBack);
    assert_eq!(
        replay_outcome_fingerprint(&cfg),
        replay_outcome_fingerprint(&cfg)
    );
}

#[test]
fn oltp_mix_replays_byte_identically_from_seed() {
    let cfg = ChaosConfig::quick(303, ScenarioKind::OltpMix);
    assert_eq!(
        replay_outcome_fingerprint(&cfg),
        replay_outcome_fingerprint(&cfg)
    );
}

#[test]
fn different_seeds_produce_different_event_logs() {
    let a = scenario::run(&ChaosConfig::quick(1, ScenarioKind::WriteThrough));
    let found = (2u64..10)
        .any(|s| scenario::run(&ChaosConfig::quick(s, ScenarioKind::WriteThrough)).event_log != a.event_log);
    assert!(found, "eight different seeds all replayed seed 1's event log");
}

#[test]
fn invariants_hold_across_a_seed_sweep_of_every_scenario_kind() {
    for kind in ScenarioKind::all() {
        for seed in 1..=8u64 {
            let outcome = scenario::run(&ChaosConfig::quick(seed, kind));
            assert!(outcome.ok(), "{}", outcome.report());
        }
    }
}

#[test]
fn the_sweep_actually_exercises_the_fault_plane() {
    // A sweep that never injects a failure proves nothing; check that at
    // least one seed produced failed writes or alerts, and at least one
    // produced a non-empty schedule.
    let mut any_failures = false;
    let mut any_events = false;
    for seed in 1..=8u64 {
        let cfg = ChaosConfig::quick(seed, ScenarioKind::WriteThrough);
        let schedule = FaultSchedule::random(seed, &["memcached", "ebs"], cfg.horizon);
        any_events |= !schedule.events.is_empty();
        let outcome = scenario::run(&cfg);
        any_failures |= outcome.writes_failed > 0 || outcome.alerts > 0 || outcome.reads_failed > 0;
    }
    assert!(any_events, "no seed in 1..=8 generated any fault event");
    assert!(any_failures, "no seed in 1..=8 surfaced any failure to the client");
}

#[test]
fn recovery_after_open_ended_outage_cleared_by_monitor_style_repair() {
    // An explicit (not random) schedule: EBS writes go down at t=30s with
    // no scheduled end; the harness plays repair crew by clearing the
    // injector, after which the instance must return to steady state.
    let env = SimEnv::new(4242);
    let mem = Arc::new(MemoryTier::same_az("memcached", 64 << 20, &env));
    let ebs = Arc::new(BlockTier::ebs("ebs", 256 << 20, &env));
    let instance = InstanceBuilder::new("repair", env.clone())
        .tier(Arc::clone(&mem))
        .tier(Arc::clone(&ebs))
        .rule(
            Rule::on(EventKind::action(ActionOp::Put)).respond(ResponseSpec::store(
                Selector::Inserted,
                ["memcached", "ebs"],
            )),
        )
        .build()
        .unwrap();
    instance.set_retry_policy(RetryPolicy::robust());
    let schedule = FaultSchedule::new(4242).outage(
        "ebs",
        SimTime::from_secs(30),
        None,
        FailureKind::Writes,
    );
    schedule.apply(&[("ebs", ebs.failures())]);

    let mut ledger = WriteLedger::new();
    let mut t = SimTime::ZERO;
    let mut failed = 0u64;
    for i in 0..200u64 {
        let key = format!("k{i}");
        let value = record_value(i, 1024);
        match instance.put(key.as_str(), value.clone(), t) {
            Ok(r) => {
                t += r.latency;
                ledger.record_ack(&key, &value);
            }
            Err(_) => {
                failed += 1;
                ledger.record_failure(&key, &value);
            }
        }
        // Open-loop pacing: 4 ops/s, so the 200-op run spans ~50 s of
        // virtual time and ops 120+ land inside the t=30s outage.
        t += SimDuration::from_millis(250);
    }
    // With only one durable tier and it down, un-failed-over writes fail —
    // but robust failover has no durable alternative, so some must fail
    // or be served by memcached alone... either way alerts fire.
    assert!(
        failed > 0 || instance.alerts_emitted() > 0,
        "the outage had no observable effect"
    );

    // Repair and verify steady state.
    schedule.clear(&[("ebs", ebs.failures())]);
    t += SimDuration::from_secs(10);
    let _ = instance.pump(t);
    for i in 0..20u64 {
        let key = format!("post-{i}");
        let value = record_value(10_000 + i, 1024);
        let r = instance.put(key.as_str(), value.clone(), t).expect("post-repair put");
        t += r.latency;
        ledger.record_ack(&key, &value);
    }
    let report = ledger.check(&instance, t, false);
    assert!(report.ok(), "seed 4242: {:?}", report.violations);
}

#[test]
fn monitor_observing_alerts_sees_chaos_degradation() {
    // The FAILURE_ALERT stream reaches the monitoring application: flap a
    // tier hard enough that failover alerts fire, and check the monitor's
    // alert-observation path registers trouble.
    let env = SimEnv::new(99);
    let mem = Arc::new(MemoryTier::same_az("memcached", 64 << 20, &env));
    let ebs = Arc::new(BlockTier::ebs("ebs", 256 << 20, &env));
    let s3 = Arc::new(ObjectStoreTier::s3("s3", 1 << 30, &env));
    let instance = InstanceBuilder::new("observed", env.clone())
        .tier(Arc::clone(&mem))
        .tier(Arc::clone(&ebs))
        .tier(Arc::clone(&s3))
        .rule(
            Rule::on(EventKind::action(ActionOp::Put)).respond(ResponseSpec::store(
                Selector::Inserted,
                ["memcached", "ebs"],
            )),
        )
        .build()
        .unwrap();
    instance.set_retry_policy(RetryPolicy::robust());
    FaultSchedule::new(99)
        .outage(
            "ebs",
            SimTime::from_secs(5),
            Some(SimTime::from_secs(400)),
            FailureKind::Writes,
        )
        .apply(&[("ebs", ebs.failures())]);
    let mut monitor = FailureMonitor::new(
        Arc::clone(&instance),
        SimDuration::from_secs(60),
        u32::MAX, // never reconfigure; we only count signals
        |_| {},
    )
    .observing_alerts();

    let mut t = SimTime::ZERO;
    let mut signals = 0usize;
    for i in 0..60u64 {
        let _ = instance.put(format!("k{i}").as_str(), record_value(i, 1024), t);
        t += SimDuration::from_secs(10);
        signals += monitor
            .tick(t)
            .iter()
            .filter(|o| !matches!(o, tiera_core::monitor::ProbeOutcome::Healthy))
            .count();
    }
    assert!(
        instance.alerts_emitted() > 0,
        "failover under outage must emit FAILURE_ALERTs"
    );
    assert!(signals > 0, "monitor never saw the degradation");
}

#[test]
fn four_thread_hammer_over_flapping_tier_loses_no_acked_write() {
    const THREADS: u64 = 4;
    const OPS_PER_THREAD: u64 = 250;

    let env = SimEnv::new(777);
    let mem = Arc::new(MemoryTier::same_az("memcached", 64 << 20, &env));
    let ebs = Arc::new(BlockTier::ebs("ebs", 256 << 20, &env));
    let s3 = Arc::new(ObjectStoreTier::s3("s3", 1 << 30, &env));
    let instance = InstanceBuilder::new("hammer", env.clone())
        .tier(Arc::clone(&mem))
        .tier(Arc::clone(&ebs))
        .tier(Arc::clone(&s3))
        .rule(
            Rule::on(EventKind::action(ActionOp::Put)).respond(ResponseSpec::store(
                Selector::Inserted,
                ["memcached", "ebs"],
            )),
        )
        .build()
        .unwrap();
    instance.set_retry_policy(RetryPolicy::robust());

    // Both tiers flap (never simultaneously scheduled against s3, the
    // failover refuge), covering the whole hammer window.
    FaultSchedule::new(777)
        .flap(
            "memcached",
            SimTime::from_secs(2),
            SimDuration::from_secs(3),
            SimDuration::from_secs(4),
            30,
            FailureKind::All,
        )
        .flap(
            "ebs",
            SimTime::from_secs(4),
            SimDuration::from_secs(3),
            SimDuration::from_secs(5),
            25,
            FailureKind::Writes,
        )
        .apply(&[("memcached", mem.failures()), ("ebs", ebs.failures())]);

    // Each thread owns a disjoint key range and writes each key once, so
    // the merged ledger is order-independent.
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let instance = Arc::clone(&instance);
        handles.push(std::thread::spawn(move || {
            let mut acked: Vec<(String, u64)> = Vec::new();
            let mut failed: Vec<(String, u64)> = Vec::new();
            let mut t = SimTime::ZERO;
            for i in 0..OPS_PER_THREAD {
                let key = format!("h{tid}-{i}");
                let idx = tid * 1_000_000 + i;
                let value = record_value(idx, 2048);
                match instance.put(key.as_str(), value, t) {
                    Ok(r) => {
                        t += r.latency;
                        acked.push((key, idx));
                    }
                    Err(_) => {
                        failed.push((key, idx));
                        t += SimDuration::from_millis(500);
                    }
                }
                if i % 8 == 0 {
                    let _ = instance.pump(t);
                }
            }
            (acked, failed, t)
        }));
    }

    let mut ledger = WriteLedger::new();
    let mut total_acked = 0usize;
    let mut t_max = SimTime::ZERO;
    for handle in handles {
        let (acked, failed, t) = handle.join().expect("hammer thread");
        total_acked += acked.len();
        for (key, idx) in acked {
            ledger.record_ack(&key, &record_value(idx, 2048));
        }
        for (key, idx) in failed {
            ledger.record_failure(&key, &record_value(idx, 2048));
        }
        if t > t_max {
            t_max = t;
        }
    }
    assert!(
        total_acked > 0,
        "the flap schedule suffocated every single write"
    );

    // Clear the flaps, drain, and check the contract.
    mem.failures().clear();
    ebs.failures().clear();
    let mut t = t_max + SimDuration::from_secs(301); // past every flap window
    for _ in 0..8 {
        t += SimDuration::from_secs(31);
        let _ = instance.pump(t);
        if instance.background_depth() == 0 {
            break;
        }
    }
    let report = ledger.check(&instance, t, false);
    assert!(report.ok(), "seed 777 hammer: {:?}", report.violations);
}
