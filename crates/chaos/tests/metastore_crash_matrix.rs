//! The metastore kill-point crash matrix: every deterministic crash site,
//! under multiple seeds, upholds "no acked durable write lost, no phantom
//! keys" on reopen — and each case replays byte-identically from its
//! `(site, seed)` pair.

use std::fs;
use std::path::PathBuf;

use tiera_chaos::metastore_crash::{run_crash_case, run_crash_matrix};
use tiera_metastore::KillSite;

fn temp_dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "tiera-crash-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn full_matrix_passes_under_two_seeds() {
    for seed in [1u64, 0xDEAD_BEEF] {
        let base = temp_dir("matrix");
        let results = run_crash_matrix(&base, seed);
        assert_eq!(results.len(), KillSite::ALL.len());
        let failures: Vec<String> = results
            .iter()
            .filter_map(|(site, r)| {
                r.as_ref()
                    .err()
                    .map(|e| format!("{}: {e}", site.name()))
            })
            .collect();
        assert!(failures.is_empty(), "seed {seed}: {failures:#?}");
        // Every site actually produced a crash case (the matrix is the
        // acceptance criterion's ">= 6 deterministic sites").
        for (_, r) in &results {
            let report = r.as_ref().unwrap();
            assert!(report.acked_ops >= 20, "{report:?}");
            assert!(report.recovered_keys > 0, "{report:?}");
        }
        fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn cases_replay_identically_from_their_seed() {
    for site in [
        KillSite::BatchMidAppend,
        KillSite::BatchBeforeSync,
        KillSite::SnapBeforeRename,
        KillSite::RotateAfterSeal,
    ] {
        let d1 = temp_dir("replay1");
        let d2 = temp_dir("replay2");
        let a = run_crash_case(&d1, site, 7).unwrap();
        let b = run_crash_case(&d2, site, 7).unwrap();
        assert_eq!(a, b, "site {} is not seed-deterministic", site.name());
        fs::remove_dir_all(&d1).ok();
        fs::remove_dir_all(&d2).ok();
    }
}

/// The unsynced half of a killed batch must never surface: a mid-append
/// kill happens before the batch fsync, so after the simulated crash not
/// one of its records may be visible.
#[test]
fn mid_append_kill_surfaces_nothing() {
    let dir = temp_dir("midappend");
    let report = run_crash_case(&dir, KillSite::BatchMidAppend, 3).unwrap();
    assert!(report.attempted_records > 1, "{report:?}");
    assert!(
        report.surfaced_prefix.iter().all(|&p| p == 0),
        "unsynced batch records surfaced after crash: {report:?}"
    );
    fs::remove_dir_all(&dir).ok();
}

/// A kill after the batch fsync may surface the records (they are
/// durable), but the invariant — acked-model + attempted-prefix — still
/// has to hold, and here the full batch must surface since it was synced.
#[test]
fn after_sync_kill_surfaces_the_whole_batch() {
    let dir = temp_dir("aftersync");
    let report = run_crash_case(&dir, KillSite::BatchAfterSync, 3).unwrap();
    assert_eq!(report.attempted_records, 1, "{report:?}");
    assert_eq!(
        report.surfaced_prefix.iter().sum::<usize>(),
        1,
        "fsynced record vanished after crash: {report:?}"
    );
    fs::remove_dir_all(&dir).ok();
}
