//! Chaos matrix over the tierx-wrapped tiers: the ledger invariants and
//! the dedup refcount contract must hold across a seed sweep of every
//! scenario kind, and every run must replay byte-identically from its
//! seed.

use tiera_chaos::scenario::{ChaosConfig, ScenarioKind};
use tiera_chaos::wrapped::run_wrapped;

#[test]
fn invariants_hold_over_wrapped_tiers_across_a_seed_sweep() {
    for kind in ScenarioKind::all() {
        for seed in 1..=4u64 {
            let outcome = run_wrapped(&ChaosConfig::quick(seed, kind));
            assert!(outcome.ok(), "{}", outcome.report());
        }
    }
}

#[test]
fn wrapped_runs_replay_byte_identically_from_seed() {
    let cfg = ChaosConfig::quick(404, ScenarioKind::WriteBack);
    let a = run_wrapped(&cfg);
    let b = run_wrapped(&cfg);
    assert!(a.ok(), "{}", a.report());
    assert_eq!(a.event_log, b.event_log, "event logs must replay bit-identically");
    assert_eq!(
        (a.writes_acked, a.writes_failed, a.reads_ok, a.reads_failed),
        (b.writes_acked, b.writes_failed, b.reads_ok, b.reads_failed)
    );
}

#[test]
fn wrapped_sweep_exercises_both_transform_paths() {
    // A sweep where no run ever compressed or deduped anything would prove
    // nothing about the wrappers under faults; the profile line in the
    // event log carries the counters.
    let mut saw_compression = false;
    let mut saw_dedup_hit = false;
    for seed in 1..=4u64 {
        let outcome = run_wrapped(&ChaosConfig::quick(seed, ScenarioKind::WriteThrough));
        assert!(outcome.ok(), "{}", outcome.report());
        let profile_line = outcome
            .event_log
            .iter()
            .find(|l| l.starts_with("wrapper profiles:"))
            .expect("profile line present")
            .clone();
        if !profile_line.contains("physical=0") {
            saw_compression = true;
        }
        if !profile_line.contains("dedup_hits=0") {
            saw_dedup_hit = true;
        }
    }
    assert!(saw_compression, "no run stored compressed bytes");
    assert!(saw_dedup_hit, "no run ever hit the dedup store twice");
}
