//! The Tiera TCP server.
//!
//! Structure mirrors the paper's prototype (§3): a pool of threads services
//! client requests; a dedicated event thread evaluates timer events and
//! drains background responses. Wall-clock time is mapped 1:1 onto the
//! instance's virtual clock so policies written in seconds behave as
//! expected when the server runs live.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tiera_support::channel;

use tiera_core::catalog::TierCatalog;
use tiera_core::instance::{Instance, PutOptions};
use tiera_core::retry::RetryPolicy;
use tiera_core::object::Tag;
use tiera_sim::SimTime;

use crate::proto::{write_frame, Request, Response};

/// Server configuration (the thread-pool sizes of paper §3).
#[derive(Clone, Default)]
pub struct ServerConfig {
    /// Threads servicing client requests (0 → default of 4).
    pub request_threads: usize,
    /// Period of the event thread's pump (zero → default of 20 ms).
    pub event_tick: Duration,
    /// Tier catalog used to resolve `AttachTier` reconfiguration requests;
    /// without one, tier attachment over RPC is rejected.
    pub catalog: Option<TierCatalog>,
    /// Retry/failover policy installed on the instance at server start
    /// (`None` leaves the instance's current policy untouched). A served
    /// instance typically wants [`RetryPolicy::robust`]: clients are remote
    /// and transient tier faults should be ridden out server-side.
    pub retry: Option<RetryPolicy>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("request_threads", &self.request_threads)
            .field("event_tick", &self.event_tick)
            .field("catalog", &self.catalog.is_some())
            .field("retry", &self.retry)
            .finish()
    }
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Poke the acceptor so it notices.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The Tiera RPC server.
pub struct TieraServer;

impl TieraServer {
    /// Starts serving `instance` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is on the handle).
    pub fn start(
        instance: Arc<Instance>,
        addr: &str,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let mut threads = Vec::new();
        let request_threads = if cfg.request_threads == 0 { 4 } else { cfg.request_threads };
        let event_tick = if cfg.event_tick.is_zero() {
            Duration::from_millis(20)
        } else {
            cfg.event_tick
        };
        let catalog = Arc::new(cfg.catalog);
        if let Some(retry) = cfg.retry {
            instance.set_retry_policy(retry);
        }

        // Request pool: the acceptor distributes connections to workers.
        let (conn_tx, conn_rx) = channel::unbounded::<TcpStream>();
        for worker in 0..request_threads {
            let conn_rx = conn_rx.clone();
            let instance = Arc::clone(&instance);
            let shutdown = Arc::clone(&shutdown);
            let catalog = Arc::clone(&catalog);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tiera-req-{worker}"))
                    .spawn(move || {
                        while let Ok(stream) = conn_rx.recv() {
                            if shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            let _ =
                                serve_connection(&instance, &catalog, stream, epoch, &shutdown);
                        }
                    })
                    .expect("spawn worker"),
            );
        }

        // Event thread: maps wall time onto virtual time and pumps.
        {
            let instance = Arc::clone(&instance);
            let shutdown = Arc::clone(&shutdown);
            let tick = event_tick;
            threads.push(
                std::thread::Builder::new()
                    .name("tiera-events".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            let now = wall_to_virtual(epoch);
                            instance.env().clock().advance_to(now);
                            let _ = instance.pump(instance.env().clock().now());
                            std::thread::sleep(tick);
                        }
                    })
                    .expect("spawn event thread"),
            );
        }

        // Acceptor.
        {
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("tiera-accept".into())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            if let Ok(stream) = stream {
                                let _ = conn_tx.send(stream);
                            }
                        }
                    })
                    .expect("spawn acceptor"),
            );
        }

        Ok(ServerHandle {
            addr: local,
            shutdown,
            threads,
        })
    }
}

fn wall_to_virtual(epoch: Instant) -> SimTime {
    SimTime::from_nanos(epoch.elapsed().as_nanos() as u64)
}

fn serve_connection(
    instance: &Arc<Instance>,
    catalog: &Option<TierCatalog>,
    stream: TcpStream,
    epoch: Instant,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // A short read timeout lets the worker notice shutdown while a client
    // holds the connection open idle (otherwise joining the pool would hang
    // until every client disconnects).
    stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while !shutdown.load(Ordering::Acquire) {
        match read_frame_interruptible(&mut reader, shutdown)? {
            FrameRead::Frame(frame) => {
                let response = match Request::decode(&frame) {
                    Ok(req) => handle(instance, catalog, req, epoch),
                    Err(e) => Response::Error {
                        message: format!("bad request: {e}"),
                    },
                };
                write_frame(&mut writer, &response.encode())?;
            }
            FrameRead::Eof | FrameRead::ShuttingDown => return Ok(()),
        }
    }
    Ok(())
}

enum FrameRead {
    Frame(Vec<u8>),
    Eof,
    ShuttingDown,
}

/// Like [`read_frame`] but tolerant of read timeouts: partial progress is
/// preserved across timeouts, and the shutdown flag is honored while idle.
fn read_frame_interruptible<R: io::Read>(
    r: &mut R,
    shutdown: &AtomicBool,
) -> io::Result<FrameRead> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Eof),
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-header")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(FrameRead::ShuttingDown);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > crate::proto::MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too big"));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-frame")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(payload))
}

fn handle(
    instance: &Arc<Instance>,
    catalog: &Option<TierCatalog>,
    req: Request,
    epoch: Instant,
) -> Response {
    let now = {
        // Never let a request run "before" already-published virtual time.
        let wall = wall_to_virtual(epoch);
        instance.env().clock().advance_to(wall)
    };
    match req {
        Request::Ping => Response::Pong,
        Request::Put { key, value, tags } => {
            let opts = PutOptions {
                tags: tags.iter().map(Tag::new).collect(),
            };
            match instance.put_with(key.as_str(), value, opts, now) {
                Ok(r) => Response::PutOk {
                    latency_ns: r.latency.as_nanos(),
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Get { key } => match instance.get(key.as_str(), now) {
            Ok((value, r)) => Response::GetOk {
                value: value.to_vec(),
                latency_ns: r.latency.as_nanos(),
                served_by: r.served_by,
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Delete { key } => match instance.delete(key.as_str(), now) {
            Ok(latency) => Response::Deleted {
                latency_ns: latency.as_nanos(),
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Stats => {
            let reads = instance.stats().reads();
            let writes = instance.stats().writes();
            let (events, _, _) = instance.stats().dispatch_counters();
            Response::Stats {
                objects: instance.registry().len() as u64,
                reads: reads.count,
                writes: writes.count,
                events,
            }
        }
        Request::AddRule { spec_text } => {
            // Parse the event clause, run the spec analyzer against the
            // instance's live tier set, compile, and install through the
            // core's checked front door — the same validation pipeline a
            // spec file gets at compile time (paper §4.2.3).
            match tiera_spec::parse_event(&spec_text) {
                Ok(decl) => {
                    let empty = TierCatalog::new();
                    let compiler =
                        tiera_spec::Compiler::new(&empty, instance.env().clone());
                    match compiler.compile_event_checked(&decl, &instance.tier_names()) {
                        Ok(rule) => match instance.install_rule(rule) {
                            Ok(id) => Response::RuleAdded { rule_id: id.0 },
                            Err(e) => Response::Error {
                                message: e.to_string(),
                            },
                        },
                        Err(e) => Response::Error {
                            message: e.to_string(),
                        },
                    }
                }
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::RemoveRule { rule_id } => {
            if instance.policy().remove(tiera_core::policy::RuleId(rule_id)) {
                Response::Ok
            } else {
                Response::Error {
                    message: format!("no rule with id {rule_id}"),
                }
            }
        }
        Request::ListRules => Response::Rules {
            rules: instance
                .policy()
                .snapshot()
                .into_iter()
                .map(|(id, rule)| {
                    (
                        id.0,
                        rule.label.unwrap_or_else(|| format!("{:?}", rule.event)),
                    )
                })
                .collect(),
        },
        Request::AttachTier {
            type_name,
            label,
            capacity,
        } => match catalog {
            None => Response::Error {
                message: "server has no tier catalog; tier attachment disabled".into(),
            },
            Some(catalog) => match catalog.create(&type_name, &label, capacity) {
                Ok(tier) => match instance.attach_tier(tier) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
        },
        Request::DetachTier { label } => match instance.detach_tier(&label) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
    }
}
