//! The Tiera TCP server.
//!
//! Structure generalizes the paper's prototype (§3): worker threads
//! service client requests; a dedicated event thread evaluates timer
//! events and drains background responses. Wall-clock time is mapped 1:1
//! onto the instance's virtual clock so policies written in seconds behave
//! as expected when the server runs live.
//!
//! Two scheduling decisions differ from the thread-per-request pool the
//! paper describes, both driven by the BENCH_pr3 scaling regression:
//!
//! * **Sharded accept.** The acceptor round-robins incoming connections
//!   across per-worker queues; a connection is pinned to one worker for
//!   its lifetime. There is no shared dispatch queue for workers to
//!   contend on.
//! * **Per-connection read/write split (v2 only).** A pipelined
//!   connection is serviced by its pinned worker (reads, decodes, and
//!   executes requests in arrival order) plus a dedicated writer thread
//!   that drains a response queue, coalescing every queued response into
//!   one flush. A slow or large response therefore never head-of-line
//!   blocks the socket reads, and the syscall cost of a burst of small
//!   responses is amortized to a single flush.
//!
//! The first four bytes of a connection pick the framing: [`MAGIC`] opens
//! the v2 hello exchange (sequence-numbered frames, batching, pipelining);
//! anything else is a v1 frame length and the connection is served
//! single-shot exactly as before, so old clients keep working unmodified.
//!
//! Back-pressure rules: the per-connection response queue is unbounded in
//! queue length but bounded in practice by the client's in-flight window —
//! the server never reads ahead of execution (one request is decoded,
//! executed, and queued at a time), so a client with W requests in flight
//! can have at most W responses queued. On shutdown the reader stops
//! consuming frames, already-executed responses are drained and flushed by
//! the writer, and only then does the connection close — requests in
//! flight at shutdown either get a complete response frame or a clean EOF,
//! never a torn frame.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tiera_support::channel;

use tiera_core::catalog::TierCatalog;
use tiera_core::instance::{Instance, PutOptions};
use tiera_core::retry::RetryPolicy;
use tiera_core::object::Tag;
use tiera_sim::SimTime;

use crate::proto::{
    negotiate, split_seq, write_frame, write_seq_frame, Request, Response, MAGIC, PIPE_BUF,
};

/// Server configuration (the thread-pool sizes of paper §3).
#[derive(Clone, Default)]
pub struct ServerConfig {
    /// Threads servicing client requests — also the number of accept
    /// shards connections are pinned across (0 → default of 4).
    pub request_threads: usize,
    /// Period of the event thread's pump (zero → default of 20 ms).
    pub event_tick: Duration,
    /// Tier catalog used to resolve `AttachTier` reconfiguration requests;
    /// without one, tier attachment over RPC is rejected.
    pub catalog: Option<TierCatalog>,
    /// Retry/failover policy installed on the instance at server start
    /// (`None` leaves the instance's current policy untouched). A served
    /// instance typically wants [`RetryPolicy::robust`]: clients are remote
    /// and transient tier faults should be ridden out server-side.
    pub retry: Option<RetryPolicy>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("request_threads", &self.request_threads)
            .field("event_tick", &self.event_tick)
            .field("catalog", &self.catalog.is_some())
            .field("retry", &self.retry)
            .finish()
    }
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins all threads. Graceful: connections
    /// finish writing responses for requests already executed before
    /// closing.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Poke the acceptor so it notices.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The Tiera RPC server.
pub struct TieraServer;

impl TieraServer {
    /// Starts serving `instance` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is on the handle).
    pub fn start(
        instance: Arc<Instance>,
        addr: &str,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let mut threads = Vec::new();
        let request_threads = if cfg.request_threads == 0 { 4 } else { cfg.request_threads };
        let event_tick = if cfg.event_tick.is_zero() {
            Duration::from_millis(20)
        } else {
            cfg.event_tick
        };
        let catalog = Arc::new(cfg.catalog);
        if let Some(retry) = cfg.retry {
            instance.set_retry_policy(retry);
        }

        // Request shards: each worker owns a private connection queue; the
        // acceptor round-robins new connections across them, pinning each
        // connection to one worker for its lifetime (no shared dispatch
        // queue, no cross-worker contention on accept).
        let mut shard_txs = Vec::with_capacity(request_threads);
        for worker in 0..request_threads {
            let (conn_tx, conn_rx) = channel::unbounded::<TcpStream>();
            shard_txs.push(conn_tx);
            let instance = Arc::clone(&instance);
            let shutdown = Arc::clone(&shutdown);
            let catalog = Arc::clone(&catalog);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tiera-req-{worker}"))
                    .spawn(move || {
                        while let Ok(stream) = conn_rx.recv() {
                            if shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            let _ =
                                serve_connection(&instance, &catalog, stream, epoch, &shutdown);
                        }
                    })
                    .expect("spawn worker"),
            );
        }

        // Event thread: maps wall time onto virtual time and pumps.
        {
            let instance = Arc::clone(&instance);
            let shutdown = Arc::clone(&shutdown);
            let tick = event_tick;
            threads.push(
                std::thread::Builder::new()
                    .name("tiera-events".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            let now = wall_to_virtual(epoch);
                            instance.env().clock().advance_to(now);
                            let _ = instance.pump(instance.env().clock().now());
                            std::thread::sleep(tick);
                        }
                    })
                    .expect("spawn event thread"),
            );
        }

        // Acceptor: owns the shard senders; dropping them on exit releases
        // every idle worker from its queue.
        {
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("tiera-accept".into())
                    .spawn(move || {
                        let mut next = 0usize;
                        for stream in listener.incoming() {
                            if shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            if let Ok(stream) = stream {
                                let _ = shard_txs[next % shard_txs.len()].send(stream);
                                next += 1;
                            }
                        }
                    })
                    .expect("spawn acceptor"),
            );
        }

        Ok(ServerHandle {
            addr: local,
            shutdown,
            threads,
        })
    }
}

fn wall_to_virtual(epoch: Instant) -> SimTime {
    SimTime::from_nanos(epoch.elapsed().as_nanos() as u64)
}

/// Serves one connection: sniffs the first word to pick the framing, then
/// runs the matching loop until EOF, error, or shutdown.
fn serve_connection(
    instance: &Arc<Instance>,
    catalog: &Option<TierCatalog>,
    stream: TcpStream,
    epoch: Instant,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // A short read timeout lets the worker notice shutdown while a client
    // holds the connection open idle (otherwise joining the pool would hang
    // until every client disconnects).
    stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
    // Sized for the pipelined dialect's bursts; a v1 connection just
    // under-uses it.
    let mut reader = BufReader::with_capacity(PIPE_BUF, stream.try_clone()?);
    match read_word_interruptible(&mut reader, shutdown)? {
        WordRead::Word(word) if word == MAGIC => {
            serve_pipelined(instance, catalog, reader, stream, epoch, shutdown)
        }
        WordRead::Word(len) => {
            serve_single_shot(instance, catalog, reader, stream, epoch, shutdown, len)
        }
        WordRead::Eof | WordRead::ShuttingDown => Ok(()),
    }
}

/// The v1 loop: one request frame in, one response frame out, in lockstep.
/// `first_len` is the already-sniffed header of the first frame.
fn serve_single_shot(
    instance: &Arc<Instance>,
    catalog: &Option<TierCatalog>,
    mut reader: BufReader<TcpStream>,
    stream: TcpStream,
    epoch: Instant,
    shutdown: &AtomicBool,
    first_len: u32,
) -> io::Result<()> {
    let mut writer = BufWriter::new(stream);
    let mut pending_len = Some(first_len);
    while !shutdown.load(Ordering::Acquire) {
        let len = match pending_len.take() {
            Some(len) => len,
            None => match read_word_interruptible(&mut reader, shutdown)? {
                WordRead::Word(len) => len,
                WordRead::Eof | WordRead::ShuttingDown => return Ok(()),
            },
        };
        let frame = read_body_interruptible(&mut reader, len)?;
        let response = match Request::decode(&frame) {
            Ok(req) => handle(instance, catalog, req, epoch),
            Err(e) => Response::Error {
                message: format!("bad request: {e}"),
            },
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}

/// How many queued responses the writer drains into one flush, max. Keeps
/// a single flush bounded (latency) while still amortizing the syscall
/// over a burst.
const COALESCE_LIMIT: usize = 128;

/// The v2 loop. The worker thread reads sequence-numbered frames, decodes
/// and executes them in arrival order, and queues `(seq, encoded
/// response)` pairs; a per-connection writer thread drains the queue,
/// coalescing up to [`COALESCE_LIMIT`] responses per flush. On shutdown or
/// reader exit the queue is closed, the writer drains what was already
/// executed, flushes, and the connection closes — no torn frames.
fn serve_pipelined(
    instance: &Arc<Instance>,
    catalog: &Option<TierCatalog>,
    mut reader: BufReader<TcpStream>,
    stream: TcpStream,
    epoch: Instant,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    // Finish the hello: the MAGIC word was sniffed; the client's version
    // word follows. Reply with the granted version.
    let want = match read_word_interruptible(&mut reader, shutdown)? {
        WordRead::Word(v) => v,
        WordRead::Eof | WordRead::ShuttingDown => return Ok(()),
    };
    let granted = negotiate(want);
    {
        let mut hello = stream.try_clone()?;
        crate::proto::write_hello(&mut hello, granted)?;
    }
    if granted < 2 {
        // Unsatisfiable hello (a v1-only peer impersonating v2); refuse.
        return Ok(());
    }

    let (resp_tx, resp_rx) = channel::unbounded::<(u64, Vec<u8>)>();
    let writer_stream = stream.try_clone()?;
    let writer = std::thread::Builder::new()
        .name("tiera-conn-writer".into())
        .spawn(move || {
            let mut w = BufWriter::with_capacity(PIPE_BUF, writer_stream);
            'outer: while let Ok((seq, payload)) = resp_rx.recv() {
                if write_seq_frame(&mut w, seq, &payload).is_err() {
                    break;
                }
                // Coalesce: everything already queued goes out in the same
                // flush.
                for _ in 0..COALESCE_LIMIT {
                    match resp_rx.try_recv() {
                        Ok((seq, payload)) => {
                            if write_seq_frame(&mut w, seq, &payload).is_err() {
                                break 'outer;
                            }
                        }
                        Err(_) => break,
                    }
                }
                if w.flush().is_err() {
                    break;
                }
            }
            // Channel closed: responses for requests executed before
            // shutdown are already written; make sure they reach the wire.
            let _ = w.flush();
        })
        .map_err(io::Error::other)?;

    let mut framing_intact = true;
    while !shutdown.load(Ordering::Acquire) {
        let len = match read_word_interruptible(&mut reader, shutdown) {
            Ok(WordRead::Word(len)) => len,
            Ok(WordRead::Eof | WordRead::ShuttingDown) => break,
            Err(_) => {
                framing_intact = false;
                break;
            }
        };
        let frame = match read_body_interruptible(&mut reader, len) {
            Ok(frame) => frame,
            Err(_) => {
                framing_intact = false;
                break;
            }
        };
        let Ok((seq, payload)) = split_seq(&frame) else {
            // A frame too short to carry a sequence number cannot be
            // answered (there is nothing to address the error to); the
            // framing is broken, so close the connection.
            framing_intact = false;
            break;
        };
        let response = match Request::decode(payload) {
            Ok(req) => handle(instance, catalog, req, epoch),
            Err(e) => Response::Error {
                message: format!("bad request: {e}"),
            },
        };
        if resp_tx.send((seq, response.encode())).is_err() {
            break;
        }
    }
    drop(resp_tx);
    let _ = writer.join();
    if framing_intact {
        // Closing a socket with unread data in its receive buffer makes
        // the kernel answer with RST, which can discard responses the
        // writer just flushed before the client reads them. Requests the
        // client already pipelined but we will never execute are read and
        // discarded (bounded by the 50 ms socket timeout going idle), so
        // the close is a clean FIN and "in flight at shutdown" means a
        // complete response or a clean EOF — never a reset mid-drain.
        drain_unread_frames(&mut reader);
    }
    Ok(())
}

/// Reads and discards well-formed frames until the socket goes idle (one
/// read timeout), EOF, a malformed length shows up, or a 250 ms budget
/// runs out (a client that keeps streaming must not stall server
/// shutdown). See the shutdown contract in [`serve_pipelined`].
fn drain_unread_frames(reader: &mut BufReader<TcpStream>) {
    let budget = Instant::now();
    while budget.elapsed() < Duration::from_millis(250) {
        let mut word = [0u8; 4];
        let mut filled = 0usize;
        while filled < 4 {
            match reader.read(&mut word[filled..]) {
                Ok(0) => return,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // idle (timeout) or broken — stop draining
            }
        }
        let len = u32::from_le_bytes(word);
        if len as usize > crate::proto::MAX_FRAME {
            return;
        }
        if read_body_interruptible(reader, len).is_err() {
            return;
        }
    }
}

enum WordRead {
    Word(u32),
    Eof,
    ShuttingDown,
}

/// Reads one little-endian `u32` (a frame header or a hello word),
/// tolerant of read timeouts: partial progress is preserved across
/// timeouts, and the shutdown flag is honored while waiting.
fn read_word_interruptible<R: io::Read>(
    r: &mut R,
    shutdown: &AtomicBool,
) -> io::Result<WordRead> {
    let mut word = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut word[filled..]) {
            Ok(0) if filled == 0 => return Ok(WordRead::Eof),
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-header")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(WordRead::ShuttingDown);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(WordRead::Word(u32::from_le_bytes(word)))
}

/// Reads a frame body of `len` bytes (header already consumed), riding out
/// read timeouts: a frame whose header has arrived is expected to finish.
fn read_body_interruptible<R: io::Read>(r: &mut R, len: u32) -> io::Result<Vec<u8>> {
    let len = len as usize;
    if len > crate::proto::MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too big"));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-frame")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(payload)
}

fn do_put(instance: &Arc<Instance>, key: &str, value: Vec<u8>, tags: &[String], now: SimTime) -> Response {
    let opts = PutOptions {
        tags: tags.iter().map(Tag::new).collect(),
    };
    match instance.put_with(key, value, opts, now) {
        Ok(r) => Response::PutOk {
            latency_ns: r.latency.as_nanos(),
        },
        Err(e) => Response::Error {
            message: e.to_string(),
        },
    }
}

fn do_get(instance: &Arc<Instance>, key: &str, now: SimTime) -> Response {
    match instance.get(key, now) {
        Ok((value, r)) => Response::GetOk {
            value: value.to_vec(),
            latency_ns: r.latency.as_nanos(),
            served_by: r.served_by,
        },
        Err(e) => Response::Error {
            message: e.to_string(),
        },
    }
}

fn do_delete(instance: &Arc<Instance>, key: &str, now: SimTime) -> Response {
    match instance.delete(key, now) {
        Ok(latency) => Response::Deleted {
            latency_ns: latency.as_nanos(),
        },
        Err(e) => Response::Error {
            message: e.to_string(),
        },
    }
}

fn handle(
    instance: &Arc<Instance>,
    catalog: &Option<TierCatalog>,
    req: Request,
    epoch: Instant,
) -> Response {
    let now = {
        // Never let a request run "before" already-published virtual time.
        let wall = wall_to_virtual(epoch);
        instance.env().clock().advance_to(wall)
    };
    match req {
        Request::Ping => Response::Pong,
        Request::Put { key, value, tags } => do_put(instance, key.as_str(), value, &tags, now),
        Request::Get { key } => do_get(instance, key.as_str(), now),
        Request::Delete { key } => do_delete(instance, key.as_str(), now),
        Request::MultiPut { items } => Response::Batch {
            parts: items
                .into_iter()
                .map(|item| do_put(instance, item.key.as_str(), item.value, &item.tags, now))
                .collect(),
        },
        Request::MultiGet { keys } => Response::Batch {
            parts: keys
                .iter()
                .map(|key| do_get(instance, key.as_str(), now))
                .collect(),
        },
        Request::MultiDelete { keys } => Response::Batch {
            parts: keys
                .iter()
                .map(|key| do_delete(instance, key.as_str(), now))
                .collect(),
        },
        Request::Stats => {
            let reads = instance.stats().reads();
            let writes = instance.stats().writes();
            let (events, _, _) = instance.stats().dispatch_counters();
            Response::Stats {
                objects: instance.registry().len() as u64,
                reads: reads.count,
                writes: writes.count,
                events,
            }
        }
        Request::AddRule { spec_text } => {
            // Parse the event clause, run the spec analyzer against the
            // instance's live tier set, compile, and install through the
            // core's checked front door — the same validation pipeline a
            // spec file gets at compile time (paper §4.2.3).
            match tiera_spec::parse_event(&spec_text) {
                Ok(decl) => {
                    let empty = TierCatalog::new();
                    let compiler =
                        tiera_spec::Compiler::new(&empty, instance.env().clone());
                    match compiler.compile_event_checked(&decl, &instance.tier_names()) {
                        Ok(rule) => match instance.install_rule(rule) {
                            Ok(id) => Response::RuleAdded { rule_id: id.0 },
                            Err(e) => Response::Error {
                                message: e.to_string(),
                            },
                        },
                        Err(e) => Response::Error {
                            message: e.to_string(),
                        },
                    }
                }
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::RemoveRule { rule_id } => {
            if instance.policy().remove(tiera_core::policy::RuleId(rule_id)) {
                Response::Ok
            } else {
                Response::Error {
                    message: format!("no rule with id {rule_id}"),
                }
            }
        }
        Request::ListRules => Response::Rules {
            rules: instance
                .policy()
                .snapshot()
                .into_iter()
                .map(|(id, rule)| {
                    (
                        id.0,
                        rule.label.unwrap_or_else(|| format!("{:?}", rule.event)),
                    )
                })
                .collect(),
        },
        Request::AttachTier {
            type_name,
            label,
            capacity,
        } => match catalog {
            None => Response::Error {
                message: "server has no tier catalog; tier attachment disabled".into(),
            },
            Some(catalog) => match catalog.create(&type_name, &label, capacity) {
                Ok(tier) => match instance.attach_tier(tier) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
        },
        Request::DetachTier { label } => match instance.detach_tier(&label) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
    }
}
