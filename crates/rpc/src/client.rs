//! Clients: blocking single-shot TCP, pipelined TCP, and in-process
//! loopback.
//!
//! [`TieraClient`] speaks the v1 single-shot framing (one request, one
//! response, in lockstep) and stays wire-compatible with pre-pipeline
//! servers. It applies a per-request read deadline and reconnects after
//! any transport error: a request torn mid-frame (or a server killed
//! mid-request) fails that one call instead of wedging the connection
//! forever.
//!
//! [`PipelinedClient`] negotiates protocol v2 and keeps many requests in
//! flight on one connection: [`PipelinedClient::submit`] queues a
//! sequence-numbered frame (coalesced with its neighbors into one write),
//! [`PipelinedClient::wait`] demultiplexes responses by sequence number —
//! completions may arrive in any order. Batch helpers
//! (`multi_put`/`multi_get`/`multi_delete`) pack up to [`MAX_BATCH`]
//! operations into a single frame with per-item outcomes.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use tiera_core::instance::{Instance, PutOptions};
use tiera_core::object::Tag;
use tiera_sim::SimDuration;
use tiera_support::collections::{FxHashMap, FxHashSet};

use crate::proto::{
    read_frame, read_hello, split_seq, write_frame, write_hello, write_seq_frame, PutItem,
    Request, Response, MAX_BATCH, PIPE_BUF, VERSION,
};

/// Default per-request read deadline for both TCP clients: generous enough
/// for a loaded server, finite so a dead one cannot wedge the caller.
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(10);

/// Outcome of a client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReceipt {
    /// Virtual latency the middleware charged.
    pub latency: SimDuration,
    /// For GETs, the serving tier.
    pub served_by: Option<String>,
}

fn unexpected(resp: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

// Shared response interpretation, so the single-shot, pipelined, and batch
// paths agree on semantics.

fn as_pong(resp: Response) -> io::Result<()> {
    match resp {
        Response::Pong => Ok(()),
        Response::Error { message } => Err(io::Error::other(message)),
        other => Err(unexpected(other)),
    }
}

fn as_put(resp: Response) -> io::Result<ClientReceipt> {
    match resp {
        Response::PutOk { latency_ns } => Ok(ClientReceipt {
            latency: SimDuration::from_nanos(latency_ns),
            served_by: None,
        }),
        Response::Error { message } => Err(io::Error::other(message)),
        other => Err(unexpected(other)),
    }
}

fn as_get(resp: Response) -> io::Result<(Vec<u8>, ClientReceipt)> {
    match resp {
        Response::GetOk {
            value,
            latency_ns,
            served_by,
        } => Ok((
            value,
            ClientReceipt {
                latency: SimDuration::from_nanos(latency_ns),
                served_by: Some(served_by),
            },
        )),
        Response::Error { message } => Err(io::Error::other(message)),
        other => Err(unexpected(other)),
    }
}

fn as_delete(resp: Response) -> io::Result<ClientReceipt> {
    match resp {
        Response::Deleted { latency_ns } => Ok(ClientReceipt {
            latency: SimDuration::from_nanos(latency_ns),
            served_by: None,
        }),
        Response::Error { message } => Err(io::Error::other(message)),
        other => Err(unexpected(other)),
    }
}

/// Unpacks a `Batch` response into per-item outcomes via `interpret`,
/// enforcing that the server answered every item.
fn as_batch<T>(
    resp: Response,
    expected: usize,
    interpret: impl Fn(Response) -> io::Result<T>,
) -> io::Result<Vec<io::Result<T>>> {
    match resp {
        Response::Batch { parts } => {
            if parts.len() != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("batch answered {} of {expected} items", parts.len()),
                ));
            }
            Ok(parts.into_iter().map(&interpret).collect())
        }
        Response::Error { message } => Err(io::Error::other(message)),
        other => Err(unexpected(other)),
    }
}

fn check_batch_len(len: usize) -> io::Result<()> {
    if len > MAX_BATCH {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("batch of {len} exceeds MAX_BATCH ({MAX_BATCH})"),
        ));
    }
    Ok(())
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn open_conn(addr: SocketAddr, deadline: Option<Duration>) -> io::Result<Conn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(deadline)?;
    Ok(Conn {
        reader: BufReader::new(stream.try_clone()?),
        writer: BufWriter::new(stream),
    })
}

/// A blocking TCP client speaking the v1 single-shot framing.
///
/// Robustness: every call carries the configured read deadline, and any
/// transport error (timeout, torn frame, connection reset) poisons the
/// connection — the failing call returns the error, and the next call
/// transparently reconnects. In-flight state is never reused across a
/// reconnect, so a desynchronized frame stream cannot misattribute
/// responses.
pub struct TieraClient {
    addr: SocketAddr,
    deadline: Option<Duration>,
    conn: Option<Conn>,
    redials: u64,
}

impl TieraClient {
    /// Connects to a Tiera server with the default read deadline.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_deadline(addr, Some(DEFAULT_READ_DEADLINE))
    }

    /// Connects with an explicit per-request read deadline (`None` waits
    /// forever, the pre-pipeline behavior).
    pub fn connect_with_deadline(
        addr: impl ToSocketAddrs,
        deadline: Option<Duration>,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(deadline)?;
        Ok(Self {
            addr,
            deadline,
            conn: Some(Conn {
                reader: BufReader::new(stream.try_clone()?),
                writer: BufWriter::new(stream),
            }),
            redials: 0,
        })
    }

    /// Whether a live connection is currently held (false after a
    /// transport error, until the next call reconnects).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// How many times this client has transparently reconnected after a
    /// transport error. A redial means the previous request's fate is
    /// unknown — it may or may not have been applied — so any
    /// non-idempotent retry issued after a redial must carry an
    /// idempotency token (see `tiera-cluster`'s routed DELETE).
    pub fn redials(&self) -> u64 {
        self.redials
    }

    fn call(&mut self, req: &Request) -> io::Result<Response> {
        let result = self.try_call(req);
        if result.is_err() {
            // Transport state is unknowable after any error (a late
            // response could still arrive and desynchronize framing):
            // drop the connection; the next call redials.
            self.conn = None;
        }
        result
    }

    fn try_call(&mut self, req: &Request) -> io::Result<Response> {
        if self.conn.is_none() {
            self.conn = Some(open_conn(self.addr, self.deadline)?);
            self.redials += 1;
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        write_frame(&mut conn.writer, &req.encode())?;
        let frame = read_frame(&mut conn.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        Response::decode(&frame)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        as_pong(self.call(&Request::Ping)?)
    }

    /// Stores an object.
    pub fn put(&mut self, key: &str, value: &[u8]) -> io::Result<ClientReceipt> {
        self.put_tagged(key, value, &[])
    }

    /// Stores an object with tags.
    pub fn put_tagged(
        &mut self,
        key: &str,
        value: &[u8],
        tags: &[&str],
    ) -> io::Result<ClientReceipt> {
        let req = Request::Put {
            key: key.to_string(),
            value: value.to_vec(),
            tags: tags.iter().map(|s| s.to_string()).collect(),
        };
        as_put(self.call(&req)?)
    }

    /// Fetches an object.
    pub fn get(&mut self, key: &str) -> io::Result<(Vec<u8>, ClientReceipt)> {
        as_get(self.call(&Request::Get {
            key: key.to_string(),
        })?)
    }

    /// Deletes an object.
    pub fn delete(&mut self, key: &str) -> io::Result<ClientReceipt> {
        as_delete(self.call(&Request::Delete {
            key: key.to_string(),
        })?)
    }

    /// Fetches `(objects, reads, writes, events)` counters.
    pub fn stats(&mut self) -> io::Result<(u64, u64, u64, u64)> {
        match self.call(&Request::Stats)? {
            Response::Stats {
                objects,
                reads,
                writes,
                events,
            } => Ok((objects, reads, writes, events)),
            other => Err(unexpected(other)),
        }
    }

    // ---- runtime reconfiguration (paper §4.2.3) ----

    /// Installs a policy rule from specification text
    /// (`event(...) : response { ... }`); returns its rule id.
    pub fn add_rule(&mut self, spec_text: &str) -> io::Result<u64> {
        match self.call(&Request::AddRule {
            spec_text: spec_text.to_string(),
        })? {
            Response::RuleAdded { rule_id } => Ok(rule_id),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Removes a rule by id.
    pub fn remove_rule(&mut self, rule_id: u64) -> io::Result<()> {
        match self.call(&Request::RemoveRule { rule_id })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Lists installed rules as `(id, label)` pairs.
    pub fn list_rules(&mut self) -> io::Result<Vec<(u64, String)>> {
        match self.call(&Request::ListRules)? {
            Response::Rules { rules } => Ok(rules),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Attaches a tier resolved through the server's catalog.
    pub fn attach_tier(&mut self, type_name: &str, label: &str, capacity: u64) -> io::Result<()> {
        match self.call(&Request::AttachTier {
            type_name: type_name.to_string(),
            label: label.to_string(),
            capacity,
        })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Detaches a tier by label.
    pub fn detach_tier(&mut self, label: &str) -> io::Result<()> {
        match self.call(&Request::DetachTier {
            label: label.to_string(),
        })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }
}

/// Handle for one in-flight pipelined request; redeem it with
/// [`PipelinedClient::wait`] (or a typed `wait_*` helper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token(u64);

impl Token {
    /// The request's wire sequence number.
    pub fn seq(self) -> u64 {
        self.0
    }
}

/// A pipelined TCP client speaking protocol v2.
///
/// Many requests may be in flight on the one connection: `submit` encodes
/// a sequence-numbered frame into the send buffer (several submits
/// coalesce into one write syscall), `wait` flushes and then reads
/// responses, matching them to tokens by sequence number — out-of-order
/// completion is handled by parking early responses until their token is
/// redeemed.
///
/// Unlike [`TieraClient`] there is no transparent reconnect: in-flight
/// requests cannot be safely replayed (a PUT may or may not have been
/// applied), so after a transport error every `wait` fails and the caller
/// decides what to re-issue on a fresh connection.
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    version: u32,
    next_seq: u64,
    /// Sequence numbers submitted and not yet redeemed or received.
    awaiting: FxHashSet<u64>,
    /// Responses received while waiting for an earlier token.
    parked: FxHashMap<u64, Response>,
}

impl std::fmt::Debug for PipelinedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedClient")
            .field("version", &self.version)
            .field("next_seq", &self.next_seq)
            .field("in_flight", &self.awaiting.len())
            .finish()
    }
}

impl PipelinedClient {
    /// Connects and negotiates protocol v2 with the default read deadline.
    ///
    /// Fails with a clean error (rather than a hang or a garbage decode)
    /// when the server only speaks the v1 framing; callers can fall back
    /// to [`TieraClient`] in that case.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_deadline(addr, Some(DEFAULT_READ_DEADLINE))
    }

    /// Connects with an explicit per-request read deadline.
    pub fn connect_with_deadline(
        addr: impl ToSocketAddrs,
        deadline: Option<Duration>,
    ) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(deadline)?;
        write_hello(&mut stream, VERSION)?;
        // A pipelined connection moves bursts of frames in each direction;
        // generous buffers keep a full pipeline window per syscall.
        let mut reader = BufReader::with_capacity(PIPE_BUF, stream.try_clone()?);
        let granted = read_hello(&mut reader).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("handshake failed ({e}); server may only speak the v1 single-shot framing"),
            )
        })?;
        if !(2..=VERSION).contains(&granted) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("server refused pipelined protocol (granted version {granted})"),
            ));
        }
        Ok(Self {
            reader,
            writer: BufWriter::with_capacity(PIPE_BUF, stream),
            version: granted,
            next_seq: 0,
            awaiting: FxHashSet::default(),
            parked: FxHashMap::default(),
        })
    }

    /// The negotiated protocol version (currently always 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Requests submitted but not yet redeemed by a `wait`.
    pub fn in_flight(&self) -> usize {
        self.awaiting.len()
    }

    /// Queues a request without waiting for its response. The frame lands
    /// in the send buffer — neighbors coalesce into one write — and is
    /// guaranteed on the wire after [`PipelinedClient::flush`] (which
    /// `wait` performs implicitly).
    pub fn submit(&mut self, req: &Request) -> io::Result<Token> {
        let seq = self.next_seq;
        self.next_seq += 1;
        write_seq_frame(&mut self.writer, seq, &req.encode())?;
        self.awaiting.insert(seq);
        Ok(Token(seq))
    }

    /// Forces buffered request frames onto the wire.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Waits for the response to `token`, reading (and parking) any other
    /// responses that arrive first.
    pub fn wait(&mut self, token: Token) -> io::Result<Response> {
        if let Some(resp) = self.parked.remove(&token.0) {
            return Ok(resp);
        }
        if !self.awaiting.contains(&token.0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("token {} is not in flight", token.0),
            ));
        }
        self.writer.flush()?;
        loop {
            let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed")
            })?;
            let (seq, payload) = split_seq(&frame)?;
            if !self.awaiting.remove(&seq) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for unknown sequence number {seq}"),
                ));
            }
            let resp = Response::decode(payload)?;
            if seq == token.0 {
                return Ok(resp);
            }
            self.parked.insert(seq, resp);
        }
    }

    // ---- typed submit/wait pairs ----

    /// Queues a PUT.
    pub fn submit_put(&mut self, key: &str, value: &[u8]) -> io::Result<Token> {
        self.submit_put_tagged(key, value, &[])
    }

    /// Queues a tagged PUT.
    pub fn submit_put_tagged(
        &mut self,
        key: &str,
        value: &[u8],
        tags: &[&str],
    ) -> io::Result<Token> {
        self.submit(&Request::Put {
            key: key.to_string(),
            value: value.to_vec(),
            tags: tags.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Queues a GET.
    pub fn submit_get(&mut self, key: &str) -> io::Result<Token> {
        self.submit(&Request::Get {
            key: key.to_string(),
        })
    }

    /// Queues a DELETE.
    pub fn submit_delete(&mut self, key: &str) -> io::Result<Token> {
        self.submit(&Request::Delete {
            key: key.to_string(),
        })
    }

    /// Redeems a PUT token.
    pub fn wait_put(&mut self, token: Token) -> io::Result<ClientReceipt> {
        as_put(self.wait(token)?)
    }

    /// Redeems a GET token.
    pub fn wait_get(&mut self, token: Token) -> io::Result<(Vec<u8>, ClientReceipt)> {
        as_get(self.wait(token)?)
    }

    /// Redeems a DELETE token.
    pub fn wait_delete(&mut self, token: Token) -> io::Result<ClientReceipt> {
        as_delete(self.wait(token)?)
    }

    /// Round-trip liveness probe (submits and waits).
    pub fn ping(&mut self) -> io::Result<()> {
        let token = self.submit(&Request::Ping)?;
        as_pong(self.wait(token)?)
    }

    // ---- batch helpers ----

    /// Stores up to [`MAX_BATCH`] objects in one frame; returns per-item
    /// outcomes in order (partial failure is per item, not per batch).
    pub fn multi_put(
        &mut self,
        items: &[(&str, &[u8])],
    ) -> io::Result<Vec<io::Result<ClientReceipt>>> {
        check_batch_len(items.len())?;
        let req = Request::MultiPut {
            items: items
                .iter()
                .map(|(key, value)| PutItem {
                    key: key.to_string(),
                    value: value.to_vec(),
                    tags: Vec::new(),
                })
                .collect(),
        };
        let token = self.submit(&req)?;
        as_batch(self.wait(token)?, items.len(), as_put)
    }

    /// Fetches up to [`MAX_BATCH`] objects in one frame; per-item outcomes
    /// in key order.
    pub fn multi_get(
        &mut self,
        keys: &[&str],
    ) -> io::Result<Vec<io::Result<(Vec<u8>, ClientReceipt)>>> {
        check_batch_len(keys.len())?;
        let req = Request::MultiGet {
            keys: keys.iter().map(|k| k.to_string()).collect(),
        };
        let token = self.submit(&req)?;
        as_batch(self.wait(token)?, keys.len(), as_get)
    }

    /// Deletes up to [`MAX_BATCH`] objects in one frame; per-item outcomes
    /// in key order.
    pub fn multi_delete(
        &mut self,
        keys: &[&str],
    ) -> io::Result<Vec<io::Result<ClientReceipt>>> {
        check_batch_len(keys.len())?;
        let req = Request::MultiDelete {
            keys: keys.iter().map(|k| k.to_string()).collect(),
        };
        let token = self.submit(&req)?;
        as_batch(self.wait(token)?, keys.len(), as_delete)
    }
}

/// In-process client with the same surface as [`TieraClient`], for
/// colocated deployments (paper: the server "can be co-located with the
/// application on the same EC2 instance").
pub struct LocalClient {
    instance: Arc<Instance>,
}

impl LocalClient {
    /// Wraps an instance.
    pub fn new(instance: Arc<Instance>) -> Self {
        Self { instance }
    }

    fn now(&self) -> tiera_sim::SimTime {
        self.instance.env().clock().now()
    }

    /// Stores an object.
    pub fn put(&self, key: &str, value: &[u8]) -> io::Result<ClientReceipt> {
        self.put_tagged(key, value, &[])
    }

    /// Stores an object with tags.
    pub fn put_tagged(&self, key: &str, value: &[u8], tags: &[&str]) -> io::Result<ClientReceipt> {
        let opts = PutOptions {
            tags: tags.iter().map(Tag::new).collect(),
        };
        self.instance
            .put_with(key, value.to_vec(), opts, self.now())
            .map(|r| ClientReceipt {
                latency: r.latency,
                served_by: None,
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Fetches an object.
    pub fn get(&self, key: &str) -> io::Result<(Vec<u8>, ClientReceipt)> {
        self.instance
            .get(key, self.now())
            .map(|(v, r)| {
                (
                    v.to_vec(),
                    ClientReceipt {
                        latency: r.latency,
                        served_by: Some(r.served_by),
                    },
                )
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Deletes an object.
    pub fn delete(&self, key: &str) -> io::Result<ClientReceipt> {
        self.instance
            .delete(key, self.now())
            .map(|latency| ClientReceipt {
                latency,
                served_by: None,
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Stores several objects, mirroring [`PipelinedClient::multi_put`]'s
    /// per-item outcome shape.
    pub fn multi_put(
        &self,
        items: &[(&str, &[u8])],
    ) -> io::Result<Vec<io::Result<ClientReceipt>>> {
        check_batch_len(items.len())?;
        Ok(items.iter().map(|(k, v)| self.put(k, v)).collect())
    }

    /// Fetches several objects, mirroring [`PipelinedClient::multi_get`].
    pub fn multi_get(
        &self,
        keys: &[&str],
    ) -> io::Result<Vec<io::Result<(Vec<u8>, ClientReceipt)>>> {
        check_batch_len(keys.len())?;
        Ok(keys.iter().map(|k| self.get(k)).collect())
    }

    /// Deletes several objects, mirroring [`PipelinedClient::multi_delete`].
    pub fn multi_delete(&self, keys: &[&str]) -> io::Result<Vec<io::Result<ClientReceipt>>> {
        check_batch_len(keys.len())?;
        Ok(keys.iter().map(|k| self.delete(k)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, TieraServer};
    use tiera_core::prelude::*;
    use tiera_sim::SimEnv;

    fn instance() -> Arc<Instance> {
        InstanceBuilder::new("rpc", SimEnv::new(61))
            .tier(MemTier::with_capacity("t1", 64 << 20))
            .build()
            .unwrap()
    }

    #[test]
    fn server_start_installs_the_configured_retry_policy() {
        let inst = instance();
        assert!(inst.retry_policy().is_trivial(), "instances default to no retries");
        let handle = TieraServer::start(
            Arc::clone(&inst),
            "127.0.0.1:0",
            ServerConfig {
                retry: Some(RetryPolicy::robust()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(inst.retry_policy(), RetryPolicy::robust());
        // And the served data path still works under the non-trivial policy.
        let mut client = TieraClient::connect(handle.addr()).unwrap();
        client.put("k", b"v").unwrap();
        let (value, _) = client.get("k").unwrap();
        assert_eq!(value, b"v");
        handle.shutdown();
        // `retry: None` leaves an existing policy untouched.
        let inst2 = instance();
        inst2.set_retry_policy(RetryPolicy::robust());
        let handle2 =
            TieraServer::start(Arc::clone(&inst2), "127.0.0.1:0", ServerConfig::default())
                .unwrap();
        assert_eq!(inst2.retry_policy(), RetryPolicy::robust());
        handle2.shutdown();
    }

    #[test]
    fn tcp_roundtrip() {
        let inst = instance();
        let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TieraClient::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        client.put("greeting", b"hello tiera").unwrap();
        let (value, receipt) = client.get("greeting").unwrap();
        assert_eq!(value, b"hello tiera");
        assert_eq!(receipt.served_by.as_deref(), Some("t1"));
        client.delete("greeting").unwrap();
        let err = client.get("greeting").unwrap_err();
        assert!(err.to_string().contains("no such object"), "{err}");
        let (objects, reads, writes, _) = client.stats().unwrap();
        assert_eq!(objects, 0);
        assert!(reads >= 1 && writes >= 1);
        handle.shutdown();
    }

    #[test]
    fn pipelined_roundtrip_and_batches() {
        let inst = instance();
        let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = PipelinedClient::connect(handle.addr()).unwrap();
        assert_eq!(client.version(), VERSION);
        client.ping().unwrap();

        // Pipelined: 32 puts in flight at once, then their gets.
        let puts: Vec<Token> = (0..32)
            .map(|i| {
                client
                    .submit_put(&format!("k{i}"), format!("v{i}").as_bytes())
                    .unwrap()
            })
            .collect();
        assert_eq!(client.in_flight(), 32);
        for t in puts {
            client.wait_put(t).unwrap();
        }
        let gets: Vec<Token> = (0..32).map(|i| client.submit_get(&format!("k{i}")).unwrap()).collect();
        for (i, t) in gets.into_iter().enumerate() {
            let (v, r) = client.wait_get(t).unwrap();
            assert_eq!(v, format!("v{i}").as_bytes());
            assert_eq!(r.served_by.as_deref(), Some("t1"));
        }
        assert_eq!(client.in_flight(), 0);

        // Batch round trip with a per-item miss in the middle.
        let outcomes = client
            .multi_put(&[("a", b"1".as_ref()), ("b", b"2".as_ref())])
            .unwrap();
        assert!(outcomes.iter().all(|o| o.is_ok()));
        let fetched = client.multi_get(&["a", "missing", "b"]).unwrap();
        assert_eq!(fetched[0].as_ref().unwrap().0, b"1");
        assert!(fetched[1].is_err());
        assert_eq!(fetched[2].as_ref().unwrap().0, b"2");
        let deleted = client.multi_delete(&["a", "b", "a"]).unwrap();
        assert!(deleted[0].is_ok() && deleted[1].is_ok());
        assert!(deleted[2].is_err(), "second delete of `a` must fail");
        handle.shutdown();
    }

    #[test]
    fn waiting_a_redeemed_token_is_an_error() {
        let inst = instance();
        let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = PipelinedClient::connect(handle.addr()).unwrap();
        let t = client.submit_put("k", b"v").unwrap();
        client.wait_put(t).unwrap();
        let err = client.wait(t).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        handle.shutdown();
    }

    #[test]
    fn concurrent_tcp_clients() {
        let inst = instance();
        let handle = TieraServer::start(
            inst,
            "127.0.0.1:0",
            ServerConfig {
                request_threads: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        let mut joins = Vec::new();
        for c in 0..4 {
            joins.push(std::thread::spawn(move || {
                let mut client = TieraClient::connect(addr).unwrap();
                for i in 0..50 {
                    let key = format!("c{c}-k{i}");
                    client.put(&key, format!("v{i}").as_bytes()).unwrap();
                    let (v, _) = client.get(&key).unwrap();
                    assert_eq!(v, format!("v{i}").as_bytes());
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut client = TieraClient::connect(addr).unwrap();
        let (objects, ..) = client.stats().unwrap();
        assert_eq!(objects, 200);
        handle.shutdown();
    }

    #[test]
    fn hammer_request_pool_with_mixed_ops() {
        // Four clients hammer the 4-shard request pool with put/get/
        // delete while the server's event thread pumps concurrently; the
        // sharded registry's incremental aggregates must match a recount
        // afterwards, and surviving keys must be readable.
        let inst = instance();
        let handle = TieraServer::start(
            Arc::clone(&inst),
            "127.0.0.1:0",
            ServerConfig {
                request_threads: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        let joins: Vec<_> = (0..4)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = TieraClient::connect(addr).unwrap();
                    for i in 0..120u64 {
                        let key = format!("c{c}-k{}", i % 30);
                        client.put(&key, format!("v{c}-{i}").as_bytes()).unwrap();
                        let (v, _) = client.get(&key).unwrap();
                        assert_eq!(v, format!("v{c}-{i}").as_bytes());
                        if i % 5 == 0 {
                            client.delete(&key).unwrap();
                        }
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let reg = inst.registry();
        assert_eq!(
            reg.aggregates("t1"),
            reg.recount_aggregates("t1"),
            "aggregates drifted under the RPC pool"
        );
        // 30 keys per client; every 5th iteration deletes, and 120 % 5 == 0
        // hits keys 0,5,10,... — exact survivor count is deterministic per
        // client: keys whose final write index i (90..119) satisfies
        // i % 5 != 0. Just assert registry and stats agree instead.
        let mut client = TieraClient::connect(addr).unwrap();
        let (objects, ..) = client.stats().unwrap();
        assert_eq!(objects as usize, reg.len());
        for key in reg.keys_in("t1") {
            client.get(key.as_str()).unwrap();
        }
        handle.shutdown();
    }

    #[test]
    fn server_policies_run_in_wall_time() {
        // A 50 ms write-back timer fires while the server runs live.
        let env = SimEnv::new(62);
        let inst = InstanceBuilder::new("timed", env)
            .tier(MemTier::with_capacity("fast", 64 << 20))
            .tier(MemTier::with_traits(
                "slow",
                64 << 20,
                TierTraits {
                    durable: true,
                    availability_zone: "zone-a".into(),
                    class: tiera_sim::StorageClass::BlockStore,
                },
            ))
            .rule(
                Rule::on(EventKind::timer(SimDuration::from_millis(50))).respond(
                    ResponseSpec::copy(
                        Selector::InTier("fast".into()).and(Selector::Dirty),
                        ["slow"],
                    ),
                ),
            )
            .build()
            .unwrap();
        let handle =
            TieraServer::start(Arc::clone(&inst), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TieraClient::connect(handle.addr()).unwrap();
        client.put("wb", b"dirty-data").unwrap();
        // Wait out a couple of timer periods in wall time.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let meta = inst.registry().get(&"wb".into()).unwrap();
        assert!(meta.in_tier("slow"), "write-back ran live: {meta:?}");
        handle.shutdown();
    }

    #[test]
    fn runtime_reconfiguration_over_tcp() {
        // The Figure 17 flow, but entirely over the wire: swap the policy
        // and the tier set on a live server.
        let env = SimEnv::new(63);
        let inst = InstanceBuilder::new("reconf", env.clone())
            .tier(MemTier::with_capacity("memcached", 64 << 20))
            .tier(MemTier::with_capacity("ebs", 64 << 20))
            .build()
            .unwrap();
        let mut catalog = tiera_core::catalog::TierCatalog::new();
        catalog.register("Mem", |label, cap| {
            MemTier::with_capacity(label, cap) as tiera_core::tier::TierHandle
        });
        let handle = TieraServer::start(
            Arc::clone(&inst),
            "127.0.0.1:0",
            ServerConfig {
                catalog: Some(catalog),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = TieraClient::connect(handle.addr()).unwrap();

        // Install a write-through rule from spec text.
        let rule_id = client
            .add_rule(
                "event(insert.into) : response {
                     store(what: insert.object, to: [memcached, ebs]);
                 }",
            )
            .unwrap();
        client.put("k1", b"v1").unwrap();
        let meta = inst.registry().get(&"k1".into()).unwrap();
        assert!(meta.in_tier("memcached") && meta.in_tier("ebs"));

        // Attach a new tier through the catalog, swap the rule for one
        // targeting it, and verify placement follows.
        client.attach_tier("Mem", "ephemeral", 64 << 20).unwrap();
        client.remove_rule(rule_id).unwrap();
        let id2 = client
            .add_rule(
                "event(insert.into) : response {
                     store(what: insert.object, to: [memcached, ephemeral]);
                 }",
            )
            .unwrap();
        client.detach_tier("ebs").unwrap();
        client.put("k2", b"v2").unwrap();
        let meta = inst.registry().get(&"k2".into()).unwrap();
        assert!(meta.in_tier("ephemeral") && !meta.in_tier("ebs"));

        let rules = client.list_rules().unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].0, id2);

        // Error paths surface as io errors with the server's message.
        assert!(client.add_rule("event(bogus) : response {}").is_err());
        assert!(client.remove_rule(9999).is_err());
        assert!(client.attach_tier("Tape", "t", 1).is_err());
        assert!(client.detach_tier("missing").is_err());
        handle.shutdown();
    }

    #[test]
    fn attach_tier_rejected_without_catalog() {
        let inst = instance();
        let handle =
            TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TieraClient::connect(handle.addr()).unwrap();
        let err = client.attach_tier("Mem", "x", 1 << 20).unwrap_err();
        assert!(err.to_string().contains("no tier catalog"), "{err}");
        handle.shutdown();
    }

    #[test]
    fn local_client_matches_tcp_semantics() {
        let inst = instance();
        let client = LocalClient::new(Arc::clone(&inst));
        client.put_tagged("k", b"v", &["tmp"]).unwrap();
        let (v, r) = client.get("k").unwrap();
        assert_eq!(v, b"v");
        assert_eq!(r.served_by.as_deref(), Some("t1"));
        client.delete("k").unwrap();
        assert!(client.get("k").is_err());
        // Batch surface mirrors the pipelined client's shape.
        let outcomes = client.multi_put(&[("a", b"1".as_ref()), ("b", b"2".as_ref())]).unwrap();
        assert!(outcomes.iter().all(|o| o.is_ok()));
        let fetched = client.multi_get(&["a", "gone", "b"]).unwrap();
        assert!(fetched[0].is_ok() && fetched[1].is_err() && fetched[2].is_ok());
        let deleted = client.multi_delete(&["a", "b"]).unwrap();
        assert!(deleted.iter().all(|o| o.is_ok()));
    }
}
