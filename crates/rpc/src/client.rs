//! Clients: blocking TCP and in-process loopback.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use tiera_core::instance::{Instance, PutOptions};
use tiera_core::object::Tag;
use tiera_sim::SimDuration;

use crate::proto::{read_frame, write_frame, Request, Response};

/// Outcome of a client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReceipt {
    /// Virtual latency the middleware charged.
    pub latency: SimDuration,
    /// For GETs, the serving tier.
    pub served_by: Option<String>,
}

/// A blocking TCP client speaking the Tiera protocol.
pub struct TieraClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TieraClient {
    /// Connects to a Tiera server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        Response::decode(&frame)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Stores an object.
    pub fn put(&mut self, key: &str, value: &[u8]) -> io::Result<ClientReceipt> {
        self.put_tagged(key, value, &[])
    }

    /// Stores an object with tags.
    pub fn put_tagged(
        &mut self,
        key: &str,
        value: &[u8],
        tags: &[&str],
    ) -> io::Result<ClientReceipt> {
        let req = Request::Put {
            key: key.to_string(),
            value: value.to_vec(),
            tags: tags.iter().map(|s| s.to_string()).collect(),
        };
        match self.call(&req)? {
            Response::PutOk { latency_ns } => Ok(ClientReceipt {
                latency: SimDuration::from_nanos(latency_ns),
                served_by: None,
            }),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches an object.
    pub fn get(&mut self, key: &str) -> io::Result<(Vec<u8>, ClientReceipt)> {
        match self.call(&Request::Get {
            key: key.to_string(),
        })? {
            Response::GetOk {
                value,
                latency_ns,
                served_by,
            } => Ok((
                value,
                ClientReceipt {
                    latency: SimDuration::from_nanos(latency_ns),
                    served_by: Some(served_by),
                },
            )),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Deletes an object.
    pub fn delete(&mut self, key: &str) -> io::Result<ClientReceipt> {
        match self.call(&Request::Delete {
            key: key.to_string(),
        })? {
            Response::Deleted { latency_ns } => Ok(ClientReceipt {
                latency: SimDuration::from_nanos(latency_ns),
                served_by: None,
            }),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches `(objects, reads, writes, events)` counters.
    pub fn stats(&mut self) -> io::Result<(u64, u64, u64, u64)> {
        match self.call(&Request::Stats)? {
            Response::Stats {
                objects,
                reads,
                writes,
                events,
            } => Ok((objects, reads, writes, events)),
            other => Err(unexpected(other)),
        }
    }

    // ---- runtime reconfiguration (paper §4.2.3) ----

    /// Installs a policy rule from specification text
    /// (`event(...) : response { ... }`); returns its rule id.
    pub fn add_rule(&mut self, spec_text: &str) -> io::Result<u64> {
        match self.call(&Request::AddRule {
            spec_text: spec_text.to_string(),
        })? {
            Response::RuleAdded { rule_id } => Ok(rule_id),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Removes a rule by id.
    pub fn remove_rule(&mut self, rule_id: u64) -> io::Result<()> {
        match self.call(&Request::RemoveRule { rule_id })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Lists installed rules as `(id, label)` pairs.
    pub fn list_rules(&mut self) -> io::Result<Vec<(u64, String)>> {
        match self.call(&Request::ListRules)? {
            Response::Rules { rules } => Ok(rules),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Attaches a tier resolved through the server's catalog.
    pub fn attach_tier(&mut self, type_name: &str, label: &str, capacity: u64) -> io::Result<()> {
        match self.call(&Request::AttachTier {
            type_name: type_name.to_string(),
            label: label.to_string(),
            capacity,
        })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Detaches a tier by label.
    pub fn detach_tier(&mut self, label: &str) -> io::Result<()> {
        match self.call(&Request::DetachTier {
            label: label.to_string(),
        })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

/// In-process client with the same surface as [`TieraClient`], for
/// colocated deployments (paper: the server "can be co-located with the
/// application on the same EC2 instance").
pub struct LocalClient {
    instance: Arc<Instance>,
}

impl LocalClient {
    /// Wraps an instance.
    pub fn new(instance: Arc<Instance>) -> Self {
        Self { instance }
    }

    fn now(&self) -> tiera_sim::SimTime {
        self.instance.env().clock().now()
    }

    /// Stores an object.
    pub fn put(&self, key: &str, value: &[u8]) -> io::Result<ClientReceipt> {
        self.put_tagged(key, value, &[])
    }

    /// Stores an object with tags.
    pub fn put_tagged(&self, key: &str, value: &[u8], tags: &[&str]) -> io::Result<ClientReceipt> {
        let opts = PutOptions {
            tags: tags.iter().map(Tag::new).collect(),
        };
        self.instance
            .put_with(key, value.to_vec(), opts, self.now())
            .map(|r| ClientReceipt {
                latency: r.latency,
                served_by: None,
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Fetches an object.
    pub fn get(&self, key: &str) -> io::Result<(Vec<u8>, ClientReceipt)> {
        self.instance
            .get(key, self.now())
            .map(|(v, r)| {
                (
                    v.to_vec(),
                    ClientReceipt {
                        latency: r.latency,
                        served_by: Some(r.served_by),
                    },
                )
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Deletes an object.
    pub fn delete(&self, key: &str) -> io::Result<ClientReceipt> {
        self.instance
            .delete(key, self.now())
            .map(|latency| ClientReceipt {
                latency,
                served_by: None,
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, TieraServer};
    use tiera_core::prelude::*;
    use tiera_sim::SimEnv;

    fn instance() -> Arc<Instance> {
        InstanceBuilder::new("rpc", SimEnv::new(61))
            .tier(MemTier::with_capacity("t1", 64 << 20))
            .build()
            .unwrap()
    }

    #[test]
    fn server_start_installs_the_configured_retry_policy() {
        let inst = instance();
        assert!(inst.retry_policy().is_trivial(), "instances default to no retries");
        let handle = TieraServer::start(
            Arc::clone(&inst),
            "127.0.0.1:0",
            ServerConfig {
                retry: Some(RetryPolicy::robust()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(inst.retry_policy(), RetryPolicy::robust());
        // And the served data path still works under the non-trivial policy.
        let mut client = TieraClient::connect(handle.addr()).unwrap();
        client.put("k", b"v").unwrap();
        let (value, _) = client.get("k").unwrap();
        assert_eq!(value, b"v");
        handle.shutdown();
        // `retry: None` leaves an existing policy untouched.
        let inst2 = instance();
        inst2.set_retry_policy(RetryPolicy::robust());
        let handle2 =
            TieraServer::start(Arc::clone(&inst2), "127.0.0.1:0", ServerConfig::default())
                .unwrap();
        assert_eq!(inst2.retry_policy(), RetryPolicy::robust());
        handle2.shutdown();
    }

    #[test]
    fn tcp_roundtrip() {
        let inst = instance();
        let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TieraClient::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        client.put("greeting", b"hello tiera").unwrap();
        let (value, receipt) = client.get("greeting").unwrap();
        assert_eq!(value, b"hello tiera");
        assert_eq!(receipt.served_by.as_deref(), Some("t1"));
        client.delete("greeting").unwrap();
        let err = client.get("greeting").unwrap_err();
        assert!(err.to_string().contains("no such object"), "{err}");
        let (objects, reads, writes, _) = client.stats().unwrap();
        assert_eq!(objects, 0);
        assert!(reads >= 1 && writes >= 1);
        handle.shutdown();
    }

    #[test]
    fn concurrent_tcp_clients() {
        let inst = instance();
        let handle = TieraServer::start(
            inst,
            "127.0.0.1:0",
            ServerConfig {
                request_threads: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        let mut joins = Vec::new();
        for c in 0..4 {
            joins.push(std::thread::spawn(move || {
                let mut client = TieraClient::connect(addr).unwrap();
                for i in 0..50 {
                    let key = format!("c{c}-k{i}");
                    client.put(&key, format!("v{i}").as_bytes()).unwrap();
                    let (v, _) = client.get(&key).unwrap();
                    assert_eq!(v, format!("v{i}").as_bytes());
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut client = TieraClient::connect(addr).unwrap();
        let (objects, ..) = client.stats().unwrap();
        assert_eq!(objects, 200);
        handle.shutdown();
    }

    #[test]
    fn hammer_request_pool_with_mixed_ops() {
        // Four clients hammer the 4-thread request pool with put/get/
        // delete while the server's event thread pumps concurrently; the
        // sharded registry's incremental aggregates must match a recount
        // afterwards, and surviving keys must be readable.
        let inst = instance();
        let handle = TieraServer::start(
            Arc::clone(&inst),
            "127.0.0.1:0",
            ServerConfig {
                request_threads: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        let joins: Vec<_> = (0..4)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = TieraClient::connect(addr).unwrap();
                    for i in 0..120u64 {
                        let key = format!("c{c}-k{}", i % 30);
                        client.put(&key, format!("v{c}-{i}").as_bytes()).unwrap();
                        let (v, _) = client.get(&key).unwrap();
                        assert_eq!(v, format!("v{c}-{i}").as_bytes());
                        if i % 5 == 0 {
                            client.delete(&key).unwrap();
                        }
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let reg = inst.registry();
        assert_eq!(
            reg.aggregates("t1"),
            reg.recount_aggregates("t1"),
            "aggregates drifted under the RPC pool"
        );
        // 30 keys per client; every 5th iteration deletes, and 120 % 5 == 0
        // hits keys 0,5,10,... — exact survivor count is deterministic per
        // client: keys whose final write index i (90..119) satisfies
        // i % 5 != 0. Just assert registry and stats agree instead.
        let mut client = TieraClient::connect(addr).unwrap();
        let (objects, ..) = client.stats().unwrap();
        assert_eq!(objects as usize, reg.len());
        for key in reg.keys_in("t1") {
            client.get(key.as_str()).unwrap();
        }
        handle.shutdown();
    }

    #[test]
    fn server_policies_run_in_wall_time() {
        // A 50 ms write-back timer fires while the server runs live.
        let env = SimEnv::new(62);
        let inst = InstanceBuilder::new("timed", env)
            .tier(MemTier::with_capacity("fast", 64 << 20))
            .tier(MemTier::with_traits(
                "slow",
                64 << 20,
                TierTraits {
                    durable: true,
                    availability_zone: "zone-a".into(),
                    class: tiera_sim::StorageClass::BlockStore,
                },
            ))
            .rule(
                Rule::on(EventKind::timer(SimDuration::from_millis(50))).respond(
                    ResponseSpec::copy(
                        Selector::InTier("fast".into()).and(Selector::Dirty),
                        ["slow"],
                    ),
                ),
            )
            .build()
            .unwrap();
        let handle =
            TieraServer::start(Arc::clone(&inst), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TieraClient::connect(handle.addr()).unwrap();
        client.put("wb", b"dirty-data").unwrap();
        // Wait out a couple of timer periods in wall time.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let meta = inst.registry().get(&"wb".into()).unwrap();
        assert!(meta.in_tier("slow"), "write-back ran live: {meta:?}");
        handle.shutdown();
    }

    #[test]
    fn runtime_reconfiguration_over_tcp() {
        // The Figure 17 flow, but entirely over the wire: swap the policy
        // and the tier set on a live server.
        let env = SimEnv::new(63);
        let inst = InstanceBuilder::new("reconf", env.clone())
            .tier(MemTier::with_capacity("memcached", 64 << 20))
            .tier(MemTier::with_capacity("ebs", 64 << 20))
            .build()
            .unwrap();
        let mut catalog = tiera_core::catalog::TierCatalog::new();
        catalog.register("Mem", |label, cap| {
            MemTier::with_capacity(label, cap) as tiera_core::tier::TierHandle
        });
        let handle = TieraServer::start(
            Arc::clone(&inst),
            "127.0.0.1:0",
            ServerConfig {
                catalog: Some(catalog),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = TieraClient::connect(handle.addr()).unwrap();

        // Install a write-through rule from spec text.
        let rule_id = client
            .add_rule(
                "event(insert.into) : response {
                     store(what: insert.object, to: [memcached, ebs]);
                 }",
            )
            .unwrap();
        client.put("k1", b"v1").unwrap();
        let meta = inst.registry().get(&"k1".into()).unwrap();
        assert!(meta.in_tier("memcached") && meta.in_tier("ebs"));

        // Attach a new tier through the catalog, swap the rule for one
        // targeting it, and verify placement follows.
        client.attach_tier("Mem", "ephemeral", 64 << 20).unwrap();
        client.remove_rule(rule_id).unwrap();
        let id2 = client
            .add_rule(
                "event(insert.into) : response {
                     store(what: insert.object, to: [memcached, ephemeral]);
                 }",
            )
            .unwrap();
        client.detach_tier("ebs").unwrap();
        client.put("k2", b"v2").unwrap();
        let meta = inst.registry().get(&"k2".into()).unwrap();
        assert!(meta.in_tier("ephemeral") && !meta.in_tier("ebs"));

        let rules = client.list_rules().unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].0, id2);

        // Error paths surface as io errors with the server's message.
        assert!(client.add_rule("event(bogus) : response {}").is_err());
        assert!(client.remove_rule(9999).is_err());
        assert!(client.attach_tier("Tape", "t", 1).is_err());
        assert!(client.detach_tier("missing").is_err());
        handle.shutdown();
    }

    #[test]
    fn attach_tier_rejected_without_catalog() {
        let inst = instance();
        let handle =
            TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = TieraClient::connect(handle.addr()).unwrap();
        let err = client.attach_tier("Mem", "x", 1 << 20).unwrap_err();
        assert!(err.to_string().contains("no tier catalog"), "{err}");
        handle.shutdown();
    }

    #[test]
    fn local_client_matches_tcp_semantics() {
        let inst = instance();
        let client = LocalClient::new(Arc::clone(&inst));
        client.put_tagged("k", b"v", &["tmp"]).unwrap();
        let (v, r) = client.get("k").unwrap();
        assert_eq!(v, b"v");
        assert_eq!(r.served_by.as_deref(), Some("t1"));
        client.delete("k").unwrap();
        assert!(client.get("k").is_err());
    }
}
