//! # tiera-rpc — the Tiera server's RPC layer
//!
//! Paper §3: "The Tiera server is deployed as a Thrift server on an EC2
//! instance... When the server starts up, it begins by reading the
//! configuration file that is used to indicate the different tiers..., the
//! size of the thread pool dedicated to service client requests, [and] the
//! size of thread pool dedicated to service responses and evaluate events."
//!
//! This crate replaces Thrift with a small, fully specified framed binary
//! protocol ([`proto`]) — pipelined and batched as of protocol v2 (see
//! DESIGN.md §3d) — and provides:
//!
//! * [`TieraServer`] — a TCP server with sharded accept (each connection
//!   pinned to a worker thread), a per-connection read/write split with
//!   response coalescing, and a dedicated event thread that maps wall time
//!   onto the instance's virtual clock and drives timers/background
//!   responses (the "response pool" of the paper, §3);
//! * [`TieraClient`] — a blocking single-shot client (v1 framing) with a
//!   per-request read deadline and automatic reconnect after transport
//!   errors;
//! * [`PipelinedClient`] — a v2 client keeping many requests in flight on
//!   one connection, with write coalescing and `multi_put`/`multi_get`/
//!   `multi_delete` batch helpers;
//! * [`LocalClient`] — an in-process loopback with the same API, used when
//!   the application colocates with the server (and by the Figure 18
//!   overhead measurements, where RPC cost must not drown the control-layer
//!   cost being measured).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{
    ClientReceipt, LocalClient, PipelinedClient, TieraClient, Token, DEFAULT_READ_DEADLINE,
};
pub use server::{ServerConfig, ServerHandle, TieraServer};
