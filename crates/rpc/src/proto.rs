//! Wire protocol.
//!
//! Every message is a frame: `u32` little-endian payload length, then the
//! payload. The payload starts with a one-byte opcode followed by
//! length-prefixed fields (u32 lengths, little-endian integers).
//!
//! Two framings share that base format:
//!
//! * **v1 (single-shot)**: the client sends a request frame and waits for
//!   exactly one response frame. No handshake — the first bytes on the
//!   wire are already a frame header.
//! * **v2 (pipelined)**: the connection opens with a `hello` exchange
//!   (`[MAGIC][version]` from the client, `[MAGIC][granted]` back), after
//!   which every frame's payload is prefixed with a little-endian `u64`
//!   **sequence number**. Responses carry the sequence number of the
//!   request they answer, so many requests may be in flight and
//!   completions may arrive out of order.
//!
//! The server distinguishes the two by sniffing the first four bytes:
//! [`MAGIC`] is deliberately larger than [`MAX_FRAME`], so it can never be
//! a valid v1 frame length. Old single-shot framing therefore still
//! decodes against a new server, and a new client talking to an old
//! server gets a clean "does not speak v2" error rather than a hang.
//!
//! Batching: `MultiPut`/`MultiGet`/`MultiDelete` carry up to [`MAX_BATCH`]
//! operations in one frame; the server answers with a `Batch` response
//! whose parts report per-item success or failure (partial failure is
//! first-class, not all-or-nothing).

use std::io::{self, Read, Write};

/// Protocol magic ("TIRA"); doubles as the v2 hello sentinel. Its value is
/// deliberately above [`MAX_FRAME`] so it can never be mistaken for a v1
/// frame length.
pub const MAGIC: u32 = 0x5449_5241;
/// Highest protocol version this build speaks (the pipelined framing).
pub const VERSION: u32 = 2;
/// Maximum accepted frame size (64 MiB) — guards against garbage lengths.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;
/// Maximum operations per `MultiPut`/`MultiGet`/`MultiDelete` frame (and
/// parts per `Batch` response) — guards batch counts the same way
/// [`MAX_FRAME`] guards lengths.
pub const MAX_BATCH: usize = 4096;
/// Bytes of sequence-number prefix in a v2 frame payload.
pub const SEQ_PREFIX: usize = 8;
/// Buffer capacity for pipelined connections (both directions, both
/// ends). A pipelined peer moves bursts of small frames; the default 8 KiB
/// `BufReader`/`BufWriter` capacity forces a mid-burst syscall well before
/// a pipeline window fills, so the v2 paths size their buffers to hold a
/// whole burst.
pub const PIPE_BUF: usize = 64 * 1024;

/// One operation inside a [`Request::MultiPut`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutItem {
    /// Object key.
    pub key: String,
    /// Payload.
    pub value: Vec<u8>,
    /// Tags to attach.
    pub tags: Vec<String>,
}

/// Client → server requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Store an object, optionally tagged.
    Put {
        /// Object key.
        key: String,
        /// Payload.
        value: Vec<u8>,
        /// Tags to attach.
        tags: Vec<String>,
    },
    /// Fetch an object.
    Get {
        /// Object key.
        key: String,
    },
    /// Delete an object.
    Delete {
        /// Object key.
        key: String,
    },
    /// Fetch instance statistics.
    Stats,
    /// Install a policy rule given as specification-language text
    /// (`event(...) : response { ... }`).
    AddRule {
        /// The event clause source text.
        spec_text: String,
    },
    /// Remove a rule by id.
    RemoveRule {
        /// The rule id returned by `AddRule` / listed by `ListRules`.
        rule_id: u64,
    },
    /// List installed rules.
    ListRules,
    /// Attach a new tier resolved through the server's tier catalog.
    AttachTier {
        /// Catalog type name (e.g. `Memcached`, `EBS`, `S3`).
        type_name: String,
        /// Label within the instance.
        label: String,
        /// Capacity in bytes.
        capacity: u64,
    },
    /// Detach a tier by label.
    DetachTier {
        /// The tier label.
        label: String,
    },
    /// Store up to [`MAX_BATCH`] objects in one frame. Answered by a
    /// `Batch` response with one `PutOk`/`Error` part per item, in order.
    MultiPut {
        /// The operations, executed in order.
        items: Vec<PutItem>,
    },
    /// Fetch up to [`MAX_BATCH`] objects in one frame. Answered by a
    /// `Batch` response with one `GetOk`/`Error` part per key, in order.
    MultiGet {
        /// Keys to fetch.
        keys: Vec<String>,
    },
    /// Delete up to [`MAX_BATCH`] objects in one frame. Answered by a
    /// `Batch` response with one `Deleted`/`Error` part per key, in order.
    MultiDelete {
        /// Keys to delete.
        keys: Vec<String>,
    },
}

/// Server → client responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Ping reply.
    Pong,
    /// PUT acknowledged; virtual latency charged, in nanoseconds.
    PutOk {
        /// Charged virtual latency (ns).
        latency_ns: u64,
    },
    /// GET result.
    GetOk {
        /// Payload.
        value: Vec<u8>,
        /// Charged virtual latency (ns).
        latency_ns: u64,
        /// Tier that served the read.
        served_by: String,
    },
    /// DELETE acknowledged.
    Deleted {
        /// Charged virtual latency (ns).
        latency_ns: u64,
    },
    /// Instance statistics snapshot.
    Stats {
        /// Objects stored.
        objects: u64,
        /// Reads served.
        reads: u64,
        /// Writes served.
        writes: u64,
        /// Events fired.
        events: u64,
    },
    /// Request failed.
    Error {
        /// Error message.
        message: String,
    },
    /// Generic success for reconfiguration requests.
    Ok,
    /// A rule was installed.
    RuleAdded {
        /// Its id (usable with `RemoveRule`).
        rule_id: u64,
    },
    /// Installed rules.
    Rules {
        /// `(id, label)` pairs.
        rules: Vec<(u64, String)>,
    },
    /// Per-item outcomes of a `Multi*` request, in request order. Parts
    /// are ordinary responses (`PutOk`, `GetOk`, `Deleted`, `Error`);
    /// nesting a `Batch` inside a `Batch` is a protocol error.
    Batch {
        /// One part per batched operation.
        parts: Vec<Response>,
    },
}

// ---- encoding helpers ----

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "truncated frame")
}

/// Fallible little-endian readers: slice length is re-proven by
/// `try_into` rather than assumed by indexing, keeping every decode path
/// statically panic-free (the hermetic source lint enforces this for the
/// whole file).
fn le_u32(b: &[u8]) -> io::Result<u32> {
    Ok(u32::from_le_bytes(b.try_into().map_err(|_| truncated())?))
}

fn le_u64(b: &[u8]) -> io::Result<u64> {
    Ok(u64::from_le_bytes(b.try_into().map_err(|_| truncated())?))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        let s = self.buf.get(self.pos..end).ok_or_else(truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        self.take(1)?.first().copied().ok_or_else(truncated)
    }

    fn u32(&mut self) -> io::Result<u32> {
        le_u32(self.take(4)?)
    }

    fn u64(&mut self) -> io::Result<u64> {
        le_u64(self.take(8)?)
    }

    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "field too big"));
        }
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid utf-8"))
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads a batch element count, rejecting anything over [`MAX_BATCH`]
    /// (adversarial counts must fail before any allocation scales with
    /// them).
    fn batch_count(&mut self) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n > MAX_BATCH {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "batch too big"));
        }
        Ok(n)
    }

    /// Reads a length-prefixed list of strings (batch-capped).
    fn string_list(&mut self) -> io::Result<Vec<String>> {
        let n = self.batch_count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.string()?);
        }
        Ok(out)
    }
}

impl Request {
    /// Encodes to a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(0),
            Request::Put { key, value, tags } => {
                out.push(1);
                put_str(&mut out, key);
                put_bytes(&mut out, value);
                out.extend_from_slice(&(tags.len() as u32).to_le_bytes());
                for t in tags {
                    put_str(&mut out, t);
                }
            }
            Request::Get { key } => {
                out.push(2);
                put_str(&mut out, key);
            }
            Request::Delete { key } => {
                out.push(3);
                put_str(&mut out, key);
            }
            Request::Stats => out.push(4),
            Request::AddRule { spec_text } => {
                out.push(5);
                put_str(&mut out, spec_text);
            }
            Request::RemoveRule { rule_id } => {
                out.push(6);
                out.extend_from_slice(&rule_id.to_le_bytes());
            }
            Request::ListRules => out.push(7),
            Request::AttachTier {
                type_name,
                label,
                capacity,
            } => {
                out.push(8);
                put_str(&mut out, type_name);
                put_str(&mut out, label);
                out.extend_from_slice(&capacity.to_le_bytes());
            }
            Request::DetachTier { label } => {
                out.push(9);
                put_str(&mut out, label);
            }
            Request::MultiPut { items } => {
                out.push(10);
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    put_str(&mut out, &item.key);
                    put_bytes(&mut out, &item.value);
                    out.extend_from_slice(&(item.tags.len() as u32).to_le_bytes());
                    for t in &item.tags {
                        put_str(&mut out, t);
                    }
                }
            }
            Request::MultiGet { keys } => {
                out.push(11);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    put_str(&mut out, k);
                }
            }
            Request::MultiDelete { keys } => {
                out.push(12);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    put_str(&mut out, k);
                }
            }
        }
        out
    }

    /// Decodes from a payload.
    pub fn decode(buf: &[u8]) -> io::Result<Request> {
        let mut c = Cursor { buf, pos: 0 };
        let req = match c.u8()? {
            0 => Request::Ping,
            1 => {
                let key = c.string()?;
                let value = c.bytes()?;
                let n = c.u32()? as usize;
                if n > 1024 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "too many tags"));
                }
                let mut tags = Vec::with_capacity(n);
                for _ in 0..n {
                    tags.push(c.string()?);
                }
                Request::Put { key, value, tags }
            }
            2 => Request::Get { key: c.string()? },
            3 => Request::Delete { key: c.string()? },
            4 => Request::Stats,
            5 => Request::AddRule {
                spec_text: c.string()?,
            },
            6 => Request::RemoveRule { rule_id: c.u64()? },
            7 => Request::ListRules,
            8 => Request::AttachTier {
                type_name: c.string()?,
                label: c.string()?,
                capacity: c.u64()?,
            },
            9 => Request::DetachTier { label: c.string()? },
            10 => {
                let n = c.batch_count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = c.string()?;
                    let value = c.bytes()?;
                    let tag_count = c.u32()? as usize;
                    if tag_count > 1024 {
                        return Err(io::Error::new(io::ErrorKind::InvalidData, "too many tags"));
                    }
                    let mut tags = Vec::with_capacity(tag_count);
                    for _ in 0..tag_count {
                        tags.push(c.string()?);
                    }
                    items.push(PutItem { key, value, tags });
                }
                Request::MultiPut { items }
            }
            11 => Request::MultiGet {
                keys: c.string_list()?,
            },
            12 => Request::MultiDelete {
                keys: c.string_list()?,
            },
            op => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown request opcode {op}"),
                ))
            }
        };
        if !c.finished() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in request",
            ));
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes to a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(0),
            Response::PutOk { latency_ns } => {
                out.push(1);
                out.extend_from_slice(&latency_ns.to_le_bytes());
            }
            Response::GetOk {
                value,
                latency_ns,
                served_by,
            } => {
                out.push(2);
                put_bytes(&mut out, value);
                out.extend_from_slice(&latency_ns.to_le_bytes());
                put_str(&mut out, served_by);
            }
            Response::Deleted { latency_ns } => {
                out.push(3);
                out.extend_from_slice(&latency_ns.to_le_bytes());
            }
            Response::Stats {
                objects,
                reads,
                writes,
                events,
            } => {
                out.push(4);
                for v in [objects, reads, writes, events] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Error { message } => {
                out.push(5);
                put_str(&mut out, message);
            }
            Response::Ok => out.push(6),
            Response::RuleAdded { rule_id } => {
                out.push(7);
                out.extend_from_slice(&rule_id.to_le_bytes());
            }
            Response::Rules { rules } => {
                out.push(8);
                out.extend_from_slice(&(rules.len() as u32).to_le_bytes());
                for (id, label) in rules {
                    out.extend_from_slice(&id.to_le_bytes());
                    put_str(&mut out, label);
                }
            }
            Response::Batch { parts } => {
                out.push(9);
                out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
                for part in parts {
                    out.extend_from_slice(&part.encode());
                }
            }
        }
        out
    }

    /// Decodes from a payload.
    pub fn decode(buf: &[u8]) -> io::Result<Response> {
        let mut c = Cursor { buf, pos: 0 };
        let resp = Self::decode_one(&mut c, true)?;
        if !c.finished() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in response",
            ));
        }
        Ok(resp)
    }

    /// Decodes one response at the cursor. Parts are self-describing, so a
    /// `Batch` decodes its parts recursively — exactly one level deep
    /// (`allow_batch` is false for parts, so `Batch` inside `Batch` is a
    /// wire error, bounding recursion).
    fn decode_one(c: &mut Cursor<'_>, allow_batch: bool) -> io::Result<Response> {
        let resp = match c.u8()? {
            0 => Response::Pong,
            1 => Response::PutOk {
                latency_ns: c.u64()?,
            },
            2 => Response::GetOk {
                value: c.bytes()?,
                latency_ns: c.u64()?,
                served_by: c.string()?,
            },
            3 => Response::Deleted {
                latency_ns: c.u64()?,
            },
            4 => Response::Stats {
                objects: c.u64()?,
                reads: c.u64()?,
                writes: c.u64()?,
                events: c.u64()?,
            },
            5 => Response::Error {
                message: c.string()?,
            },
            6 => Response::Ok,
            7 => Response::RuleAdded { rule_id: c.u64()? },
            8 => {
                let n = c.u32()? as usize;
                if n > 100_000 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "too many rules"));
                }
                let mut rules = Vec::with_capacity(n);
                for _ in 0..n {
                    rules.push((c.u64()?, c.string()?));
                }
                Response::Rules { rules }
            }
            9 if allow_batch => {
                let n = c.batch_count()?;
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(Self::decode_one(c, false)?);
                }
                Response::Batch { parts }
            }
            9 => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "nested batch response",
                ))
            }
            op => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown response opcode {op}"),
                ))
            }
        };
        Ok(resp)
    }
}

/// Writes a frame (length header + payload).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads a frame, enforcing [`MAX_FRAME`]. Returns `None` on clean EOF at a
/// frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too big"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---- v2 handshake ----

/// Writes a hello message: `[MAGIC][version]`, both `u32` little-endian.
/// Sent by a v2 client as its first bytes; echoed by the server with the
/// granted version.
pub fn write_hello<W: Write>(w: &mut W, version: u32) -> io::Result<()> {
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&version.to_le_bytes())?;
    w.flush()
}

/// Reads a hello message, validating the magic. Returns the peer's
/// version. Fails with `InvalidData` if the magic is wrong (e.g. the peer
/// is a v1 server answering with a frame instead of a hello).
pub fn read_hello<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let (magic, version) = buf.split_at(4);
    if le_u32(magic)? != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "peer does not speak the pipelined protocol (bad hello magic)",
        ));
    }
    le_u32(version)
}

/// The version a server grants a client that asked for `want`: the highest
/// version both sides speak. `want` below 2 is unsatisfiable over a hello
/// (v1 clients never send one) and yields 0, meaning "refused".
pub fn negotiate(want: u32) -> u32 {
    if want < 2 {
        0
    } else {
        want.min(VERSION)
    }
}

// ---- v2 sequenced frames ----

/// Appends a sequenced frame (`u32` length, `u64` sequence number,
/// payload) to `w` **without flushing** — callers batch several frames and
/// flush once (write coalescing is the point of the pipelined framing).
pub fn write_seq_frame<W: Write>(w: &mut W, seq: u64, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() + SEQ_PREFIX;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too big"));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&seq.to_le_bytes())?;
    w.write_all(payload)
}

/// Splits a v2 frame payload into its sequence number and message bytes.
pub fn split_seq(frame: &[u8]) -> io::Result<(u64, &[u8])> {
    if frame.len() < SEQ_PREFIX {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too short for a sequence number",
        ));
    }
    let (seq, payload) = frame.split_at(SEQ_PREFIX);
    Ok((le_u64(seq)?, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let enc = req.encode();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let enc = resp.encode();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    #[test]
    fn reconfiguration_roundtrips() {
        roundtrip_req(Request::AddRule {
            spec_text: "event(insert.into) : response { store(what: insert.object, to: t1); }"
                .into(),
        });
        roundtrip_req(Request::RemoveRule { rule_id: 42 });
        roundtrip_req(Request::ListRules);
        roundtrip_req(Request::AttachTier {
            type_name: "S3".into(),
            label: "backup".into(),
            capacity: 10 << 30,
        });
        roundtrip_req(Request::DetachTier { label: "ebs".into() });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::RuleAdded { rule_id: 7 });
        roundtrip_resp(Response::Rules {
            rules: vec![(1, "placement".into()), (2, "spec line 4".into())],
        });
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Put {
            key: "k".into(),
            value: vec![1, 2, 3],
            tags: vec!["tmp".into(), "hot".into()],
        });
        roundtrip_req(Request::Get { key: "key/with/slashes".into() });
        roundtrip_req(Request::Delete { key: "".into() });
        roundtrip_req(Request::Stats);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::PutOk { latency_ns: 12345 });
        roundtrip_resp(Response::GetOk {
            value: (0..=255).collect(),
            latency_ns: u64::MAX,
            served_by: "tier1".into(),
        });
        roundtrip_resp(Response::Deleted { latency_ns: 0 });
        roundtrip_resp(Response::Stats {
            objects: 1,
            reads: 2,
            writes: 3,
            events: 4,
        });
        roundtrip_resp(Response::Error {
            message: "tier full".into(),
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[99]).is_err(), "unknown opcode");
        assert!(Request::decode(&[]).is_err(), "empty");
        // Trailing bytes after a valid message.
        let mut enc = Request::Ping.encode();
        enc.push(0);
        assert!(Request::decode(&enc).is_err());
        // Truncated string field.
        let enc = Request::Get { key: "abcdef".into() }.encode();
        assert!(Request::decode(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn frame_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn multi_request_roundtrips() {
        roundtrip_req(Request::MultiPut {
            items: vec![
                PutItem {
                    key: "a".into(),
                    value: vec![1, 2],
                    tags: vec!["tmp".into()],
                },
                PutItem {
                    key: "b".into(),
                    value: Vec::new(),
                    tags: Vec::new(),
                },
            ],
        });
        roundtrip_req(Request::MultiGet {
            keys: vec!["a".into(), "".into(), "c/d".into()],
        });
        roundtrip_req(Request::MultiDelete { keys: Vec::new() });
    }

    #[test]
    fn batch_response_roundtrips_with_partial_failure() {
        roundtrip_resp(Response::Batch {
            parts: vec![
                Response::PutOk { latency_ns: 1 },
                Response::Error {
                    message: "tier full".into(),
                },
                Response::GetOk {
                    value: vec![9; 32],
                    latency_ns: 2,
                    served_by: "mem".into(),
                },
                Response::Deleted { latency_ns: 3 },
            ],
        });
        roundtrip_resp(Response::Batch { parts: Vec::new() });
    }

    #[test]
    fn nested_batch_is_rejected() {
        let nested = Response::Batch {
            parts: vec![Response::Batch {
                parts: vec![Response::Pong],
            }],
        };
        assert!(Response::decode(&nested.encode()).is_err());
    }

    #[test]
    fn oversized_batch_counts_are_rejected_before_allocation() {
        // MultiGet claiming u32::MAX keys.
        let mut enc = vec![11u8];
        enc.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&enc).is_err());
        // Batch response claiming MAX_BATCH+1 parts.
        let mut enc = vec![9u8];
        enc.extend_from_slice(&((MAX_BATCH + 1) as u32).to_le_bytes());
        assert!(Response::decode(&enc).is_err());
    }

    #[test]
    fn hello_roundtrip_and_negotiation() {
        let mut buf = Vec::new();
        write_hello(&mut buf, VERSION).unwrap();
        assert_eq!(read_hello(&mut &buf[..]).unwrap(), VERSION);
        // A v1 frame header where a hello is expected: magic mismatch.
        let mut frame = Vec::new();
        write_frame(&mut frame, b"ping").unwrap();
        assert!(read_hello(&mut &frame[..]).is_err());
        assert_eq!(negotiate(2), 2);
        assert_eq!(negotiate(99), VERSION, "future clients clamp down");
        assert_eq!(negotiate(1), 0, "hello below v2 is refused");
        assert_eq!(negotiate(0), 0);
    }

    #[test]
    fn magic_can_never_be_a_frame_length() {
        // The sniff in the server depends on this.
        assert!((MAGIC as usize) > MAX_FRAME);
    }

    #[test]
    fn seq_frame_roundtrip() {
        let mut buf = Vec::new();
        write_seq_frame(&mut buf, 7, b"payload").unwrap();
        write_seq_frame(&mut buf, u64::MAX, b"").unwrap();
        let mut r = &buf[..];
        let f1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(split_seq(&f1).unwrap(), (7, &b"payload"[..]));
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(split_seq(&f2).unwrap(), (u64::MAX, &b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        assert!(split_seq(b"short").is_err());
    }

    #[test]
    fn prop_put_roundtrip() {
        use tiera_support::prop::gen;
        tiera_support::prop_check!(cases = 64, |rng| {
            let key = gen::string_of(rng, "abcdefghijklmnopqrstuvwxyz0123456789/", 0..41);
            let value = gen::byte_vec(rng, 0..512);
            let tags = gen::vec_of(rng, 0..4, |rng| {
                gen::string_of(rng, "abcdefghijklmnopqrstuvwxyz", 1..9)
            });
            roundtrip_req(Request::Put { key, value, tags });
        });
    }

    #[test]
    fn prop_decode_never_panics() {
        tiera_support::prop_check!(cases = 128, |rng| {
            let bytes = tiera_support::prop::gen::byte_vec(rng, 0..256);
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        });
    }
}
