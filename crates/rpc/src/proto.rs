//! Wire protocol.
//!
//! Every message is a frame: `u32` little-endian payload length, then the
//! payload. The payload starts with a one-byte opcode followed by
//! length-prefixed fields (u32 lengths, little-endian integers). The
//! protocol is versioned by the magic in the `Hello` exchange.

use std::io::{self, Read, Write};

/// Protocol magic ("TIRA" + version 1).
pub const MAGIC: u32 = 0x5449_5241;
/// Maximum accepted frame size (64 MiB) — guards against garbage lengths.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Client → server requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Store an object, optionally tagged.
    Put {
        /// Object key.
        key: String,
        /// Payload.
        value: Vec<u8>,
        /// Tags to attach.
        tags: Vec<String>,
    },
    /// Fetch an object.
    Get {
        /// Object key.
        key: String,
    },
    /// Delete an object.
    Delete {
        /// Object key.
        key: String,
    },
    /// Fetch instance statistics.
    Stats,
    /// Install a policy rule given as specification-language text
    /// (`event(...) : response { ... }`).
    AddRule {
        /// The event clause source text.
        spec_text: String,
    },
    /// Remove a rule by id.
    RemoveRule {
        /// The rule id returned by `AddRule` / listed by `ListRules`.
        rule_id: u64,
    },
    /// List installed rules.
    ListRules,
    /// Attach a new tier resolved through the server's tier catalog.
    AttachTier {
        /// Catalog type name (e.g. `Memcached`, `EBS`, `S3`).
        type_name: String,
        /// Label within the instance.
        label: String,
        /// Capacity in bytes.
        capacity: u64,
    },
    /// Detach a tier by label.
    DetachTier {
        /// The tier label.
        label: String,
    },
}

/// Server → client responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Ping reply.
    Pong,
    /// PUT acknowledged; virtual latency charged, in nanoseconds.
    PutOk {
        /// Charged virtual latency (ns).
        latency_ns: u64,
    },
    /// GET result.
    GetOk {
        /// Payload.
        value: Vec<u8>,
        /// Charged virtual latency (ns).
        latency_ns: u64,
        /// Tier that served the read.
        served_by: String,
    },
    /// DELETE acknowledged.
    Deleted {
        /// Charged virtual latency (ns).
        latency_ns: u64,
    },
    /// Instance statistics snapshot.
    Stats {
        /// Objects stored.
        objects: u64,
        /// Reads served.
        reads: u64,
        /// Writes served.
        writes: u64,
        /// Events fired.
        events: u64,
    },
    /// Request failed.
    Error {
        /// Error message.
        message: String,
    },
    /// Generic success for reconfiguration requests.
    Ok,
    /// A rule was installed.
    RuleAdded {
        /// Its id (usable with `RemoveRule`).
        rule_id: u64,
    },
    /// Installed rules.
    Rules {
        /// `(id, label)` pairs.
        rules: Vec<(u64, String)>,
    },
}

// ---- encoding helpers ----

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated frame",
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "field too big"));
        }
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid utf-8"))
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl Request {
    /// Encodes to a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(0),
            Request::Put { key, value, tags } => {
                out.push(1);
                put_str(&mut out, key);
                put_bytes(&mut out, value);
                out.extend_from_slice(&(tags.len() as u32).to_le_bytes());
                for t in tags {
                    put_str(&mut out, t);
                }
            }
            Request::Get { key } => {
                out.push(2);
                put_str(&mut out, key);
            }
            Request::Delete { key } => {
                out.push(3);
                put_str(&mut out, key);
            }
            Request::Stats => out.push(4),
            Request::AddRule { spec_text } => {
                out.push(5);
                put_str(&mut out, spec_text);
            }
            Request::RemoveRule { rule_id } => {
                out.push(6);
                out.extend_from_slice(&rule_id.to_le_bytes());
            }
            Request::ListRules => out.push(7),
            Request::AttachTier {
                type_name,
                label,
                capacity,
            } => {
                out.push(8);
                put_str(&mut out, type_name);
                put_str(&mut out, label);
                out.extend_from_slice(&capacity.to_le_bytes());
            }
            Request::DetachTier { label } => {
                out.push(9);
                put_str(&mut out, label);
            }
        }
        out
    }

    /// Decodes from a payload.
    pub fn decode(buf: &[u8]) -> io::Result<Request> {
        let mut c = Cursor { buf, pos: 0 };
        let req = match c.u8()? {
            0 => Request::Ping,
            1 => {
                let key = c.string()?;
                let value = c.bytes()?;
                let n = c.u32()? as usize;
                if n > 1024 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "too many tags"));
                }
                let mut tags = Vec::with_capacity(n);
                for _ in 0..n {
                    tags.push(c.string()?);
                }
                Request::Put { key, value, tags }
            }
            2 => Request::Get { key: c.string()? },
            3 => Request::Delete { key: c.string()? },
            4 => Request::Stats,
            5 => Request::AddRule {
                spec_text: c.string()?,
            },
            6 => Request::RemoveRule { rule_id: c.u64()? },
            7 => Request::ListRules,
            8 => Request::AttachTier {
                type_name: c.string()?,
                label: c.string()?,
                capacity: c.u64()?,
            },
            9 => Request::DetachTier { label: c.string()? },
            op => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown request opcode {op}"),
                ))
            }
        };
        if !c.finished() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in request",
            ));
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes to a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(0),
            Response::PutOk { latency_ns } => {
                out.push(1);
                out.extend_from_slice(&latency_ns.to_le_bytes());
            }
            Response::GetOk {
                value,
                latency_ns,
                served_by,
            } => {
                out.push(2);
                put_bytes(&mut out, value);
                out.extend_from_slice(&latency_ns.to_le_bytes());
                put_str(&mut out, served_by);
            }
            Response::Deleted { latency_ns } => {
                out.push(3);
                out.extend_from_slice(&latency_ns.to_le_bytes());
            }
            Response::Stats {
                objects,
                reads,
                writes,
                events,
            } => {
                out.push(4);
                for v in [objects, reads, writes, events] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Error { message } => {
                out.push(5);
                put_str(&mut out, message);
            }
            Response::Ok => out.push(6),
            Response::RuleAdded { rule_id } => {
                out.push(7);
                out.extend_from_slice(&rule_id.to_le_bytes());
            }
            Response::Rules { rules } => {
                out.push(8);
                out.extend_from_slice(&(rules.len() as u32).to_le_bytes());
                for (id, label) in rules {
                    out.extend_from_slice(&id.to_le_bytes());
                    put_str(&mut out, label);
                }
            }
        }
        out
    }

    /// Decodes from a payload.
    pub fn decode(buf: &[u8]) -> io::Result<Response> {
        let mut c = Cursor { buf, pos: 0 };
        let resp = match c.u8()? {
            0 => Response::Pong,
            1 => Response::PutOk {
                latency_ns: c.u64()?,
            },
            2 => Response::GetOk {
                value: c.bytes()?,
                latency_ns: c.u64()?,
                served_by: c.string()?,
            },
            3 => Response::Deleted {
                latency_ns: c.u64()?,
            },
            4 => Response::Stats {
                objects: c.u64()?,
                reads: c.u64()?,
                writes: c.u64()?,
                events: c.u64()?,
            },
            5 => Response::Error {
                message: c.string()?,
            },
            6 => Response::Ok,
            7 => Response::RuleAdded { rule_id: c.u64()? },
            8 => {
                let n = c.u32()? as usize;
                if n > 100_000 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "too many rules"));
                }
                let mut rules = Vec::with_capacity(n);
                for _ in 0..n {
                    rules.push((c.u64()?, c.string()?));
                }
                Response::Rules { rules }
            }
            op => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown response opcode {op}"),
                ))
            }
        };
        if !c.finished() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in response",
            ));
        }
        Ok(resp)
    }
}

/// Writes a frame (length header + payload).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads a frame, enforcing [`MAX_FRAME`]. Returns `None` on clean EOF at a
/// frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too big"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let enc = req.encode();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let enc = resp.encode();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    #[test]
    fn reconfiguration_roundtrips() {
        roundtrip_req(Request::AddRule {
            spec_text: "event(insert.into) : response { store(what: insert.object, to: t1); }"
                .into(),
        });
        roundtrip_req(Request::RemoveRule { rule_id: 42 });
        roundtrip_req(Request::ListRules);
        roundtrip_req(Request::AttachTier {
            type_name: "S3".into(),
            label: "backup".into(),
            capacity: 10 << 30,
        });
        roundtrip_req(Request::DetachTier { label: "ebs".into() });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::RuleAdded { rule_id: 7 });
        roundtrip_resp(Response::Rules {
            rules: vec![(1, "placement".into()), (2, "spec line 4".into())],
        });
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Put {
            key: "k".into(),
            value: vec![1, 2, 3],
            tags: vec!["tmp".into(), "hot".into()],
        });
        roundtrip_req(Request::Get { key: "key/with/slashes".into() });
        roundtrip_req(Request::Delete { key: "".into() });
        roundtrip_req(Request::Stats);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::PutOk { latency_ns: 12345 });
        roundtrip_resp(Response::GetOk {
            value: (0..=255).collect(),
            latency_ns: u64::MAX,
            served_by: "tier1".into(),
        });
        roundtrip_resp(Response::Deleted { latency_ns: 0 });
        roundtrip_resp(Response::Stats {
            objects: 1,
            reads: 2,
            writes: 3,
            events: 4,
        });
        roundtrip_resp(Response::Error {
            message: "tier full".into(),
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[99]).is_err(), "unknown opcode");
        assert!(Request::decode(&[]).is_err(), "empty");
        // Trailing bytes after a valid message.
        let mut enc = Request::Ping.encode();
        enc.push(0);
        assert!(Request::decode(&enc).is_err());
        // Truncated string field.
        let enc = Request::Get { key: "abcdef".into() }.encode();
        assert!(Request::decode(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn frame_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn prop_put_roundtrip() {
        use tiera_support::prop::gen;
        tiera_support::prop_check!(cases = 64, |rng| {
            let key = gen::string_of(rng, "abcdefghijklmnopqrstuvwxyz0123456789/", 0..41);
            let value = gen::byte_vec(rng, 0..512);
            let tags = gen::vec_of(rng, 0..4, |rng| {
                gen::string_of(rng, "abcdefghijklmnopqrstuvwxyz", 1..9)
            });
            roundtrip_req(Request::Put { key, value, tags });
        });
    }

    #[test]
    fn prop_decode_never_panics() {
        tiera_support::prop_check!(cases = 128, |rng| {
            let bytes = tiera_support::prop::gen::byte_vec(rng, 0..256);
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        });
    }
}
