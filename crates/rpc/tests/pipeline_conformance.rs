//! Protocol conformance suite for the pipelined RPC plane (ISSUE 6
//! satellite 2, plus the torn-write regression of satellite 4).
//!
//! Where the lib tests drive the real server end to end, these tests pin
//! the *protocol contract* itself, using hand-rolled stub servers where
//! the interesting behavior (out-of-order completion, torn writes, v1-only
//! peers) is easier to stage deliberately than to provoke:
//!
//! * out-of-order completion maps responses to the right sequence numbers;
//! * batch requests report partial failure per item;
//! * handshake version negotiation, including a new client meeting the old
//!   single-shot framing and an old client meeting the new server;
//! * graceful shutdown with requests in flight — complete frames or clean
//!   EOF, never torn frames;
//! * a request dropped mid-frame no longer wedges `TieraClient`: the read
//!   deadline fails the call and the next call reconnects.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use tiera_core::prelude::*;
use tiera_rpc::proto::{
    read_frame, read_hello, split_seq, write_frame, write_hello, write_seq_frame, Request,
    Response, MAX_FRAME, VERSION,
};
use tiera_rpc::{PipelinedClient, ServerConfig, TieraClient, TieraServer};
use tiera_sim::SimEnv;

fn instance() -> Arc<Instance> {
    InstanceBuilder::new("conformance", SimEnv::new(77))
        .tier(MemTier::with_capacity("t1", 1 << 20))
        .build()
        .unwrap()
}

/// Runs `serve(connection_index, stream)` on each accepted connection,
/// each on its own thread (a stalling connection must not block a
/// reconnect). Returns the listen address. The threads die with the test.
fn stub_server(
    conns: usize,
    serve: impl Fn(usize, TcpStream) + Send + Sync + 'static,
) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let serve = Arc::new(serve);
    std::thread::spawn(move || {
        for i in 0..conns {
            match listener.accept() {
                Ok((stream, _)) => {
                    let serve = Arc::clone(&serve);
                    std::thread::spawn(move || serve(i, stream));
                }
                Err(_) => break,
            }
        }
    });
    addr
}

/// Completes the v2 handshake server-side: reads the client hello, grants
/// `VERSION`.
fn stub_handshake(stream: &mut TcpStream) -> u32 {
    let want = read_hello(stream).unwrap();
    write_hello(stream, VERSION).unwrap();
    want
}

// ---- out-of-order completion ----

#[test]
fn out_of_order_responses_map_to_their_sequence_numbers() {
    // The stub collects a burst of requests and answers them in REVERSE
    // submission order, tagging each response with a value derived from
    // its sequence number. Every token must still redeem to its own
    // response.
    const BURST: usize = 16;
    let addr = stub_server(1, |_, mut stream| {
        stub_handshake(&mut stream);
        let mut seqs = Vec::new();
        for _ in 0..BURST {
            let frame = read_frame(&mut stream).unwrap().unwrap();
            let (seq, payload) = split_seq(&frame).unwrap();
            Request::decode(payload).unwrap();
            seqs.push(seq);
        }
        for &seq in seqs.iter().rev() {
            let resp = Response::PutOk {
                latency_ns: seq * 1000 + 7,
            };
            write_seq_frame(&mut stream, seq, &resp.encode()).unwrap();
        }
        stream.flush().unwrap();
    });

    let mut client = PipelinedClient::connect(addr).unwrap();
    let tokens: Vec<_> = (0..BURST)
        .map(|i| client.submit_put(&format!("k{i}"), b"v").unwrap())
        .collect();
    // Redeem in submission order even though the wire carries them
    // reversed: the first wait parks 15 responses.
    for token in tokens {
        let receipt = client.wait_put(token).unwrap();
        assert_eq!(
            receipt.latency.as_nanos(),
            token.seq() * 1000 + 7,
            "token {} redeemed someone else's response",
            token.seq()
        );
    }
    assert_eq!(client.in_flight(), 0);
}

#[test]
fn out_of_order_waits_against_the_real_server() {
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    for i in 0..8 {
        let t = client.submit_put(&format!("k{i}"), format!("v{i}").as_bytes()).unwrap();
        client.wait_put(t).unwrap();
    }
    // Submit eight gets, redeem them in reverse order.
    let tokens: Vec<_> = (0..8).map(|i| client.submit_get(&format!("k{i}")).unwrap()).collect();
    for (i, token) in tokens.into_iter().enumerate().rev() {
        let (value, _) = client.wait_get(token).unwrap();
        assert_eq!(value, format!("v{i}").as_bytes());
    }
    handle.shutdown();
}

#[test]
fn a_response_for_an_unknown_sequence_number_is_a_protocol_error() {
    let addr = stub_server(1, |_, mut stream| {
        stub_handshake(&mut stream);
        let frame = read_frame(&mut stream).unwrap().unwrap();
        let (seq, _) = split_seq(&frame).unwrap();
        // Answer a sequence number the client never issued.
        write_seq_frame(&mut stream, seq + 999, &Response::Pong.encode()).unwrap();
        stream.flush().unwrap();
    });
    let mut client = PipelinedClient::connect(addr).unwrap();
    let token = client.submit(&Request::Ping).unwrap();
    let err = client.wait(token).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
}

#[test]
fn a_duplicate_response_is_a_protocol_error() {
    let addr = stub_server(1, |_, mut stream| {
        stub_handshake(&mut stream);
        // Answer the first request's sequence number twice.
        let frame = read_frame(&mut stream).unwrap().unwrap();
        let (first_seq, _) = split_seq(&frame).unwrap();
        let frame = read_frame(&mut stream).unwrap().unwrap();
        split_seq(&frame).unwrap();
        for _ in 0..2 {
            write_seq_frame(&mut stream, first_seq, &Response::Pong.encode()).unwrap();
        }
        stream.flush().unwrap();
    });
    let mut client = PipelinedClient::connect(addr).unwrap();
    let t0 = client.submit(&Request::Ping).unwrap();
    let t1 = client.submit(&Request::Ping).unwrap();
    assert_eq!(client.wait(t0).unwrap(), Response::Pong);
    let err = client.wait(t1).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
}

// ---- batch partial failure ----

#[test]
fn multi_get_reports_misses_per_item() {
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    for outcome in client.multi_put(&[("present-a", b"1".as_ref()), ("present-b", b"2".as_ref())]).unwrap() {
        outcome.unwrap();
    }
    let fetched = client
        .multi_get(&["present-a", "missing-1", "present-b", "missing-2"])
        .unwrap();
    assert_eq!(fetched.len(), 4);
    assert_eq!(fetched[0].as_ref().unwrap().0, b"1");
    assert_eq!(fetched[2].as_ref().unwrap().0, b"2");
    for miss in [&fetched[1], &fetched[3]] {
        let err = miss.as_ref().unwrap_err();
        assert!(err.to_string().contains("no such object"), "{err}");
    }
    handle.shutdown();
}

#[test]
fn multi_put_reports_capacity_failures_per_item() {
    // A 4 KiB tier: small items land, the oversized one fails, and the
    // batch carries both outcomes instead of failing wholesale.
    let inst = InstanceBuilder::new("tiny", SimEnv::new(78))
        .tier(MemTier::with_capacity("t1", 4096))
        .build()
        .unwrap();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    let big = vec![0u8; 64 * 1024];
    let outcomes = client
        .multi_put(&[
            ("small-1", b"x".as_ref()),
            ("too-big", big.as_slice()),
            ("small-2", b"y".as_ref()),
        ])
        .unwrap();
    assert!(outcomes[0].is_ok());
    let err = outcomes[1].as_ref().unwrap_err();
    assert!(err.to_string().contains("full"), "{err}");
    assert!(outcomes[2].is_ok(), "items after a failure still execute");
    // The successes are durable and readable.
    let fetched = client.multi_get(&["small-1", "small-2"]).unwrap();
    assert!(fetched.iter().all(|f| f.is_ok()));
    handle.shutdown();
}

#[test]
fn multi_delete_reports_missing_keys_per_item() {
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    client.multi_put(&[("a", b"1".as_ref())]).unwrap();
    let outcomes = client.multi_delete(&["a", "never-existed"]).unwrap();
    assert!(outcomes[0].is_ok());
    assert!(outcomes[1].is_err());
    handle.shutdown();
}

// ---- handshake version negotiation ----

#[test]
fn new_client_negotiates_v2_with_the_new_server() {
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = PipelinedClient::connect(handle.addr()).unwrap();
    assert_eq!(client.version(), VERSION);
    handle.shutdown();
}

#[test]
fn future_client_versions_clamp_down_to_v2() {
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    // Speak the hello by hand, asking for a version from the future.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_hello(&mut stream, 99).unwrap();
    let granted = read_hello(&mut stream).unwrap();
    assert_eq!(granted, VERSION, "server must clamp, not refuse or echo");
    // The connection is live at the granted version.
    write_seq_frame(&mut stream, 1, &Request::Ping.encode()).unwrap();
    stream.flush().unwrap();
    let frame = read_frame(&mut stream).unwrap().unwrap();
    let (seq, payload) = split_seq(&frame).unwrap();
    assert_eq!(seq, 1);
    assert_eq!(Response::decode(payload).unwrap(), Response::Pong);
    handle.shutdown();
}

#[test]
fn unsatisfiable_hello_is_refused_with_granted_zero() {
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_hello(&mut stream, 1).unwrap();
    assert_eq!(read_hello(&mut stream).unwrap(), 0, "v1-over-hello is refused");
    // ... and the server closes the connection.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    handle.shutdown();
}

#[test]
fn new_client_meeting_v1_only_framing_errors_cleanly() {
    // An old server reads our hello MAGIC as a frame length, finds it
    // above MAX_FRAME, and closes — exactly what tiera-rpc's own v1 loop
    // did before this PR. The pipelined client must turn that into a clean
    // error, not a hang or a garbage decode.
    let addr = stub_server(2, |i, mut stream| {
        let mut word = [0u8; 4];
        stream.read_exact(&mut word).unwrap();
        let len = u32::from_le_bytes(word) as usize;
        if len > MAX_FRAME {
            return; // old server: drop the connection
        }
        // Connection 2: a well-formed v1 exchange, proving the fallback
        // path works against the same listener.
        assert_eq!(i, 1);
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
        Request::decode(&payload).unwrap();
        write_frame(&mut stream, &Response::Pong.encode()).unwrap();
    });
    let err = PipelinedClient::connect(addr).unwrap_err();
    assert!(
        err.to_string().contains("v1 single-shot framing"),
        "error must tell the caller what went wrong: {err}"
    );
    // The documented fallback: use the single-shot client instead.
    let mut old = TieraClient::connect(addr).unwrap();
    old.ping().unwrap();
}

#[test]
fn v1_server_answering_with_a_frame_is_detected() {
    // A different old-server behavior: it treats the hello as garbage and
    // answers with a v1 Error frame. The frame header is not MAGIC, so the
    // client detects the version mismatch rather than mis-parsing.
    let addr = stub_server(1, |_, mut stream| {
        let mut sink = [0u8; 8];
        stream.read_exact(&mut sink).unwrap();
        let resp = Response::Error {
            message: "bad request".into(),
        };
        write_frame(&mut stream, &resp.encode()).unwrap();
    });
    let err = PipelinedClient::connect(addr).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
}

#[test]
fn old_client_still_speaks_to_the_new_server() {
    // The sniff path: a plain v1 client connects to the pipelined server
    // and everything works as before the protocol change.
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = TieraClient::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    client.put("v1-key", b"v1-value").unwrap();
    let (value, _) = client.get("v1-key").unwrap();
    assert_eq!(value, b"v1-value");
    // And both framings coexist on one server.
    let mut piped = PipelinedClient::connect(handle.addr()).unwrap();
    let (fetched, _) = piped.multi_get(&["v1-key"]).unwrap().remove(0).unwrap();
    assert_eq!(fetched, b"v1-value");
    handle.shutdown();
}

// ---- graceful shutdown with requests in flight ----

#[test]
fn shutdown_with_requests_in_flight_never_tears_a_frame() {
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    // Fill the pipe with 200 puts, get them on the wire, then shut the
    // server down while they are (potentially) still being executed.
    let tokens: Vec<_> = (0..200)
        .map(|i| client.submit_put(&format!("k{i}"), &vec![i as u8; 256]).unwrap())
        .collect();
    client.flush().unwrap();
    handle.shutdown();
    // Contract: every request gets either a complete response frame or a
    // clean EOF at a frame boundary. A torn frame would surface as
    // InvalidData (garbage decode) or an eof-mid-frame read error.
    let mut completed = 0usize;
    let mut first_error: Option<std::io::Error> = None;
    for token in tokens {
        match client.wait_put(token) {
            Ok(_) => {
                assert!(first_error.is_none(), "completion after EOF");
                completed += 1;
            }
            Err(e) => {
                if first_error.is_none() {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}");
                    assert!(e.to_string().contains("server closed"), "torn frame: {e}");
                    first_error = Some(e);
                }
            }
        }
    }
    // The server was mid-burst; whatever it executed, it answered.
    assert!(completed <= 200);
}

#[test]
fn responses_already_executed_are_flushed_before_close() {
    // Complete a burst fully, THEN shut down: every response must already
    // be redeemable (the writer drains its queue before the socket
    // closes).
    let inst = instance();
    let handle = TieraServer::start(inst, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    let tokens: Vec<_> = (0..50).map(|i| client.submit_put(&format!("k{i}"), b"v").unwrap()).collect();
    // Redeem the LAST token first: the server executes one connection's
    // requests in order and the writer preserves queue order, so once
    // response 49 arrives, responses 0..48 are on the wire ahead of it.
    let (last, rest) = tokens.split_last().unwrap();
    client.wait_put(*last).unwrap();
    handle.shutdown();
    for token in rest {
        client.wait_put(*token).unwrap_or_else(|e| {
            panic!("response for executed request {} lost at shutdown: {e}", token.seq())
        });
    }
}

// ---- torn-write wedge: read deadline + reconnect (satellite 4) ----

#[test]
fn server_killed_mid_request_fails_the_call_and_reconnects() {
    // Connection 1: read the request, then drop the socket without
    // answering — the old client would block forever on read. Connection
    // 2: serve properly, proving the client redialed.
    let addr = stub_server(2, |i, mut stream| {
        let frame = read_frame(&mut stream).unwrap().unwrap();
        Request::decode(&frame).unwrap();
        if i == 0 {
            return; // killed mid-request
        }
        write_frame(&mut stream, &Response::Pong.encode()).unwrap();
    });
    let mut client = TieraClient::connect(addr).unwrap();
    assert_eq!(client.redials(), 0, "the initial dial is not a redial");
    let err = client.ping().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    assert!(!client.is_connected(), "errored connection must be poisoned");
    client.ping().unwrap();
    assert!(client.is_connected());
    assert_eq!(
        client.redials(),
        1,
        "exactly one transparent redial — the signal a retrying caller \
         must pair with an idempotency token"
    );
}

#[test]
fn half_a_response_frame_hits_the_read_deadline_not_a_wedge() {
    // Connection 1: answer with HALF a frame, then stall with the socket
    // open — the torn-write scenario from the issue. The per-request
    // deadline must fail the call; the stub holds the socket open longer
    // than the deadline to prove the client did not just see a reset.
    let addr = stub_server(2, |i, mut stream| {
        let frame = read_frame(&mut stream).unwrap().unwrap();
        Request::decode(&frame).unwrap();
        if i == 0 {
            let encoded = Response::Pong.encode();
            let torn = &(64u32).to_le_bytes(); // promises 64 bytes...
            stream.write_all(torn).unwrap();
            stream.write_all(&encoded).unwrap(); // ...delivers 1
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(800));
            return;
        }
        write_frame(&mut stream, &Response::Pong.encode()).unwrap();
    });
    let mut client =
        TieraClient::connect_with_deadline(addr, Some(Duration::from_millis(250))).unwrap();
    let err = client.ping().unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "expected a deadline error, got {err}"
    );
    // The wedge is gone: the very next call transparently reconnects.
    client.ping().unwrap();
}

#[test]
fn deadline_failure_does_not_leak_the_stale_response_into_the_next_call() {
    // Connection 1: stall past the deadline, then answer with a WRONG
    // response. Because the client poisons and redials instead of reusing
    // the socket, that late response can never be attributed to a later
    // request.
    let addr = stub_server(2, |i, mut stream| {
        let frame = read_frame(&mut stream).unwrap().unwrap();
        Request::decode(&frame).unwrap();
        if i == 0 {
            std::thread::sleep(Duration::from_millis(500));
            let _ = write_frame(
                &mut stream,
                &Response::Error { message: "stale".into() }.encode(),
            );
            return;
        }
        write_frame(&mut stream, &Response::Pong.encode()).unwrap();
    });
    let mut client =
        TieraClient::connect_with_deadline(addr, Some(Duration::from_millis(150))).unwrap();
    assert!(client.ping().is_err());
    client.ping().expect("fresh connection must not see the stale frame");
}
