//! Chaos over the RPC path (ISSUE 6 satellite 3): multi-threaded
//! pipelined clients hammer one live server while the fault plane from
//! `crates/chaos` flaps the tiers underneath it.
//!
//! Each client thread owns a disjoint key prefix and a private
//! [`WriteLedger`] recording exactly what the server acknowledged over the
//! wire. After the hammer phase the fault schedule is cleared and every
//! ledger is checked against the instance: no acknowledged write may be
//! lost or corrupted, failed brand-new PUTs must not leave phantom
//! metadata, and the registry's incremental aggregates must match a full
//! recount — the same invariants the in-process chaos scenarios enforce,
//! now proven to survive transport, pipelining, and batching.
//!
//! The fault schedule is seed-deterministic: constructing it twice from
//! the same seed yields a byte-identical description (asserted below), so
//! a failing run reports one number to reproduce the fault plane.

use std::sync::Arc;
use std::time::Duration;

use tiera_chaos::{FaultSchedule, InvariantReport, WriteLedger};
use tiera_core::prelude::*;
use tiera_rpc::{PipelinedClient, ServerConfig, TieraServer};
use tiera_sim::{FailureKind, SimDuration, SimEnv, SimTime};
use tiera_tiers::{BlockTier, MemoryTier};

const SEED: u64 = 0x6_CA05;
const THREADS: usize = 3;
const ROUNDS: usize = 60;
const KEYS_PER_THREAD: usize = 12;

/// The fault plane: both tiers flap on millisecond windows (the server
/// maps wall time 1:1 onto virtual time, so these windows are hit while
/// the clients hammer). A pure function of the seed.
fn schedule(seed: u64) -> FaultSchedule {
    FaultSchedule::new(seed)
        .flap(
            "memcached",
            SimTime::from_nanos(10_000_000), // 10 ms in
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
            30,
            FailureKind::All,
        )
        .flap(
            "ebs",
            SimTime::from_nanos(15_000_000),
            SimDuration::from_millis(8),
            SimDuration::from_millis(17),
            24,
            FailureKind::Writes,
        )
}

#[test]
fn fault_schedule_is_seed_deterministic() {
    let a = schedule(SEED).describe();
    let b = schedule(SEED).describe();
    assert_eq!(a, b, "same seed must replay the identical fault plane");
    assert!(a.contains("memcached") && a.contains("ebs"), "{a}");
}

#[test]
fn pipelined_hammer_under_flapping_tiers_upholds_ledger_invariants() {
    let env = SimEnv::new(SEED);
    let mem = Arc::new(MemoryTier::same_az("memcached", 64 << 20, &env));
    let ebs = Arc::new(BlockTier::ebs("ebs", 256 << 20, &env));
    let instance = InstanceBuilder::new("rpc-chaos", env)
        .tier(Arc::clone(&mem))
        .tier(Arc::clone(&ebs))
        .rule(
            // Write-through: an ack over the wire means both tiers took
            // the write — exactly the promise the ledger holds us to.
            Rule::on(EventKind::action(ActionOp::Put)).respond(ResponseSpec::store(
                Selector::Inserted,
                ["memcached", "ebs"],
            )),
        )
        .build()
        .unwrap();

    let handle = TieraServer::start(
        Arc::clone(&instance),
        "127.0.0.1:0",
        ServerConfig {
            request_threads: THREADS,
            retry: Some(RetryPolicy::robust()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Arm the fault plane AFTER the server is up so the flap windows
    // (anchored at virtual ≈ wall time zero = server start) overlap the
    // hammer phase.
    let injectors = [("memcached", mem.failures()), ("ebs", ebs.failures())];
    let injector_refs: Vec<(&str, &tiera_sim::FailureInjector)> = injectors
        .iter()
        .map(|(n, i)| (*n, i.as_ref() as &tiera_sim::FailureInjector))
        .collect();
    let plan = schedule(SEED);
    plan.apply(&injector_refs);

    // ---- hammer: THREADS pipelined clients, disjoint key prefixes.
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut ledger = WriteLedger::new();
                let mut client = PipelinedClient::connect(addr).unwrap();
                let keys: Vec<String> =
                    (0..KEYS_PER_THREAD).map(|k| format!("t{t}/k{k}")).collect();
                for round in 0..ROUNDS {
                    // Batched writes: value is a pure function of
                    // (thread, key, round) so corruption is detectable.
                    let values: Vec<Vec<u8>> = (0..KEYS_PER_THREAD)
                        .map(|k| format!("value/{t}/{k}/{round}").into_bytes())
                        .collect();
                    let items: Vec<(&str, &[u8])> = keys
                        .iter()
                        .zip(&values)
                        .map(|(k, v)| (k.as_str(), v.as_slice()))
                        .collect();
                    let outcomes = client.multi_put(&items).expect("transport must survive");
                    for ((key, value), outcome) in keys.iter().zip(&values).zip(&outcomes) {
                        match outcome {
                            Ok(_) => ledger.record_ack(key, value),
                            Err(_) => ledger.record_failure(key, value),
                        }
                    }
                    // Batched reads: anything served must be a value some
                    // write for that key acknowledged (or ambiguously
                    // attempted).
                    let key_refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
                    for (key, fetched) in
                        key_refs.iter().zip(client.multi_get(&key_refs).unwrap())
                    {
                        if let Ok((data, _)) = fetched {
                            assert!(
                                ledger.verify_read(key, &data),
                                "read of {key} returned bytes outside the acknowledged set"
                            );
                        }
                    }
                    // A few plain pipelined singles to mix frame shapes.
                    let solo_key = format!("t{t}/solo");
                    let solo_val = format!("solo/{t}/{round}").into_bytes();
                    let token = client.submit_put(&solo_key, &solo_val).unwrap();
                    match client.wait_put(token) {
                        Ok(_) => ledger.record_ack(&solo_key, &solo_val),
                        Err(_) => ledger.record_failure(&solo_key, &solo_val),
                    }
                    // Stretch the hammer across the flap windows.
                    std::thread::sleep(Duration::from_millis(3));
                }
                ledger
            })
        })
        .collect();
    let ledgers: Vec<WriteLedger> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // ---- quiesce: clear the fault plane, then sweep the invariants.
    plan.clear(&injector_refs);
    handle.shutdown();

    let total_acked: usize = ledgers.iter().map(|l| l.acked_keys()).sum();
    assert!(
        total_acked > 0,
        "the hammer phase must land at least some acknowledged writes"
    );

    let now = instance.env().clock().now() + SimDuration::from_secs(1);
    let mut report = InvariantReport::default();
    for ledger in &ledgers {
        report.merge(ledger.check(&instance, now, false));
    }
    assert!(
        report.ok(),
        "ledger invariants violated over the RPC path (seed {SEED}):\n{}",
        report.violations.join("\n")
    );

    // The sharded registry survived THREADS workers of batched writes.
    for tier in instance.tier_names() {
        assert_eq!(
            instance.registry().aggregates(&tier),
            instance.registry().recount_aggregates(&tier),
            "aggregate drift in {tier}"
        );
    }
}
