//! Protocol fuzz + property tests (ISSUE 6 satellite 1).
//!
//! Two families, mirroring the spec-parser fuzz from PR 2:
//!
//! * **Round-trip properties**: for every `Request` and `Response` variant
//!   — including the `Multi*` batch frames and `Batch` with partial
//!   failure — `decode(encode(m)) == m` and the re-encoding is
//!   byte-identical. Encodings are canonical: there is exactly one byte
//!   string per message.
//! * **Decoder-never-panics fuzz**: the decoders, the frame reader, the
//!   hello reader, and the sequence splitter must return `Err`/`Ok` on
//!   every input — truncations at every prefix length, single-byte
//!   corruptions, pure random bytes, and adversarial length/count fields —
//!   never panic and never allocate proportionally to an attacker-chosen
//!   count. (The hermetic source lint separately asserts `proto.rs` has no
//!   `unwrap`/`panic!` outside its test module.)

use tiera_rpc::proto::{
    negotiate, read_frame, read_hello, split_seq, write_frame, write_hello, write_seq_frame,
    PutItem, Request, Response, MAGIC, MAX_BATCH, MAX_FRAME, SEQ_PREFIX, VERSION,
};
use tiera_support::prop::gen;
use tiera_support::{prop_check, SimRng};

const KEY_ALPHABET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_-.";

fn arb_key(rng: &mut SimRng) -> String {
    gen::string_of(rng, KEY_ALPHABET, 0..33)
}

fn arb_tags(rng: &mut SimRng) -> Vec<String> {
    gen::vec_of(rng, 0..5, |rng| gen::string_of(rng, KEY_ALPHABET, 1..9))
}

fn arb_put_item(rng: &mut SimRng) -> PutItem {
    PutItem {
        key: arb_key(rng),
        value: gen::byte_vec(rng, 0..129),
        tags: arb_tags(rng),
    }
}

/// A random request covering every variant (opcodes 0..=12).
fn arb_request(rng: &mut SimRng) -> Request {
    match gen::usize_in(rng, 0..13) {
        0 => Request::Ping,
        1 => Request::Put {
            key: arb_key(rng),
            value: gen::byte_vec(rng, 0..257),
            tags: arb_tags(rng),
        },
        2 => Request::Get { key: arb_key(rng) },
        3 => Request::Delete { key: arb_key(rng) },
        4 => Request::Stats,
        5 => Request::AddRule {
            spec_text: gen::printable_ascii(rng, 0..129),
        },
        6 => Request::RemoveRule {
            rule_id: rng.next_u64(),
        },
        7 => Request::ListRules,
        8 => Request::AttachTier {
            type_name: arb_key(rng),
            label: arb_key(rng),
            capacity: rng.next_u64(),
        },
        9 => Request::DetachTier { label: arb_key(rng) },
        10 => Request::MultiPut {
            items: gen::vec_of(rng, 0..9, arb_put_item),
        },
        11 => Request::MultiGet {
            keys: gen::vec_of(rng, 0..9, arb_key),
        },
        _ => Request::MultiDelete {
            keys: gen::vec_of(rng, 0..9, arb_key),
        },
    }
}

/// A random non-batch response (a legal `Batch` part).
fn arb_part(rng: &mut SimRng) -> Response {
    let n = gen::usize_in(rng, 0..8);
    part_for(rng, n)
}

fn part_for(rng: &mut SimRng, n: usize) -> Response {
    match n {
        0 => Response::Pong,
        1 => Response::PutOk {
            latency_ns: rng.next_u64(),
        },
        2 => Response::GetOk {
            value: gen::byte_vec(rng, 0..257),
            latency_ns: rng.next_u64(),
            served_by: arb_key(rng),
        },
        3 => Response::Deleted {
            latency_ns: rng.next_u64(),
        },
        4 => Response::Stats {
            objects: rng.next_u64(),
            reads: rng.next_u64(),
            writes: rng.next_u64(),
            events: rng.next_u64(),
        },
        5 => Response::Error {
            message: gen::printable_ascii(rng, 0..65),
        },
        6 => Response::Ok,
        _ => Response::RuleAdded {
            rule_id: rng.next_u64(),
        },
    }
}

/// A random response covering every variant (opcodes 0..=9).
fn arb_response(rng: &mut SimRng) -> Response {
    match gen::usize_in(rng, 0..10) {
        n @ 0..=7 => part_for(rng, n),
        8 => Response::Rules {
            rules: gen::vec_of(rng, 0..9, |rng| (rng.next_u64(), arb_key(rng))),
        },
        _ => Response::Batch {
            parts: gen::vec_of(rng, 0..9, arb_part),
        },
    }
}

#[test]
fn prop_request_roundtrip_byte_identical() {
    prop_check!(cases = 256, |rng| {
        let req = arb_request(rng);
        let enc = req.encode();
        let dec = Request::decode(&enc).unwrap_or_else(|e| panic!("decode {req:?}: {e}"));
        assert_eq!(dec, req);
        assert_eq!(dec.encode(), enc, "re-encoding must be byte-identical");
    });
}

#[test]
fn prop_response_roundtrip_byte_identical() {
    prop_check!(cases = 256, |rng| {
        let resp = arb_response(rng);
        let enc = resp.encode();
        let dec = Response::decode(&enc).unwrap_or_else(|e| panic!("decode {resp:?}: {e}"));
        assert_eq!(dec, resp);
        assert_eq!(dec.encode(), enc, "re-encoding must be byte-identical");
    });
}

#[test]
fn prop_batch_with_partial_failure_roundtrips() {
    prop_check!(cases = 64, |rng| {
        // Interleave successes and failures so per-item outcomes survive
        // the wire in order.
        let parts = gen::vec_of(rng, 1..17, |rng| {
            if gen::boolean(rng) {
                Response::Error {
                    message: gen::printable_ascii(rng, 0..33),
                }
            } else {
                arb_part(rng)
            }
        });
        let resp = Response::Batch { parts };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    });
}

#[test]
fn prop_decode_rejects_every_truncation() {
    // Every strict prefix of a valid encoding must fail to decode (the
    // format is self-delimiting with a trailing-bytes check), and must not
    // panic.
    prop_check!(cases = 64, |rng| {
        let enc = arb_request(rng).encode();
        for cut in 0..enc.len() {
            assert!(
                Request::decode(&enc[..cut]).is_err(),
                "prefix of length {cut} of {enc:?} decoded"
            );
        }
        let enc = arb_response(rng).encode();
        for cut in 0..enc.len() {
            assert!(Response::decode(&enc[..cut]).is_err());
        }
    });
}

#[test]
fn prop_decode_survives_single_byte_corruption() {
    // Flipping any one byte must yield Ok or Err — never a panic. (Some
    // corruptions still decode, e.g. a flipped value byte; that's fine.)
    prop_check!(cases = 64, |rng| {
        let enc = arb_request(rng).encode();
        if enc.is_empty() {
            return;
        }
        let pos = gen::usize_in(rng, 0..enc.len());
        let bit = 1u8 << gen::usize_in(rng, 0..8);
        let mut corrupt = enc.clone();
        corrupt[pos] ^= bit;
        let _ = Request::decode(&corrupt);
        let _ = Response::decode(&corrupt);
    });
}

#[test]
fn prop_decode_never_panics_on_random_bytes() {
    prop_check!(cases = 512, |rng| {
        let bytes = gen::byte_vec(rng, 0..513);
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = split_seq(&bytes);
        let _ = read_hello(&mut &bytes[..]);
        let _ = read_frame(&mut &bytes[..]);
    });
}

#[test]
fn prop_decode_with_plausible_opcode_never_panics() {
    // Random bytes almost always die on the opcode; force a valid opcode
    // so the field decoders see the garbage.
    prop_check!(cases = 512, |rng| {
        let mut bytes = gen::byte_vec(rng, 1..257);
        bytes[0] = gen::usize_in(rng, 0..13) as u8;
        let _ = Request::decode(&bytes);
        bytes[0] = gen::usize_in(rng, 0..10) as u8;
        let _ = Response::decode(&bytes);
    });
}

#[test]
fn adversarial_length_fields_fail_before_allocation() {
    // A frame/field/count limit must reject a hostile length before any
    // `Vec::with_capacity` scales with it. These inputs are tiny; if the
    // decoder allocated what the length claims, the test would OOM.
    for op in [1u8, 2, 3, 5, 9] {
        // String/bytes field claiming MAX_FRAME+1 bytes.
        let mut enc = vec![op];
        enc.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
        assert!(Request::decode(&enc).is_err(), "op {op}");
    }
    for op in [10u8, 11, 12] {
        // Batch count claiming u32::MAX items.
        let mut enc = vec![op];
        enc.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&enc).is_err(), "op {op}");
        // ... and exactly MAX_BATCH+1 (boundary).
        let mut enc = vec![op];
        enc.extend_from_slice(&((MAX_BATCH + 1) as u32).to_le_bytes());
        assert!(Request::decode(&enc).is_err(), "op {op} boundary");
    }
    // Put with a hostile tag count.
    let mut enc = vec![1u8];
    enc.extend_from_slice(&0u32.to_le_bytes()); // key ""
    enc.extend_from_slice(&0u32.to_le_bytes()); // value []
    enc.extend_from_slice(&u32::MAX.to_le_bytes()); // tags: 4 billion
    assert!(Request::decode(&enc).is_err());
    // Rules response with a hostile rule count.
    let mut enc = vec![8u8];
    enc.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::decode(&enc).is_err());
    // Batch response with a hostile part count.
    let mut enc = vec![9u8];
    enc.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::decode(&enc).is_err());
    // Oversized frame length on the wire.
    let header = ((MAX_FRAME + 1) as u32).to_le_bytes();
    assert!(read_frame(&mut &header[..]).is_err());
}

#[test]
fn invalid_utf8_in_string_fields_is_rejected() {
    let mut enc = vec![2u8]; // Get
    enc.extend_from_slice(&2u32.to_le_bytes());
    enc.extend_from_slice(&[0xFF, 0xFE]);
    let err = Request::decode(&enc).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn nested_batch_depth_is_bounded() {
    // Hand-encode Batch[Batch[Pong]]: count=1, then opcode 9 again. The
    // one-level recursion bound must reject it (a recursive decoder with
    // no bound would accept arbitrarily deep nesting → stack overflow).
    let mut enc = vec![9u8];
    enc.extend_from_slice(&1u32.to_le_bytes());
    enc.push(9);
    enc.extend_from_slice(&1u32.to_le_bytes());
    enc.push(0); // Pong
    assert!(Response::decode(&enc).is_err());
}

#[test]
fn prop_hello_fuzz() {
    // read_hello on arbitrary 8-byte words: Ok only when the first word is
    // exactly MAGIC.
    prop_check!(cases = 256, |rng| {
        let word = if gen::boolean(rng) { MAGIC } else { rng.next_u64() as u32 };
        let version = rng.next_u64() as u32;
        let mut buf = Vec::new();
        buf.extend_from_slice(&word.to_le_bytes());
        buf.extend_from_slice(&version.to_le_bytes());
        match read_hello(&mut &buf[..]) {
            Ok(v) => {
                assert_eq!(word, MAGIC);
                assert_eq!(v, version);
            }
            Err(_) => assert_ne!(word, MAGIC),
        }
        // Truncated hellos always fail.
        for cut in 0..8 {
            assert!(read_hello(&mut &buf[..cut]).is_err());
        }
    });
}

#[test]
fn prop_seq_frame_fuzz() {
    prop_check!(cases = 128, |rng| {
        let seq = rng.next_u64();
        let payload = gen::byte_vec(rng, 0..257);
        let mut buf = Vec::new();
        write_seq_frame(&mut buf, seq, &payload).unwrap();
        let frame = read_frame(&mut &buf[..]).unwrap().unwrap();
        let (got_seq, got_payload) = split_seq(&frame).unwrap();
        assert_eq!(got_seq, seq);
        assert_eq!(got_payload, &payload[..]);
        // Anything shorter than the prefix fails cleanly.
        let short = gen::usize_in(rng, 0..SEQ_PREFIX);
        assert!(split_seq(&frame[..short]).is_err());
    });
}

#[test]
fn hello_and_negotiation_sanity() {
    let mut buf = Vec::new();
    write_hello(&mut buf, VERSION).unwrap();
    assert_eq!(read_hello(&mut &buf[..]).unwrap(), VERSION);
    // A v1 frame header can never be mistaken for a hello, and vice versa:
    // MAGIC is above MAX_FRAME.
    let mut frame = Vec::new();
    write_frame(&mut frame, b"x").unwrap();
    assert!(read_hello(&mut &frame[..]).is_err());
    assert!((MAGIC as usize) > MAX_FRAME);
    assert_eq!(negotiate(VERSION), VERSION);
    assert_eq!(negotiate(u32::MAX), VERSION);
    assert_eq!(negotiate(1), 0);
}
