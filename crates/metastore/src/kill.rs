//! Deterministic kill points for crash testing.
//!
//! A [`KillPoints`] handle is shared between a [`MetaStore`] and a crash
//! harness. The harness arms exactly one [`KillSite`]; when store execution
//! reaches that site the pending operation aborts with
//! [`MetaStoreError::Killed`], leaving the on-disk state exactly as a
//! process death at that instruction would. The harness then simulates the
//! loss of everything the OS had not persisted — truncating each shard's
//! active segment to its last-fsynced length (see
//! [`MetaStore::crash_image`]) — drops the store, reopens the directory,
//! and checks the recovery invariant: *every acknowledged durable write
//! survives, and no phantom keys appear*.
//!
//! Sites are checked with plain atomics (no locks), so arming them never
//! perturbs the store's lock order and a disarmed store pays two relaxed
//! loads per site.
//!
//! [`MetaStore`]: crate::MetaStore
//! [`MetaStore::crash_image`]: crate::MetaStore::crash_image
//! [`MetaStoreError::Killed`]: crate::MetaStoreError::Killed

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use crate::store::MetaStoreError;

/// A named crash site inside the store's mutation machinery.
///
/// The sites cover every durability transition: mid-batch (some records of
/// a group-commit batch appended, none acknowledged), either side of the
/// batch fsync, both halves of a segment rotation, and the full snapshot
/// protocol (mid-write, pre-fsync, pre-rename, post-rename, post-cleanup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillSite {
    /// Between two record appends of one commit batch (before the fsync:
    /// nothing in the batch was acknowledged).
    BatchMidAppend,
    /// After every record of a batch was appended, before the fsync.
    BatchBeforeSync,
    /// After the batch fsync, before the index update and the acks (the
    /// records are durable but unacknowledged — reopening may surface
    /// them; that is allowed).
    BatchAfterSync,
    /// Rotation decided, before the sealing fsync of the active segment.
    RotateBeforeSealSync,
    /// Active segment sealed and fsynced, before the new segment exists.
    RotateAfterSeal,
    /// Mid-way through writing the snapshot temp file (entries written,
    /// seal record absent — the snapshot must be rejected on reopen).
    SnapMidWrite,
    /// Snapshot temp file fully written, before its fsync.
    SnapBeforeSync,
    /// Snapshot temp file durable, before the rename that commits it.
    SnapBeforeRename,
    /// Snapshot renamed into place, before the old segments are removed.
    SnapAfterRename,
    /// Old segments removed, before the fresh active segment exists.
    SnapAfterCleanup,
}

impl KillSite {
    /// Every site, in protocol order — the crash matrix iterates this.
    pub const ALL: [KillSite; 10] = [
        KillSite::BatchMidAppend,
        KillSite::BatchBeforeSync,
        KillSite::BatchAfterSync,
        KillSite::RotateBeforeSealSync,
        KillSite::RotateAfterSeal,
        KillSite::SnapMidWrite,
        KillSite::SnapBeforeSync,
        KillSite::SnapBeforeRename,
        KillSite::SnapAfterRename,
        KillSite::SnapAfterCleanup,
    ];

    /// Stable site name (used in error text and crash-matrix reports).
    pub fn name(self) -> &'static str {
        match self {
            KillSite::BatchMidAppend => "batch.mid_append",
            KillSite::BatchBeforeSync => "batch.before_sync",
            KillSite::BatchAfterSync => "batch.after_sync",
            KillSite::RotateBeforeSealSync => "rotate.before_seal_sync",
            KillSite::RotateAfterSeal => "rotate.after_seal",
            KillSite::SnapMidWrite => "snap.mid_write",
            KillSite::SnapBeforeSync => "snap.before_sync",
            KillSite::SnapBeforeRename => "snap.before_rename",
            KillSite::SnapAfterRename => "snap.after_rename",
            KillSite::SnapAfterCleanup => "snap.after_cleanup",
        }
    }

    fn index(self) -> usize {
        KillSite::ALL.iter().position(|&s| s == self).expect("site in ALL")
    }
}

/// Shared arming state for the store's kill sites (see the module docs).
#[derive(Debug, Default)]
pub struct KillPoints {
    /// Armed site index + 1; `0` means disarmed.
    armed: AtomicUsize,
    /// Hits of the armed site to let pass before firing (so a crash can be
    /// planted at the *n*-th rotation rather than the first).
    skip: AtomicU32,
}

impl KillPoints {
    /// A disarmed set of kill points.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `site`, letting `skip` hits pass before it fires. Re-arming
    /// replaces any previously armed site.
    pub fn arm(&self, site: KillSite, skip: u32) {
        self.skip.store(skip, Ordering::SeqCst);
        self.armed.store(site.index() + 1, Ordering::SeqCst);
    }

    /// Disarms every site.
    pub fn disarm(&self) {
        self.armed.store(0, Ordering::SeqCst);
    }

    /// Store-side hook: fails with [`MetaStoreError::Killed`] when `site`
    /// is armed and its skip budget is exhausted. Fires at most once per
    /// arming (the site disarms itself as it fires).
    pub(crate) fn check(&self, site: KillSite) -> Result<(), MetaStoreError> {
        if self.armed.load(Ordering::Relaxed) != site.index() + 1 {
            return Ok(());
        }
        let passed = self
            .skip
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
            .is_ok();
        if passed {
            return Ok(());
        }
        self.armed.store(0, Ordering::SeqCst);
        Err(MetaStoreError::Killed(site.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_are_unique_and_stable() {
        let mut names: Vec<_> = KillSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KillSite::ALL.len());
        assert_eq!(KillSite::SnapBeforeRename.name(), "snap.before_rename");
    }

    #[test]
    fn armed_site_fires_once_after_skips() {
        let kp = KillPoints::new();
        kp.arm(KillSite::BatchBeforeSync, 2);
        // Other sites never fire.
        kp.check(KillSite::SnapMidWrite).unwrap();
        // Two skipped hits, then the kill, then disarmed.
        kp.check(KillSite::BatchBeforeSync).unwrap();
        kp.check(KillSite::BatchBeforeSync).unwrap();
        let err = kp.check(KillSite::BatchBeforeSync).unwrap_err();
        assert!(matches!(err, MetaStoreError::Killed("batch.before_sync")));
        kp.check(KillSite::BatchBeforeSync).unwrap();
    }

    #[test]
    fn disarm_clears_pending_kill() {
        let kp = KillPoints::new();
        kp.arm(KillSite::SnapAfterRename, 0);
        kp.disarm();
        kp.check(KillSite::SnapAfterRename).unwrap();
    }
}
