//! On-disk log record framing.
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! +--------+--------+----------+---------+-----------+------------+
//! | crc32  | klen   | vlen     | kind    | key bytes | value bytes|
//! | u32    | u32    | u32      | u8      | klen      | vlen       |
//! +--------+--------+----------+---------+-----------+------------+
//! ```
//!
//! The CRC covers `klen | vlen | kind | key | value`. A record whose CRC
//! does not verify — or that extends past the end of the file — is treated
//! as a torn tail: replay stops there and the file is truncated to the last
//! good boundary on the next append.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};

use tiera_codec::crc32;

/// Kind tag of a log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// An insert/overwrite of a key.
    Put,
    /// A tombstone marking the key deleted.
    Delete,
    /// Snapshot seal: the final record of a snapshot file, whose value is
    /// the little-endian `u64` count of entries preceding it. A snapshot
    /// without a matching seal is torn and is rejected at recovery.
    Seal,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Put => 0,
            RecordKind::Delete => 1,
            RecordKind::Seal => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(RecordKind::Put),
            1 => Some(RecordKind::Delete),
            2 => Some(RecordKind::Seal),
            _ => None,
        }
    }
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record kind.
    pub kind: RecordKind,
    /// Key bytes.
    pub key: Vec<u8>,
    /// Value bytes (empty for tombstones).
    pub value: Vec<u8>,
}

impl Record {
    /// A put record.
    pub fn put(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        Record {
            kind: RecordKind::Put,
            key: key.into(),
            value: value.into(),
        }
    }

    /// A delete tombstone.
    pub fn delete(key: impl Into<Vec<u8>>) -> Self {
        Record {
            kind: RecordKind::Delete,
            key: key.into(),
            value: Vec::new(),
        }
    }

    /// A snapshot seal over `count` preceding entries.
    pub fn seal(count: u64) -> Self {
        Record {
            kind: RecordKind::Seal,
            key: Vec::new(),
            value: count.to_le_bytes().to_vec(),
        }
    }

    /// The entry count carried by a [`RecordKind::Seal`] record, if this
    /// is a well-formed one.
    pub fn seal_count(&self) -> Option<u64> {
        if self.kind != RecordKind::Seal {
            return None;
        }
        let bytes: [u8; 8] = self.value.as_slice().try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }

    /// Encoded size on disk.
    pub fn encoded_len(&self) -> u64 {
        encoded_record_len(self.key.len(), self.value.len())
    }
}

/// Exact on-disk size of a record with the given key and value lengths —
/// the single source of truth for dead-byte accounting, shared by the
/// write path and segment replay so the compaction-trigger math is the
/// same whether the store was just opened or long-running.
pub fn encoded_record_len(key_len: usize, value_len: usize) -> u64 {
    HEADER as u64 + key_len as u64 + value_len as u64
}

const HEADER: usize = 13; // crc(4) + klen(4) + vlen(4) + kind(1)

/// Appends framed records to a log file.
#[derive(Debug)]
pub struct LogWriter {
    out: BufWriter<File>,
    len: u64,
    synced_len: u64,
}

impl LogWriter {
    /// Opens `file` for appending; `existing_len` is the current valid
    /// length (the writer truncates anything beyond it, discarding a
    /// previously detected torn tail).
    pub fn new(mut file: File, existing_len: u64) -> io::Result<Self> {
        file.set_len(existing_len)?;
        file.seek(SeekFrom::Start(existing_len))?;
        Ok(Self {
            out: BufWriter::new(file),
            len: existing_len,
            // Pre-existing bytes came from a previous process life, so as
            // far as *this* writer's crash image is concerned they are
            // already on disk.
            synced_len: existing_len,
        })
    }

    /// Appends one record; returns its starting offset.
    pub fn append(&mut self, rec: &Record) -> io::Result<u64> {
        let offset = self.len;
        let mut body = Vec::with_capacity(HEADER - 4 + rec.key.len() + rec.value.len());
        body.extend_from_slice(&(rec.key.len() as u32).to_le_bytes());
        body.extend_from_slice(&(rec.value.len() as u32).to_le_bytes());
        body.push(rec.kind.to_byte());
        body.extend_from_slice(&rec.key);
        body.extend_from_slice(&rec.value);
        let crc = crc32::checksum(&body);
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&body)?;
        self.len += 4 + body.len() as u64;
        Ok(offset)
    }

    /// Flushes buffered data to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flushes and fsyncs.
    pub fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.synced_len = self.len;
        Ok(())
    }

    /// Bytes written so far (valid log length).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Bytes known to have reached stable storage (length as of the last
    /// [`sync`](Self::sync)). The crash harness truncates files to this
    /// length to simulate losing everything the OS had not persisted.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Replays framed records from a log file, stopping at the first torn or
/// corrupt record.
#[derive(Debug)]
pub struct LogReader {
    input: BufReader<File>,
    /// Offset of the byte after the last successfully decoded record.
    pub valid_len: u64,
}

impl LogReader {
    /// Wraps a file opened for reading (positioned at the start).
    pub fn new(file: File) -> Self {
        Self {
            input: BufReader::new(file),
            valid_len: 0,
        }
    }

    /// Reads the next record; `Ok(None)` at clean EOF *or* on a torn/corrupt
    /// tail (recovery treats both as end-of-log).
    pub fn next_record(&mut self) -> io::Result<Option<Record>> {
        let mut header = [0u8; HEADER];
        match read_exact_or_eof(&mut self.input, &mut header)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => return Ok(None), // torn header
            ReadOutcome::Full => {}
        }
        let crc = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let klen = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        let vlen = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
        let kind_byte = header[12];
        // Guard against garbage lengths before allocating.
        const MAX_RECORD: usize = 256 * 1024 * 1024;
        if klen.saturating_add(vlen) > MAX_RECORD {
            return Ok(None);
        }
        let mut payload = vec![0u8; klen + vlen];
        match read_exact_or_eof(&mut self.input, &mut payload)? {
            ReadOutcome::Eof | ReadOutcome::Partial => return Ok(None), // torn body
            ReadOutcome::Full => {}
        }
        let mut body = Vec::with_capacity(HEADER - 4 + payload.len());
        body.extend_from_slice(&header[4..]);
        body.extend_from_slice(&payload);
        if crc32::checksum(&body) != crc {
            return Ok(None); // corrupt record — stop replay here
        }
        let Some(kind) = RecordKind::from_byte(kind_byte) else {
            return Ok(None);
        };
        let value = payload.split_off(klen);
        let key = payload;
        self.valid_len += (HEADER + klen + vlen) as u64;
        Ok(Some(Record { kind, key, value }))
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tiera-log-{}-{}-{}.log",
            std::process::id(),
            tag,
            n
        ))
    }

    fn open_rw(path: &PathBuf) -> File {
        OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)
            .unwrap()
    }

    #[test]
    fn write_then_replay() {
        let path = temp_path("replay");
        let mut w = LogWriter::new(open_rw(&path), 0).unwrap();
        w.append(&Record::put("alpha", "1")).unwrap();
        w.append(&Record::put("beta", "2")).unwrap();
        w.append(&Record::delete("alpha")).unwrap();
        w.sync().unwrap();

        let mut r = LogReader::new(File::open(&path).unwrap());
        let recs: Vec<Record> = std::iter::from_fn(|| r.next_record().unwrap()).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], Record::put("alpha", "1"));
        assert_eq!(recs[2], Record::delete("alpha"));
        assert_eq!(r.valid_len, w.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_path("torn");
        let mut w = LogWriter::new(open_rw(&path), 0).unwrap();
        w.append(&Record::put("good", "value")).unwrap();
        w.append(&Record::put("torn", "this-will-be-cut")).unwrap();
        w.sync().unwrap();
        let full = w.len();
        drop(w);
        // Simulate a crash mid-write: cut 5 bytes off the final record.
        let f = open_rw(&path);
        f.set_len(full - 5).unwrap();
        drop(f);

        let mut r = LogReader::new(File::open(&path).unwrap());
        let recs: Vec<Record> = std::iter::from_fn(|| r.next_record().unwrap()).collect();
        assert_eq!(recs.len(), 1, "only the intact record survives");
        assert_eq!(recs[0].key, b"good");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = temp_path("corrupt");
        let mut w = LogWriter::new(open_rw(&path), 0).unwrap();
        let first_end = {
            w.append(&Record::put("one", "1")).unwrap();
            w.len()
        };
        w.append(&Record::put("two", "2")).unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip a payload byte in the second record.
        let data = std::fs::read(&path).unwrap();
        let mut data = data;
        let idx = first_end as usize + HEADER + 1;
        data[idx] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let mut r = LogReader::new(File::open(&path).unwrap());
        let recs: Vec<Record> = std::iter::from_fn(|| r.next_record().unwrap()).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(r.valid_len, first_end);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_recovery_truncates_garbage() {
        let path = temp_path("truncate");
        let mut w = LogWriter::new(open_rw(&path), 0).unwrap();
        w.append(&Record::put("keep", "k")).unwrap();
        w.sync().unwrap();
        let good = w.len();
        drop(w);
        // Garbage tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB; 7]).unwrap();
        }
        // Re-open at the recovered length; garbage must be dropped.
        let mut w = LogWriter::new(open_rw(&path), good).unwrap();
        w.append(&Record::put("new", "n")).unwrap();
        w.sync().unwrap();
        drop(w);
        let mut r = LogReader::new(File::open(&path).unwrap());
        let recs: Vec<Record> = std::iter::from_fn(|| r.next_record().unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].key, b"new");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_value_and_binary_keys() {
        let path = temp_path("binary");
        let mut w = LogWriter::new(open_rw(&path), 0).unwrap();
        let key: Vec<u8> = (0..=255u8).collect();
        w.append(&Record::put(key.clone(), Vec::<u8>::new())).unwrap();
        w.sync().unwrap();
        let mut r = LogReader::new(File::open(&path).unwrap());
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.key, key);
        assert!(rec.value.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
