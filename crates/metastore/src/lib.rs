//! # tiera-metastore — embedded log-structured key-value store
//!
//! The Tiera prototype "stored and persisted all object metadata using
//! BerkeleyDB" (paper §3). This crate is that substrate, built from
//! scratch: a crash-safe, append-only, log-structured store with an
//! in-memory index, CRC-framed records, tombstone deletes, log segment
//! rotation and compaction.
//!
//! ## Design
//!
//! * All live key/value pairs are held in an in-memory map (object metadata
//!   is small — the paper's future work is exactly about scaling this
//!   horizontally).
//! * Every mutation appends a CRC-framed record to the active log segment;
//!   durability is delegated to [`MetaStore::sync`] (the Tiera server calls
//!   it on its persistence schedule).
//! * On open, segments are replayed in order; a torn tail record (partial
//!   write from a crash) is detected by CRC/length and truncated away.
//! * When the log's garbage ratio passes a threshold, [`MetaStore::compact`]
//!   writes a fresh snapshot segment and removes the old ones.
//!
//! The store is also usable as a general embedded KV (the RPC server uses
//! one for account credentials, mirroring the paper's "location to
//! persistently store metadata and credentials").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod log;
mod store;

pub use log::{LogReader, LogWriter, Record, RecordKind};
pub use store::{MetaStore, MetaStoreError, MetaStoreOptions, Stats};
