//! # tiera-metastore — embedded log-structured key-value store
//!
//! The Tiera prototype "stored and persisted all object metadata using
//! BerkeleyDB" (paper §3). This crate is that substrate, built from
//! scratch: a crash-safe, sharded, log-structured store with in-memory
//! indexes, CRC-framed records, tombstone deletes, group commit,
//! snapshotting compaction, and O(delta) recovery.
//!
//! ## Design
//!
//! * Keys are hash-partitioned across N independent shards (default 8);
//!   each shard owns its own segment chain, group-commit queue, and
//!   in-memory index behind per-shard named locks, so unrelated puts
//!   never contend and `open` recovers shards in parallel.
//! * Every mutation appends a CRC-framed record to its shard's active
//!   segment. Durability is either delegated to [`MetaStore::sync`]
//!   (the Tiera server calls it on its persistence schedule) or — with
//!   `sync_every_append` — enforced per operation, where **group
//!   commit** combines concurrent writers into ~1 fsync per convoy.
//! * On open, each shard loads its newest valid snapshot and replays
//!   only the segments written after it; a torn tail record (partial
//!   write from a crash) is detected by CRC/length and truncated away,
//!   and a torn/corrupt snapshot falls back to full replay.
//! * When a shard's garbage ratio passes a threshold (or on
//!   [`MetaStore::compact`]), the shard writes its sorted index image as
//!   a sealed snapshot and removes the superseded segments.
//! * Crash safety is deterministically testable: [`kill`] plants kill
//!   points at every durability transition, and
//!   [`MetaStore::crash_image`] exposes the fsynced frontier so a
//!   harness can simulate losing everything beyond it.
//!
//! The store is also usable as a general embedded KV (the RPC server uses
//! one for account credentials, mirroring the paper's "location to
//! persistently store metadata and credentials").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kill;
mod log;
mod store;

pub use kill::{KillPoints, KillSite};
pub use log::{encoded_record_len, LogReader, LogWriter, Record, RecordKind};
pub use store::{
    MetaStore, MetaStoreError, MetaStoreOptions, Stats, GROUP_MAX_BATCH_BYTES,
};
