//! The metadata store proper: in-memory map + segmented log + compaction.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use tiera_support::sync::{rank, Mutex};

use crate::log::{LogReader, LogWriter, Record, RecordKind};

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum MetaStoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The directory contains segment files with unparsable names.
    BadSegmentName(PathBuf),
}

impl std::fmt::Display for MetaStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaStoreError::Io(e) => write!(f, "metastore io error: {e}"),
            MetaStoreError::BadSegmentName(p) => {
                write!(f, "unrecognized segment file name: {}", p.display())
            }
        }
    }
}

impl std::error::Error for MetaStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MetaStoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MetaStoreError {
    fn from(e: io::Error) -> Self {
        MetaStoreError::Io(e)
    }
}

/// Tuning knobs for the store.
#[derive(Debug, Clone)]
pub struct MetaStoreOptions {
    /// Rotate the active segment after this many bytes.
    pub segment_max_bytes: u64,
    /// Trigger auto-compaction when dead bytes exceed this fraction of the
    /// total log (checked on rotation). `1.0` disables auto-compaction.
    pub compact_garbage_ratio: f64,
    /// fsync on every append (slow, strongest durability).
    pub sync_every_append: bool,
}

impl Default for MetaStoreOptions {
    fn default() -> Self {
        Self {
            segment_max_bytes: 8 * 1024 * 1024,
            compact_garbage_ratio: 0.5,
            sync_every_append: false,
        }
    }
}

/// Counters describing the store's state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Live keys.
    pub live_keys: u64,
    /// Total bytes across all segments.
    pub log_bytes: u64,
    /// Bytes belonging to superseded or deleted records.
    pub dead_bytes: u64,
    /// Number of segment files.
    pub segments: u64,
    /// Compactions performed since open.
    pub compactions: u64,
}

struct Inner {
    dir: PathBuf,
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    writer: LogWriter,
    active_seg: u64,
    sealed_bytes: u64,
    dead_bytes: u64,
    segments: Vec<u64>,
    compactions: u64,
    opts: MetaStoreOptions,
}

/// A crash-safe embedded key-value store for Tiera metadata.
///
/// All operations are thread-safe; the store serializes mutations behind a
/// mutex (metadata records are tiny, so contention is negligible next to
/// storage-tier latencies).
pub struct MetaStore {
    inner: Mutex<Inner>,
}

fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n:010}.log"))
}

fn parse_segment_number(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

impl MetaStore {
    /// Opens (or creates) a store in `dir`, replaying existing segments.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, MetaStoreError> {
        Self::open_with(dir, MetaStoreOptions::default())
    }

    /// Opens with explicit options.
    pub fn open_with(
        dir: impl AsRef<Path>,
        opts: MetaStoreOptions,
    ) -> Result<Self, MetaStoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut seg_numbers: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().map(|e| e == "log").unwrap_or(false) {
                let n = parse_segment_number(&path)
                    .ok_or_else(|| MetaStoreError::BadSegmentName(path.clone()))?;
                seg_numbers.push(n);
            }
        }
        seg_numbers.sort_unstable();

        let mut map = BTreeMap::new();
        let mut sealed_bytes = 0u64;
        let mut dead_bytes = 0u64;
        let mut last_valid_len = 0u64;
        for (i, &n) in seg_numbers.iter().enumerate() {
            let file = File::open(segment_path(&dir, n))?;
            let mut reader = LogReader::new(file);
            while let Some(rec) = reader.next_record()? {
                let rec_len = rec.encoded_len();
                match rec.kind {
                    RecordKind::Put => {
                        if let Some(old) = map.insert(rec.key, rec.value) {
                            // Prior version of this key is now dead.
                            dead_bytes += old.len() as u64; // approximation of old record body
                        }
                    }
                    RecordKind::Delete => {
                        map.remove(&rec.key);
                        dead_bytes += rec_len;
                    }
                }
            }
            if i + 1 < seg_numbers.len() {
                sealed_bytes += reader.valid_len;
            } else {
                last_valid_len = reader.valid_len;
            }
        }

        let active_seg = seg_numbers.last().copied().unwrap_or(0);
        if seg_numbers.is_empty() {
            seg_numbers.push(0);
        }
        let active_file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(segment_path(&dir, active_seg))?;
        let writer = LogWriter::new(active_file, last_valid_len)?;

        Ok(Self {
            inner: Mutex::named("metastore.log", rank::METASTORE_LOG, Inner {
                dir,
                map,
                writer,
                active_seg,
                sealed_bytes,
                dead_bytes,
                segments: seg_numbers,
                compactions: 0,
                opts,
            }),
        })
    }

    /// Inserts or overwrites a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MetaStoreError> {
        let mut g = self.inner.lock();
        let rec = Record::put(key, value);
        g.writer.append(&rec)?;
        if g.opts.sync_every_append {
            g.writer.sync()?;
        }
        if let Some(old) = g.map.insert(key.to_vec(), value.to_vec()) {
            g.dead_bytes += 13 + key.len() as u64 + old.len() as u64;
        }
        self.maybe_rotate(&mut g)?;
        Ok(())
    }

    /// Fetches a key's value.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.lock().map.get(key).cloned()
    }

    /// Whether the key exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool, MetaStoreError> {
        let mut g = self.inner.lock();
        let existed = g.map.remove(key).is_some();
        if existed {
            let rec = Record::delete(key);
            let rec_len = rec.encoded_len();
            g.writer.append(&rec)?;
            if g.opts.sync_every_append {
                g.writer.sync()?;
            }
            g.dead_bytes += rec_len;
            self.maybe_rotate(&mut g)?;
        }
        Ok(existed)
    }

    /// Returns keys with the given prefix (sorted).
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let g = self.inner.lock();
        g.map
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the store has no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes and fsyncs the active segment.
    pub fn sync(&self) -> Result<(), MetaStoreError> {
        self.inner.lock().writer.sync()?;
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> Stats {
        let g = self.inner.lock();
        Stats {
            live_keys: g.map.len() as u64,
            log_bytes: g.sealed_bytes + g.writer.len(),
            dead_bytes: g.dead_bytes,
            segments: g.segments.len() as u64,
            compactions: g.compactions,
        }
    }

    /// Rewrites the store as a single snapshot segment containing only live
    /// entries, then removes the old segments.
    pub fn compact(&self) -> Result<(), MetaStoreError> {
        let mut g = self.inner.lock();
        self.compact_locked(&mut g)
    }

    fn compact_locked(&self, g: &mut Inner) -> Result<(), MetaStoreError> {
        g.writer.sync()?;
        let new_seg = g.segments.last().copied().unwrap_or(0) + 1;
        let tmp_path = g.dir.join("compact.tmp");
        {
            let tmp = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(&tmp_path)?;
            let mut w = LogWriter::new(tmp, 0)?;
            for (k, v) in g.map.iter() {
                w.append(&Record::put(k.clone(), v.clone()))?;
            }
            w.sync()?;
        }
        let final_path = segment_path(&g.dir, new_seg);
        fs::rename(&tmp_path, &final_path)?;
        // Remove old segments only after the snapshot is durable.
        let old = std::mem::take(&mut g.segments);
        for n in old {
            fs::remove_file(segment_path(&g.dir, n)).ok();
        }
        g.segments = vec![new_seg];
        g.active_seg = new_seg;
        g.sealed_bytes = 0;
        g.dead_bytes = 0;
        g.compactions += 1;
        // Reopen the snapshot as the active segment for appends.
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&final_path)?;
        let len = file.metadata()?.len();
        g.writer = LogWriter::new(file, len)?;
        Ok(())
    }

    fn maybe_rotate(&self, g: &mut Inner) -> Result<(), MetaStoreError> {
        if g.writer.len() < g.opts.segment_max_bytes {
            return Ok(());
        }
        let total = g.sealed_bytes + g.writer.len();
        let garbage = g.dead_bytes as f64 / total.max(1) as f64;
        if garbage >= g.opts.compact_garbage_ratio {
            return self.compact_locked(g);
        }
        // Seal the active segment and start a new one.
        g.writer.sync()?;
        g.sealed_bytes += g.writer.len();
        let new_seg = g.segments.last().copied().unwrap_or(0) + 1;
        g.segments.push(new_seg);
        g.active_seg = new_seg;
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(segment_path(&g.dir, new_seg))?;
        g.writer = LogWriter::new(file, 0)?;
        Ok(())
    }
}

impl std::fmt::Debug for MetaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("MetaStore")
            .field("live_keys", &s.live_keys)
            .field("segments", &s.segments)
            .field("log_bytes", &s.log_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "tiera-store-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn put_get_delete() {
        let dir = temp_dir("pgd");
        let s = MetaStore::open(&dir).unwrap();
        s.put(b"k1", b"v1").unwrap();
        s.put(b"k2", b"v2").unwrap();
        assert_eq!(s.get(b"k1"), Some(b"v1".to_vec()));
        assert!(s.delete(b"k1").unwrap());
        assert!(!s.delete(b"k1").unwrap(), "double delete is false");
        assert_eq!(s.get(b"k1"), None);
        assert_eq!(s.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_state() {
        let dir = temp_dir("reopen");
        {
            let s = MetaStore::open(&dir).unwrap();
            s.put(b"a", b"1").unwrap();
            s.put(b"b", b"2").unwrap();
            s.put(b"a", b"3").unwrap(); // overwrite
            s.delete(b"b").unwrap();
            s.sync().unwrap();
        }
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.get(b"a"), Some(b"3".to_vec()));
        assert_eq!(s.get(b"b"), None);
        assert_eq!(s.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_with_torn_tail_recovers_prefix() {
        let dir = temp_dir("torn");
        {
            let s = MetaStore::open(&dir).unwrap();
            s.put(b"good", b"yes").unwrap();
            s.put(b"maybe", b"cut").unwrap();
            s.sync().unwrap();
        }
        // Chop bytes off the active segment, as an interrupted write would.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.get(b"good"), Some(b"yes".to_vec()));
        assert_eq!(s.get(b"maybe"), None);
        // The store keeps working after recovery.
        s.put(b"after", b"crash").unwrap();
        s.sync().unwrap();
        drop(s);
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.get(b"after"), Some(b"crash".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_creates_segments() {
        let dir = temp_dir("rotate");
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                segment_max_bytes: 512,
                compact_garbage_ratio: 1.1, // never auto-compact
                sync_every_append: false,
            },
        )
        .unwrap();
        for i in 0..100 {
            s.put(format!("key-{i}").as_bytes(), &[0u8; 32]).unwrap();
        }
        assert!(s.stats().segments > 1, "{:?}", s.stats());
        drop(s);
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.len(), 100);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_data() {
        let dir = temp_dir("compact");
        let s = MetaStore::open(&dir).unwrap();
        for round in 0..10 {
            for i in 0..50 {
                s.put(format!("key-{i}").as_bytes(), format!("v{round}").as_bytes())
                    .unwrap();
            }
        }
        let before = s.stats().log_bytes;
        s.compact().unwrap();
        let after = s.stats();
        assert!(after.log_bytes < before / 2, "{before} -> {}", after.log_bytes);
        assert_eq!(after.compactions, 1);
        // Data survives both compaction and reopen.
        assert_eq!(s.get(b"key-7"), Some(b"v9".to_vec()));
        drop(s);
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.len(), 50);
        assert_eq!(s.get(b"key-49"), Some(b"v9".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_compaction_on_garbage() {
        let dir = temp_dir("auto");
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                segment_max_bytes: 2048,
                compact_garbage_ratio: 0.3,
                sync_every_append: false,
            },
        )
        .unwrap();
        // Overwrite one key repeatedly → nearly all garbage.
        for i in 0..500 {
            s.put(b"hot", format!("value-{i}").as_bytes()).unwrap();
        }
        assert!(s.stats().compactions >= 1, "{:?}", s.stats());
        assert_eq!(s.get(b"hot"), Some(b"value-499".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_prefix_ordered() {
        let dir = temp_dir("scan");
        let s = MetaStore::open(&dir).unwrap();
        s.put(b"obj/a", b"1").unwrap();
        s.put(b"obj/c", b"3").unwrap();
        s.put(b"obj/b", b"2").unwrap();
        s.put(b"other", b"x").unwrap();
        let hits = s.scan_prefix(b"obj/");
        assert_eq!(
            hits.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![b"obj/a".to_vec(), b"obj/b".to_vec(), b"obj/c".to_vec()]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let dir = temp_dir("conc");
        let s = std::sync::Arc::new(MetaStore::open(&dir).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    s.put(format!("t{t}-k{i}").as_bytes(), b"v").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 400);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prop_reopen_matches_model() {
        use tiera_support::prop::gen;
        tiera_support::prop_check!(cases = 20, |rng| {
            let ops = gen::vec_of(rng, 1..200, |rng| {
                (
                    gen::boolean(rng),
                    rng.next_below(20) as u8,
                    gen::byte_vec(rng, 0..64),
                )
            });
            let dir = temp_dir("prop");
            let mut model: std::collections::HashMap<Vec<u8>, Vec<u8>> = Default::default();
            {
                let s = MetaStore::open(&dir).unwrap();
                for (is_put, key_id, value) in &ops {
                    let key = vec![*key_id];
                    if *is_put {
                        s.put(&key, value).unwrap();
                        model.insert(key, value.clone());
                    } else {
                        s.delete(&key).unwrap();
                        model.remove(&key);
                    }
                }
                s.sync().unwrap();
            }
            let s = MetaStore::open(&dir).unwrap();
            assert_eq!(s.len(), model.len());
            for (k, v) in &model {
                let got = s.get(k);
                assert_eq!(got.as_ref(), Some(v));
            }
            fs::remove_dir_all(&dir).ok();
        });
    }
}
