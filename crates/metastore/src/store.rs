//! The metadata store proper: hash-sharded segment chains, group commit,
//! snapshots, and O(delta) recovery.
//!
//! ## Architecture
//!
//! Keys are partitioned by FxHash across `N` independent shards (default
//! 8, fixed at creation and persisted in `metastore.meta`). Each shard
//! owns three named locks, acquired in rank order **commit → queue →
//! index** (see `tiera_support::sync::rank`):
//!
//! * `metastore.commit` — the shard's log writer and durability state;
//!   held across file IO by design (the log write *is* the critical
//!   section). All shards share the name, so holding two shards' commit
//!   locks at once is a lockcheck self-cycle.
//! * `metastore.queue` — the group-commit queue, drained by the batch
//!   leader under the commit lock.
//! * `metastore.index` — the shard's read index. `get`/`contains`/
//!   `scan_prefix` take only this lock, so reads never wait on an
//!   in-flight append; writers update it briefly after their records are
//!   durable.
//!
//! ## Group commit
//!
//! Under `sync_every_append` durability with `group_commit` enabled,
//! concurrent writers enqueue their records and elect one *leader* per
//! shard through an atomic flag. The leader drains the queue batch by
//! batch (batch-close rule: every record queued at the instant the leader
//! inspects the queue, in FIFO order, truncated at
//! [`GROUP_MAX_BATCH_BYTES`]), appends each batch, performs **one**
//! `flush`+`fsync` for all of it, applies the index updates, and
//! acknowledges each writer — turning N fsyncs into roughly one per
//! convoy. Followers wait on their private ack channel *without holding
//! any lock*, so while the leader is inside `fsync` every other writer
//! can enqueue; that is what lets the convoy deepen to the full writer
//! count (a bounded wait plus leadership re-check closes the straggler
//! race at leader handoff). An operation acknowledges **only after its
//! record is fsynced**, including a `put` that rewrites an identical value
//! (the record is still appended; durability is not elided).
//!
//! ## Snapshots and recovery
//!
//! Compaction writes the shard's sorted index image to `sNN-snap.tmp`
//! (entries, then a [`RecordKind::Seal`] footer carrying the entry count),
//! fsyncs it, renames it to `sNN-snap-<seq>.log`, and only then removes
//! the superseded segments. On open, each shard loads its newest *valid*
//! snapshot (seal present, count matching) and replays only the segments
//! numbered after it, making restart O(delta since last compaction)
//! instead of O(full history); torn or corrupt snapshots fall back to the
//! next older one and ultimately to full replay. Shards recover in
//! parallel across threads.
//!
//! Crash safety is testable deterministically: see [`crate::kill`] and
//! [`MetaStore::crash_image`].

use std::collections::{BTreeMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tiera_support::channel::{self, Sender};
use tiera_support::collections::fx_hash_one;
use tiera_support::sync::{rank, Mutex, RwLock};

use crate::kill::{KillPoints, KillSite};
use crate::log::{encoded_record_len, LogReader, LogWriter, Record, RecordKind};

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum MetaStoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The directory contains segment files with unparsable names.
    BadSegmentName(PathBuf),
    /// A deterministic kill point fired (crash-test harness only).
    Killed(&'static str),
    /// The operation's group-commit batch failed; the text is the
    /// leader's error.
    Commit(String),
    /// Invalid store configuration or metadata.
    Config(String),
}

impl std::fmt::Display for MetaStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaStoreError::Io(e) => write!(f, "metastore io error: {e}"),
            MetaStoreError::BadSegmentName(p) => {
                write!(f, "unrecognized segment file name: {}", p.display())
            }
            MetaStoreError::Killed(site) => {
                write!(f, "metastore kill point fired: {site}")
            }
            MetaStoreError::Commit(msg) => write!(f, "group commit failed: {msg}"),
            MetaStoreError::Config(msg) => write!(f, "metastore config error: {msg}"),
        }
    }
}

impl std::error::Error for MetaStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MetaStoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MetaStoreError {
    fn from(e: io::Error) -> Self {
        MetaStoreError::Io(e)
    }
}

/// A group-commit batch closes once it reaches this many bytes; records
/// beyond the cap stay queued for the next leader.
pub const GROUP_MAX_BATCH_BYTES: u64 = 1 << 20;

/// Tuning knobs for the store.
#[derive(Debug, Clone)]
pub struct MetaStoreOptions {
    /// Rotate a shard's active segment after this many bytes.
    pub segment_max_bytes: u64,
    /// Trigger auto-compaction (snapshot) when a shard's dead bytes exceed
    /// this fraction of its total on-disk footprint (checked on rotation).
    /// `1.0` disables auto-compaction.
    pub compact_garbage_ratio: f64,
    /// fsync before acknowledging every mutation (strongest durability).
    pub sync_every_append: bool,
    /// Under `sync_every_append`, combine concurrent writers into one
    /// fsync per convoy (group commit). Has no effect without
    /// `sync_every_append`.
    pub group_commit: bool,
    /// Number of hash shards (a power of two, `1..=64`). Fixed when the
    /// directory is created; reopening uses the persisted count and
    /// ignores this field.
    pub shards: usize,
}

impl Default for MetaStoreOptions {
    fn default() -> Self {
        Self {
            segment_max_bytes: 8 * 1024 * 1024,
            compact_garbage_ratio: 0.5,
            sync_every_append: false,
            group_commit: true,
            shards: 8,
        }
    }
}

/// Counters describing the store's state, aggregated across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Live keys.
    pub live_keys: u64,
    /// Total bytes across all suffix segments (excludes snapshots).
    pub log_bytes: u64,
    /// Bytes across each shard's newest snapshot.
    pub snapshot_bytes: u64,
    /// Bytes belonging to superseded or deleted records (exact encoded
    /// record lengths; identical math on the live path and on replay).
    pub dead_bytes: u64,
    /// Number of segment files.
    pub segments: u64,
    /// Number of snapshot files.
    pub snapshots: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// fsync calls issued since open.
    pub fsyncs: u64,
    /// Group-commit batches led since open.
    pub group_commits: u64,
    /// Records committed through group-commit batches since open.
    pub group_commit_records: u64,
    /// Shard count.
    pub shards: u64,
}

/// One record awaiting commit, with its writer's ack slot.
struct Pending {
    rec: Record,
    /// `Some` for group-commit followers; the leader acks `Ok(existed)`
    /// after the batch fsync, or `Err(text)` if the batch failed.
    ack: Option<Sender<Result<bool, String>>>,
    /// For deletes: whether the key existed at apply time.
    existed: bool,
}

impl Pending {
    fn new(rec: Record) -> Self {
        Self {
            rec,
            ack: None,
            existed: false,
        }
    }
}

/// Per-shard durability state, guarded by the `metastore.commit` lock.
struct CommitState {
    writer: LogWriter,
    active_seg: u64,
    sealed_bytes: u64,
    dead_bytes: u64,
    /// Live segment numbers (ascending; the last is active).
    segments: Vec<u64>,
    /// Newest snapshot `(number, bytes)`, if any.
    snapshot: Option<(u64, u64)>,
    compactions: u64,
    fsyncs: u64,
    group_commits: u64,
    group_commit_records: u64,
}

/// One hash shard: its own log chain, group-commit queue, and read index.
struct Shard {
    id: usize,
    commit: Mutex<CommitState>,
    queue: Mutex<VecDeque<Pending>>,
    index: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    /// Group-commit leader election: `true` while one writer is draining
    /// the queue. Followers wait on their ack channels instead of
    /// contending for the commit lock, which is what lets convoys deepen
    /// to the full writer count (a freshly-acked writer re-entering the
    /// lock would otherwise lead a batch of one).
    committing: std::sync::atomic::AtomicBool,
}

/// A crash-safe embedded key-value store for Tiera metadata (see the
/// module docs for the sharding, group-commit, and snapshot design).
pub struct MetaStore {
    dir: PathBuf,
    shards: Vec<Shard>,
    opts: MetaStoreOptions,
    kill: Arc<KillPoints>,
}

const META_FILE: &str = "metastore.meta";

fn seg_path(dir: &Path, shard: usize, n: u64) -> PathBuf {
    dir.join(format!("s{shard:02}-seg-{n:010}.log"))
}

fn snap_path(dir: &Path, shard: usize, n: u64) -> PathBuf {
    dir.join(format!("s{shard:02}-snap-{n:010}.log"))
}

fn snap_tmp_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("s{shard:02}-snap.tmp"))
}

fn legacy_seg_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n:010}.log"))
}

/// fsyncs the directory itself, making renames and file creations durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn create_segment(dir: &Path, shard: usize, n: u64) -> io::Result<File> {
    let file = OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false)
        .open(seg_path(dir, shard, n))?;
    sync_dir(dir)?;
    Ok(file)
}

/// A directory entry the scanner recognized.
enum ScanFile {
    Seg(usize, u64),
    Snap(usize, u64),
    SnapTmp(PathBuf),
    Legacy(u64),
}

fn parse_name(path: &Path) -> Result<Option<ScanFile>, MetaStoreError> {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return Ok(None);
    };
    if name == META_FILE {
        return Ok(None);
    }
    if let Some(rest) = name.strip_prefix('s') {
        // sNN-seg-XXXXXXXXXX.log | sNN-snap-XXXXXXXXXX.log | sNN-snap.tmp
        if let Some((shard, tail)) = rest.split_once('-') {
            if let Ok(shard) = shard.parse::<usize>() {
                if tail == "snap.tmp" {
                    return Ok(Some(ScanFile::SnapTmp(path.to_path_buf())));
                }
                for (prefix, seg) in [("seg-", true), ("snap-", false)] {
                    if let Some(num) = tail
                        .strip_prefix(prefix)
                        .and_then(|t| t.strip_suffix(".log"))
                    {
                        if let Ok(n) = num.parse::<u64>() {
                            return Ok(Some(if seg {
                                ScanFile::Seg(shard, n)
                            } else {
                                ScanFile::Snap(shard, n)
                            }));
                        }
                    }
                }
            }
        }
    }
    if let Some(num) = name.strip_prefix("seg-").and_then(|t| t.strip_suffix(".log")) {
        if let Ok(n) = num.parse::<u64>() {
            return Ok(Some(ScanFile::Legacy(n)));
        }
    }
    if path.extension().map(|e| e == "log").unwrap_or(false) {
        return Err(MetaStoreError::BadSegmentName(path.to_path_buf()));
    }
    Ok(None)
}

/// Segment and snapshot numbers belonging to one shard.
#[derive(Default, Clone)]
struct ShardFiles {
    segs: Vec<u64>,
    snaps: Vec<u64>,
}

fn read_meta(dir: &Path) -> Result<Option<usize>, MetaStoreError> {
    let path = dir.join(META_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    for line in text.lines() {
        if let Some(n) = line.strip_prefix("shards=") {
            if let Ok(n) = n.trim().parse::<usize>() {
                if valid_shard_count(n) {
                    return Ok(Some(n));
                }
            }
        }
    }
    Err(MetaStoreError::Config(format!(
        "unreadable meta file {}",
        path.display()
    )))
}

fn write_meta(dir: &Path, shards: usize) -> Result<(), MetaStoreError> {
    use io::Write as _;
    let mut f = File::create(dir.join(META_FILE))?;
    writeln!(f, "shards={shards}")?;
    f.sync_all()?;
    sync_dir(dir)?;
    Ok(())
}

fn valid_shard_count(n: usize) -> bool {
    n.is_power_of_two() && (1..=64).contains(&n)
}

/// Applies one log record to a map with exact dead-byte accounting — the
/// single routine shared by segment replay and the live write path, so
/// compaction-trigger math is identical whether the store was just opened
/// or long-running.
fn apply_record(map: &mut BTreeMap<Vec<u8>, Vec<u8>>, dead_bytes: &mut u64, rec: &Record) {
    match rec.kind {
        RecordKind::Put => {
            if let Some(old) = map.insert(rec.key.clone(), rec.value.clone()) {
                *dead_bytes += encoded_record_len(rec.key.len(), old.len());
            }
        }
        RecordKind::Delete => {
            if let Some(old) = map.remove(&rec.key) {
                *dead_bytes += encoded_record_len(rec.key.len(), old.len());
            }
            // The tombstone itself is dead weight the moment it lands.
            *dead_bytes += encoded_record_len(rec.key.len(), 0);
        }
        // Seal records only belong in snapshots; tolerate one in a
        // segment rather than halting replay.
        RecordKind::Seal => {}
    }
}

/// Loads a snapshot file; `Ok(None)` when the snapshot is torn or corrupt
/// (no seal, wrong count, or unexpected record kind) and recovery should
/// fall back.
fn load_snapshot(
    path: &Path,
) -> Result<Option<(BTreeMap<Vec<u8>, Vec<u8>>, u64)>, MetaStoreError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut reader = LogReader::new(file);
    let mut map = BTreeMap::new();
    loop {
        match reader.next_record()? {
            None => return Ok(None), // torn: ended before the seal
            Some(rec) => match rec.kind {
                RecordKind::Put => {
                    map.insert(rec.key, rec.value);
                }
                RecordKind::Delete => return Ok(None), // malformed
                RecordKind::Seal => {
                    return Ok(if rec.seal_count() == Some(map.len() as u64) {
                        Some((map, reader.valid_len))
                    } else {
                        None
                    });
                }
            },
        }
    }
}

/// Recovers one shard: newest valid snapshot + suffix-segment replay,
/// deleting crash debris (stale snapshots, covered segments) as it goes.
fn recover_shard(
    dir: &Path,
    id: usize,
    files: &ShardFiles,
) -> Result<(CommitState, BTreeMap<Vec<u8>, Vec<u8>>), MetaStoreError> {
    let mut snaps = files.snaps.clone();
    snaps.sort_unstable();
    let mut base = None;
    for &n in snaps.iter().rev() {
        if let Some((map, bytes)) = load_snapshot(&snap_path(dir, id, n))? {
            base = Some((n, bytes, map));
            break;
        }
    }
    let (snapshot, mut map, floor) = match base {
        Some((n, bytes, map)) => (Some((n, bytes)), map, Some(n)),
        None => (None, BTreeMap::new(), None),
    };
    for &n in &snaps {
        if snapshot.map(|(m, _)| m) != Some(n) {
            fs::remove_file(snap_path(dir, id, n)).ok();
        }
    }
    let mut segs: Vec<u64> = files.segs.clone();
    segs.sort_unstable();
    if let Some(f) = floor {
        for &n in segs.iter().filter(|&&n| n <= f) {
            fs::remove_file(seg_path(dir, id, n)).ok();
        }
        segs.retain(|&n| n > f);
    }
    let mut sealed_bytes = 0u64;
    let mut dead_bytes = 0u64;
    let mut last_valid = 0u64;
    for (i, &n) in segs.iter().enumerate() {
        let file = File::open(seg_path(dir, id, n))?;
        let mut reader = LogReader::new(file);
        while let Some(rec) = reader.next_record()? {
            apply_record(&mut map, &mut dead_bytes, &rec);
        }
        if i + 1 < segs.len() {
            sealed_bytes += reader.valid_len;
        } else {
            last_valid = reader.valid_len;
        }
    }
    let active_seg = match segs.last() {
        Some(&n) => n,
        None => {
            let n = snapshot.map_or(0, |(m, _)| m + 1);
            segs.push(n);
            last_valid = 0;
            n
        }
    };
    let file = OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false)
        .open(seg_path(dir, id, active_seg))?;
    let writer = LogWriter::new(file, last_valid)?;
    Ok((
        CommitState {
            writer,
            active_seg,
            sealed_bytes,
            dead_bytes,
            segments: segs,
            snapshot,
            compactions: 0,
            fsyncs: 0,
            group_commits: 0,
            group_commit_records: 0,
        },
        map,
    ))
}

/// Drains one group-commit batch: everything queued right now, FIFO,
/// truncated at [`GROUP_MAX_BATCH_BYTES`].
fn take_batch(queue: &mut VecDeque<Pending>) -> Vec<Pending> {
    let mut batch = Vec::new();
    let mut bytes = 0u64;
    while let Some(front) = queue.front() {
        let len = front.rec.encoded_len();
        if !batch.is_empty() && bytes + len > GROUP_MAX_BATCH_BYTES {
            break;
        }
        bytes += len;
        batch.push(queue.pop_front().expect("front exists"));
    }
    batch
}

impl MetaStore {
    /// Opens (or creates) a store in `dir`, recovering existing state.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, MetaStoreError> {
        Self::open_with(dir, MetaStoreOptions::default())
    }

    /// Opens with explicit options. Shards recover in parallel: each loads
    /// its newest valid snapshot and replays only the segments after it.
    pub fn open_with(
        dir: impl AsRef<Path>,
        opts: MetaStoreOptions,
    ) -> Result<Self, MetaStoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut legacy: Vec<u64> = Vec::new();
        let mut tmps: Vec<PathBuf> = Vec::new();
        let mut seen: Vec<ScanFile> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            match parse_name(&path)? {
                Some(ScanFile::Legacy(n)) => legacy.push(n),
                Some(ScanFile::SnapTmp(p)) => tmps.push(p),
                Some(f) => seen.push(f),
                None => {}
            }
        }

        let shard_count = match read_meta(&dir)? {
            Some(n) => n,
            None => {
                if !seen.is_empty() {
                    return Err(MetaStoreError::Config(format!(
                        "sharded files present but {META_FILE} is missing in {}",
                        dir.display()
                    )));
                }
                if !valid_shard_count(opts.shards) {
                    return Err(MetaStoreError::Config(format!(
                        "shard count must be a power of two in 1..=64, got {}",
                        opts.shards
                    )));
                }
                write_meta(&dir, opts.shards)?;
                opts.shards
            }
        };

        // A crash mid-snapshot leaves its temp file behind; it was never
        // renamed, so it is not part of the store.
        for tmp in tmps {
            fs::remove_file(tmp).ok();
        }

        let mut per_shard = vec![ShardFiles::default(); shard_count];
        for f in seen {
            let (shard, n, is_seg) = match f {
                ScanFile::Seg(s, n) => (s, n, true),
                ScanFile::Snap(s, n) => (s, n, false),
                ScanFile::Legacy(_) | ScanFile::SnapTmp(_) => unreachable!("routed above"),
            };
            if shard >= shard_count {
                return Err(MetaStoreError::Config(format!(
                    "file for shard {shard} but the store has {shard_count} shards"
                )));
            }
            if is_seg {
                per_shard[shard].segs.push(n);
            } else {
                per_shard[shard].snaps.push(n);
            }
        }

        // Recover shards in parallel across threads.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(shard_count)
            .max(1);
        let chunk = shard_count.div_ceil(workers);
        let mut slots: Vec<Option<Result<(CommitState, BTreeMap<Vec<u8>, Vec<u8>>), MetaStoreError>>> =
            (0..shard_count).map(|_| None).collect();
        {
            let dir = &dir;
            let per_shard = &per_shard;
            std::thread::scope(|scope| {
                for (c, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                    scope.spawn(move || {
                        for (off, slot) in slot_chunk.iter_mut().enumerate() {
                            let id = c * chunk + off;
                            *slot = Some(recover_shard(dir, id, &per_shard[id]));
                        }
                    });
                }
            });
        }
        let mut shards = Vec::with_capacity(shard_count);
        for (id, slot) in slots.into_iter().enumerate() {
            let (commit, map) = slot.expect("every shard recovered")?;
            shards.push(Shard {
                id,
                commit: Mutex::named("metastore.commit", rank::METASTORE_COMMIT, commit),
                queue: Mutex::named(
                    "metastore.queue",
                    rank::METASTORE_QUEUE,
                    VecDeque::new(),
                ),
                index: RwLock::named("metastore.index", rank::METASTORE_INDEX, map),
                committing: std::sync::atomic::AtomicBool::new(false),
            });
        }
        sync_dir(&dir)?;

        let store = Self {
            dir,
            shards,
            opts,
            kill: Arc::new(KillPoints::new()),
        };

        if !legacy.is_empty() {
            store.migrate_legacy(&mut legacy)?;
        }
        Ok(store)
    }

    /// Rewrites a pre-sharding (v1) flat segment chain through the sharded
    /// layout, then removes the old files. Idempotent under crashes: the
    /// legacy files are deleted last, so an interrupted migration simply
    /// replays and rewrites again on the next open.
    fn migrate_legacy(&self, legacy: &mut Vec<u64>) -> Result<(), MetaStoreError> {
        legacy.sort_unstable();
        let mut map = BTreeMap::new();
        let mut dead = 0u64;
        for &n in legacy.iter() {
            let file = File::open(legacy_seg_path(&self.dir, n))?;
            let mut reader = LogReader::new(file);
            while let Some(rec) = reader.next_record()? {
                apply_record(&mut map, &mut dead, &rec);
            }
        }
        let items: Vec<(&[u8], &[u8])> = map
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        self.put_many(&items)?;
        self.sync()?;
        for &n in legacy.iter() {
            fs::remove_file(legacy_seg_path(&self.dir, n)).ok();
        }
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// The shard index `key` maps to in a store with `shard_count` shards
    /// (public so tests and tools can partition keys exactly as the store
    /// does).
    pub fn shard_of(key: &[u8], shard_count: usize) -> usize {
        if shard_count <= 1 {
            return 0;
        }
        // Top bits: FxHash mixes best into the high half of the word.
        let bits = shard_count.trailing_zeros();
        (fx_hash_one(key) >> (64 - bits)) as usize
    }

    /// This store's shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &[u8]) -> &Shard {
        &self.shards[Self::shard_of(key, self.shards.len())]
    }

    /// Inserts or overwrites a key. Under `sync` durability the call
    /// acknowledges only after the record is fsynced — even when the value
    /// is identical to the current one (the record is still appended).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MetaStoreError> {
        let shard = self.shard(key);
        self.mutate(shard, Record::put(key, value)).map(|_| ())
    }

    /// Inserts a batch of pairs, partitioned across shards; each shard's
    /// records commit as **one** batch (a single fsync under `sync`
    /// durability), in the given order.
    pub fn put_many(&self, items: &[(&[u8], &[u8])]) -> Result<(), MetaStoreError> {
        let mut per_shard: Vec<Vec<Pending>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (k, v) in items {
            per_shard[Self::shard_of(k, self.shards.len())]
                .push(Pending::new(Record::put(*k, *v)));
        }
        for (id, mut batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard = &self.shards[id];
            let mut c = shard.commit.lock();
            self.append_batch(shard, &mut c, &mut batch, self.opts.sync_every_append)?;
            self.maybe_rotate(shard, &mut c)?;
        }
        Ok(())
    }

    /// Deletes a key; returns whether it existed.
    ///
    /// **Contract:** deleting a missing key writes nothing — no tombstone
    /// reaches the log and dead-byte accounting does not drift. (Under
    /// concurrent deleters a lost race can still append a tombstone whose
    /// key a same-batch predecessor already removed; replay tolerates it
    /// and both paths count it identically.)
    pub fn delete(&self, key: &[u8]) -> Result<bool, MetaStoreError> {
        let shard = self.shard(key);
        let present = {
            let idx = shard.index.read();
            idx.contains_key(key)
        };
        if !present {
            return Ok(false);
        }
        self.mutate(shard, Record::delete(key))
    }

    fn mutate(&self, shard: &Shard, rec: Record) -> Result<bool, MetaStoreError> {
        if self.opts.sync_every_append && self.opts.group_commit {
            return self.mutate_grouped(shard, rec);
        }
        let mut c = shard.commit.lock();
        let mut batch = vec![Pending::new(rec)];
        self.append_batch(shard, &mut c, &mut batch, self.opts.sync_every_append)?;
        self.maybe_rotate(shard, &mut c)?;
        Ok(batch[0].existed)
    }

    /// The group-commit write path (see the module docs): enqueue the
    /// record, then either *lead* (win the `committing` flag, drain the
    /// queue batch by batch under the commit lock until it is empty) or
    /// *follow* (block on the private ack channel — no lock held — until
    /// the current leader commits us). The bounded follower wait plus a
    /// leadership re-check closes the straggler race where a record lands
    /// in the queue just as the leader decides it is done.
    fn mutate_grouped(&self, shard: &Shard, rec: Record) -> Result<bool, MetaStoreError> {
        use std::sync::atomic::Ordering;
        let (ack, rx) = channel::unbounded();
        {
            let mut queue = shard.queue.lock();
            queue.push_back(Pending {
                rec,
                ack: Some(ack),
                existed: false,
            });
        }
        loop {
            match rx.try_recv() {
                Ok(Ok(existed)) => return Ok(existed),
                Ok(Err(msg)) => return Err(MetaStoreError::Commit(msg)),
                Err(_) => {}
            }
            if shard
                .committing
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                let result = self.lead_commits(shard);
                shard.committing.store(false, Ordering::SeqCst);
                // A leader error is the operation's error even when our own
                // record was already acknowledged mid-convoy — the usual
                // "failed write may still have happened" semantics. Queued
                // records we never reached stay queued; their writers will
                // re-elect and commit (or fail) on their own.
                result?;
            } else {
                // A leader is active and will ack us. The timeout is pure
                // defense: if we enqueued just after the leader's final
                // drain, we wake and elect ourselves above.
                match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                    Ok(Ok(existed)) => return Ok(existed),
                    Ok(Err(msg)) => return Err(MetaStoreError::Commit(msg)),
                    Err(_) => {}
                }
            }
        }
    }

    /// Drains and commits group-commit batches until the queue is empty.
    /// Caller holds the `committing` leadership flag; the commit lock is
    /// held across the whole convoy (one acquisition, N batches).
    fn lead_commits(&self, shard: &Shard) -> Result<(), MetaStoreError> {
        let mut c = shard.commit.lock();
        loop {
            let mut batch = {
                let mut queue = shard.queue.lock();
                take_batch(&mut queue)
            };
            if batch.is_empty() {
                return Ok(());
            }
            c.group_commits += 1;
            c.group_commit_records += batch.len() as u64;
            self.append_batch(shard, &mut c, &mut batch, true)?;
            self.maybe_rotate(shard, &mut c)?;
            // Batch formation: the writers just acked are runnable and
            // about to enqueue their next records. Give them the CPU for
            // one scheduling quantum so the next drain sees a full convoy
            // rather than whoever happened to slip in mid-commit.
            std::thread::yield_now();
        }
    }

    /// Appends `batch` to the shard log (caller holds the commit lock),
    /// optionally fsyncs, applies the index updates, and acks each record.
    /// On failure every record is failure-acked and nothing is applied —
    /// though already-appended bytes may still become durable later, the
    /// usual "failed write may yet have happened" storage semantics.
    fn append_batch(
        &self,
        shard: &Shard,
        c: &mut CommitState,
        batch: &mut [Pending],
        durable: bool,
    ) -> Result<(), MetaStoreError> {
        let io = (|| -> Result<(), MetaStoreError> {
            for (i, p) in batch.iter().enumerate() {
                if i > 0 {
                    self.kill.check(KillSite::BatchMidAppend)?;
                }
                c.writer.append(&p.rec)?;
            }
            if durable {
                self.kill.check(KillSite::BatchBeforeSync)?;
                c.writer.sync()?;
                c.fsyncs += 1;
                self.kill.check(KillSite::BatchAfterSync)?;
            }
            Ok(())
        })();
        if let Err(e) = io {
            let msg = e.to_string();
            for p in batch.iter() {
                if let Some(ack) = &p.ack {
                    let _ = ack.send(Err(msg.clone()));
                }
            }
            return Err(e);
        }
        {
            let mut idx = shard.index.write();
            for p in batch.iter_mut() {
                p.existed = match p.rec.kind {
                    RecordKind::Put => true,
                    RecordKind::Delete => idx.contains_key(&p.rec.key),
                    RecordKind::Seal => false,
                };
                apply_record(&mut idx, &mut c.dead_bytes, &p.rec);
            }
        }
        for p in batch.iter() {
            if let Some(ack) = &p.ack {
                let _ = ack.send(Ok(p.existed));
            }
        }
        Ok(())
    }

    /// Fetches a key's value. Takes only the shard's index lock — never
    /// waits on an in-flight append.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let idx = self.shard(key).index.read();
        idx.get(key).cloned()
    }

    /// Whether the key exists (index lock only).
    pub fn contains(&self, key: &[u8]) -> bool {
        let idx = self.shard(key).index.read();
        idx.contains_key(key)
    }

    /// Returns keys with the given prefix, merged across shards in sorted
    /// order (deterministic: keys are unique across shards).
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut hits = Vec::new();
        for shard in &self.shards {
            let idx = shard.index.read();
            hits.extend(
                idx.range(prefix.to_vec()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
        }
        hits.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        hits
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let idx = s.index.read();
                idx.len()
            })
            .sum()
    }

    /// Whether the store has no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes and fsyncs every shard's active segment (the durability
    /// boundary for non-`sync_every_append` stores).
    pub fn sync(&self) -> Result<(), MetaStoreError> {
        for shard in &self.shards {
            let mut c = shard.commit.lock();
            if c.writer.len() > c.writer.synced_len() {
                c.writer.sync()?;
                c.fsyncs += 1;
            }
        }
        Ok(())
    }

    /// Current statistics, aggregated across shards.
    pub fn stats(&self) -> Stats {
        let mut s = Stats {
            shards: self.shards.len() as u64,
            ..Stats::default()
        };
        for shard in &self.shards {
            {
                let c = shard.commit.lock();
                s.log_bytes += c.sealed_bytes + c.writer.len();
                s.dead_bytes += c.dead_bytes;
                s.segments += c.segments.len() as u64;
                if let Some((_, bytes)) = c.snapshot {
                    s.snapshots += 1;
                    s.snapshot_bytes += bytes;
                }
                s.compactions += c.compactions;
                s.fsyncs += c.fsyncs;
                s.group_commits += c.group_commits;
                s.group_commit_records += c.group_commit_records;
            }
            let idx = shard.index.read();
            s.live_keys += idx.len() as u64;
        }
        s
    }

    /// Compacts every shard: writes each index image as a snapshot and
    /// removes the superseded segments (see the module docs for the crash
    /// protocol).
    pub fn compact(&self) -> Result<(), MetaStoreError> {
        for shard in &self.shards {
            let mut c = shard.commit.lock();
            self.snapshot_shard(shard, &mut c)?;
        }
        Ok(())
    }

    fn snapshot_shard(&self, shard: &Shard, c: &mut CommitState) -> Result<(), MetaStoreError> {
        // Everything applied to the index is in the log; make it durable
        // so the snapshot is a subset of synced history.
        if c.writer.len() > c.writer.synced_len() {
            c.writer.sync()?;
            c.fsyncs += 1;
        }
        let snap_num = c.active_seg + 1;
        let tmp = snap_tmp_path(&self.dir, shard.id);
        {
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(&tmp)?;
            let mut w = LogWriter::new(file, 0)?;
            let count = {
                let idx = shard.index.read();
                let mut count = 0u64;
                for (k, v) in idx.iter() {
                    if count > 0 {
                        self.kill.check(KillSite::SnapMidWrite)?;
                    }
                    w.append(&Record::put(k.clone(), v.clone()))?;
                    count += 1;
                }
                count
            };
            w.append(&Record::seal(count))?;
            self.kill.check(KillSite::SnapBeforeSync)?;
            w.sync()?;
            c.fsyncs += 1;
        }
        self.kill.check(KillSite::SnapBeforeRename)?;
        let final_path = snap_path(&self.dir, shard.id, snap_num);
        fs::rename(&tmp, &final_path)?;
        sync_dir(&self.dir)?;
        self.kill.check(KillSite::SnapAfterRename)?;
        // The snapshot is durable and committed; everything before it is
        // garbage.
        let old_segs = std::mem::take(&mut c.segments);
        for n in old_segs {
            fs::remove_file(seg_path(&self.dir, shard.id, n)).ok();
        }
        if let Some((old_snap, _)) = c.snapshot {
            fs::remove_file(snap_path(&self.dir, shard.id, old_snap)).ok();
        }
        self.kill.check(KillSite::SnapAfterCleanup)?;
        let snap_bytes = fs::metadata(&final_path)?.len();
        let active = snap_num + 1;
        let file = create_segment(&self.dir, shard.id, active)?;
        c.snapshot = Some((snap_num, snap_bytes));
        c.segments = vec![active];
        c.active_seg = active;
        c.sealed_bytes = 0;
        c.dead_bytes = 0;
        c.compactions += 1;
        c.writer = LogWriter::new(file, 0)?;
        Ok(())
    }

    fn maybe_rotate(&self, shard: &Shard, c: &mut CommitState) -> Result<(), MetaStoreError> {
        if c.writer.len() < self.opts.segment_max_bytes {
            return Ok(());
        }
        let snap_bytes = c.snapshot.map_or(0, |(_, b)| b);
        let total = snap_bytes + c.sealed_bytes + c.writer.len();
        let garbage = c.dead_bytes as f64 / total.max(1) as f64;
        if garbage >= self.opts.compact_garbage_ratio {
            return self.snapshot_shard(shard, c);
        }
        // Seal the active segment and start a new one.
        self.kill.check(KillSite::RotateBeforeSealSync)?;
        c.writer.sync()?;
        c.fsyncs += 1;
        self.kill.check(KillSite::RotateAfterSeal)?;
        c.sealed_bytes += c.writer.len();
        let next = c.active_seg + 1;
        let file = create_segment(&self.dir, shard.id, next)?;
        c.segments.push(next);
        c.active_seg = next;
        c.writer = LogWriter::new(file, 0)?;
        Ok(())
    }

    /// The kill-point handle for crash testing (disarmed by default; see
    /// [`crate::kill`]).
    pub fn kill_points(&self) -> Arc<KillPoints> {
        Arc::clone(&self.kill)
    }

    /// For each shard, the active segment's path and the byte count known
    /// to have reached stable storage. A crash harness truncates each file
    /// to that length (after dropping the store) to simulate losing
    /// everything the OS had not persisted, then reopens and checks that
    /// every acknowledged durable write survived. Sealed segments and
    /// renamed snapshots are always fully synced and need no truncation.
    pub fn crash_image(&self) -> Vec<(PathBuf, u64)> {
        self.shards
            .iter()
            .map(|shard| {
                let c = shard.commit.lock();
                (
                    seg_path(&self.dir, shard.id, c.active_seg),
                    c.writer.synced_len(),
                )
            })
            .collect()
    }
}

impl std::fmt::Debug for MetaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("MetaStore")
            .field("shards", &s.shards)
            .field("live_keys", &s.live_keys)
            .field("segments", &s.segments)
            .field("snapshots", &s.snapshots)
            .field("log_bytes", &s.log_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiera_support::prop::gen;
    use tiera_support::prop_check;
    use tiera_support::rng::SimRng;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "tiera-store-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn one_shard(dir: &Path) -> MetaStore {
        MetaStore::open_with(
            dir,
            MetaStoreOptions {
                shards: 1,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn put_get_delete() {
        let dir = temp_dir("pgd");
        let s = MetaStore::open(&dir).unwrap();
        s.put(b"k1", b"v1").unwrap();
        s.put(b"k2", b"v2").unwrap();
        assert_eq!(s.get(b"k1"), Some(b"v1".to_vec()));
        assert!(s.contains(b"k2"));
        assert!(s.delete(b"k1").unwrap());
        assert!(!s.delete(b"k1").unwrap(), "double delete is false");
        assert_eq!(s.get(b"k1"), None);
        assert_eq!(s.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_state() {
        let dir = temp_dir("reopen");
        {
            let s = MetaStore::open(&dir).unwrap();
            s.put(b"a", b"1").unwrap();
            s.put(b"b", b"2").unwrap();
            s.put(b"a", b"3").unwrap(); // overwrite
            s.delete(b"b").unwrap();
            s.sync().unwrap();
        }
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.get(b"a"), Some(b"3".to_vec()));
        assert_eq!(s.get(b"b"), None);
        assert_eq!(s.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_count_persists_across_reopen() {
        let dir = temp_dir("meta");
        {
            let s = MetaStore::open_with(
                &dir,
                MetaStoreOptions {
                    shards: 4,
                    ..MetaStoreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(s.shard_count(), 4);
            s.put(b"k", b"v").unwrap();
            s.sync().unwrap();
        }
        // Reopening with a different requested count uses the persisted one.
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                shards: 16,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.get(b"k"), Some(b"v".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_shard_count_rejected() {
        let dir = temp_dir("badshards");
        let err = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                shards: 3,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MetaStoreError::Config(_)), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_spread_across_shards() {
        let dir = temp_dir("spread");
        let s = MetaStore::open(&dir).unwrap();
        let mut hit = [false; 8];
        for i in 0..256 {
            let key = format!("key-{i}");
            hit[MetaStore::shard_of(key.as_bytes(), 8)] = true;
            s.put(key.as_bytes(), b"v").unwrap();
        }
        assert!(hit.iter().all(|&h| h), "256 keys left a shard empty: {hit:?}");
        assert_eq!(s.len(), 256);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_with_torn_tail_recovers_prefix() {
        let dir = temp_dir("torn");
        {
            let s = one_shard(&dir);
            s.put(b"good", b"yes").unwrap();
            s.put(b"maybe", b"cut").unwrap();
            s.sync().unwrap();
        }
        // Chop bytes off the active segment, as an interrupted write would.
        let seg = seg_path(&dir, 0, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let s = one_shard(&dir);
        assert_eq!(s.get(b"good"), Some(b"yes".to_vec()));
        assert_eq!(s.get(b"maybe"), None);
        // The store keeps working after recovery.
        s.put(b"after", b"crash").unwrap();
        s.sync().unwrap();
        drop(s);
        let s = one_shard(&dir);
        assert_eq!(s.get(b"after"), Some(b"crash".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_creates_segments() {
        let dir = temp_dir("rotate");
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                segment_max_bytes: 512,
                compact_garbage_ratio: 1.0, // never auto-compact
                shards: 1,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap();
        for i in 0..100 {
            s.put(format!("key-{i}").as_bytes(), &[0u8; 32]).unwrap();
        }
        assert!(s.stats().segments > 1, "{:?}", s.stats());
        s.sync().unwrap();
        drop(s);
        let s = one_shard(&dir);
        assert_eq!(s.len(), 100);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_snapshots_and_preserves_data() {
        let dir = temp_dir("compact");
        let s = MetaStore::open(&dir).unwrap();
        for round in 0..10 {
            for i in 0..50 {
                s.put(format!("key-{i}").as_bytes(), format!("v{round}").as_bytes())
                    .unwrap();
            }
        }
        let before = s.stats().log_bytes;
        s.compact().unwrap();
        let after = s.stats();
        assert_eq!(after.snapshots, after.shards);
        assert_eq!(after.dead_bytes, 0);
        assert!(
            after.snapshot_bytes + after.log_bytes < before / 2,
            "{before} -> snap {} + log {}",
            after.snapshot_bytes,
            after.log_bytes
        );
        assert_eq!(s.get(b"key-7"), Some(b"v9".to_vec()));
        drop(s);
        // Reopen recovers from the snapshots (the pre-compaction segments
        // are gone).
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.len(), 50);
        assert_eq!(s.get(b"key-49"), Some(b"v9".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_plus_suffix_replay() {
        let dir = temp_dir("delta");
        {
            let s = one_shard(&dir);
            for i in 0..40 {
                s.put(format!("base-{i}").as_bytes(), b"old").unwrap();
            }
            s.compact().unwrap();
            // Delta after the snapshot: overwrites, fresh keys, a delete.
            s.put(b"base-0", b"new").unwrap();
            s.put(b"extra", b"delta").unwrap();
            s.delete(b"base-1").unwrap();
            s.sync().unwrap();
        }
        let s = one_shard(&dir);
        assert_eq!(s.len(), 40); // 40 - 1 deleted + 1 extra
        assert_eq!(s.get(b"base-0"), Some(b"new".to_vec()));
        assert_eq!(s.get(b"base-1"), None);
        assert_eq!(s.get(b"extra"), Some(b"delta".to_vec()));
        assert_eq!(s.get(b"base-39"), Some(b"old".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_falls_back_to_full_replay() {
        let dir = temp_dir("tornsnap");
        {
            let s = one_shard(&dir);
            for i in 0..30 {
                s.put(format!("k-{i}").as_bytes(), b"v").unwrap();
            }
            s.sync().unwrap();
        }
        // Plant a newest "snapshot" with entries but no seal record, as a
        // crash between rename and durability ordering bugs would.
        {
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(snap_path(&dir, 0, 99))
                .unwrap();
            let mut w = LogWriter::new(file, 0).unwrap();
            w.append(&Record::put(b"phantom".as_slice(), b"x".as_slice()))
                .unwrap();
            w.sync().unwrap();
        }
        let s = one_shard(&dir);
        assert_eq!(s.len(), 30, "torn snapshot must be rejected");
        assert_eq!(s.get(b"phantom"), None, "no phantom keys from a torn snapshot");
        assert!(
            !snap_path(&dir, 0, 99).exists(),
            "invalid snapshot is crash debris and gets removed"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn miscounted_snapshot_falls_back() {
        let dir = temp_dir("badcount");
        {
            let s = one_shard(&dir);
            s.put(b"real", b"v").unwrap();
            s.sync().unwrap();
        }
        // A sealed snapshot whose count disagrees with its entries.
        {
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(snap_path(&dir, 0, 50))
                .unwrap();
            let mut w = LogWriter::new(file, 0).unwrap();
            w.append(&Record::put(b"phantom".as_slice(), b"x".as_slice()))
                .unwrap();
            w.append(&Record::seal(7)).unwrap();
            w.sync().unwrap();
        }
        let s = one_shard(&dir);
        assert_eq!(s.get(b"real"), Some(b"v".to_vec()));
        assert_eq!(s.get(b"phantom"), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_compaction_triggers_on_garbage() {
        let dir = temp_dir("autocompact");
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                segment_max_bytes: 2048,
                compact_garbage_ratio: 0.5,
                shards: 1,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap();
        // Hammer one key: almost everything is garbage.
        for i in 0..500 {
            s.put(b"hot", format!("value-{i}").as_bytes()).unwrap();
        }
        let st = s.stats();
        assert!(st.compactions >= 1, "{st:?}");
        assert_eq!(s.get(b"hot"), Some(b"value-499".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    // Satellite: replay and the live write path must account dead bytes
    // identically (the old code counted `old.len()` on replay but
    // `HEADER + key + old` live, so a reopened store compacted on a
    // different schedule).
    #[test]
    fn dead_bytes_identical_after_reopen() {
        let dir = temp_dir("deadbytes");
        let live = {
            let s = MetaStore::open(&dir).unwrap();
            for i in 0..60 {
                s.put(format!("k-{i}").as_bytes(), &vec![7u8; i]).unwrap();
            }
            for i in 0..60 {
                // Overwrites with a different length + some deletes.
                if i % 3 == 0 {
                    s.delete(format!("k-{i}").as_bytes()).unwrap();
                } else {
                    s.put(format!("k-{i}").as_bytes(), &vec![9u8; 2 * i]).unwrap();
                }
            }
            s.sync().unwrap();
            s.stats()
        };
        let reopened = MetaStore::open(&dir).unwrap().stats();
        assert!(live.dead_bytes > 0);
        assert_eq!(
            live.dead_bytes, reopened.dead_bytes,
            "live {live:?} vs reopened {reopened:?}"
        );
        assert_eq!(live.live_keys, reopened.live_keys);
        assert_eq!(live.log_bytes, reopened.log_bytes);
        fs::remove_dir_all(&dir).ok();
    }

    // Satellite: deleting a missing key writes nothing — no tombstone in
    // the log, no dead-bytes drift.
    #[test]
    fn delete_of_missing_key_writes_nothing() {
        let dir = temp_dir("delmissing");
        let s = MetaStore::open(&dir).unwrap();
        s.put(b"present", b"v").unwrap();
        let before = s.stats();
        for _ in 0..10 {
            assert!(!s.delete(b"absent").unwrap());
        }
        let after = s.stats();
        assert_eq!(before.log_bytes, after.log_bytes, "no tombstone appended");
        assert_eq!(before.dead_bytes, after.dead_bytes, "no dead-bytes drift");
        fs::remove_dir_all(&dir).ok();
    }

    // Satellite: a put of an identical value is still a durable append —
    // the record lands in the log (and in sync mode acks only after its
    // fsync; the crash matrix exercises that half).
    #[test]
    fn identical_put_still_appends_durably() {
        let dir = temp_dir("identput");
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                sync_every_append: true,
                shards: 1,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap();
        s.put(b"k", b"same").unwrap();
        let before = s.stats();
        s.put(b"k", b"same").unwrap();
        let after = s.stats();
        assert_eq!(
            after.log_bytes - before.log_bytes,
            encoded_record_len(1, 4),
            "identical put must append its record"
        );
        assert!(after.fsyncs > before.fsyncs, "and fsync before acking");
        // The overwritten (identical) record is garbage like any other.
        assert_eq!(after.dead_bytes - before.dead_bytes, encoded_record_len(1, 4));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_prefix_merges_shards_in_order() {
        let dir = temp_dir("scan");
        let s = MetaStore::open(&dir).unwrap();
        for i in (0..50).rev() {
            s.put(format!("obj/{i:03}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
        s.put(b"other/x", b"1").unwrap();
        let hits = s.scan_prefix(b"obj/");
        assert_eq!(hits.len(), 50);
        let keys: Vec<_> = hits.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "scan output is sorted across shards");
        assert_eq!(hits[7].0, b"obj/007".to_vec());
        assert!(s.scan_prefix(b"zzz").is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_concurrent_writers() {
        let dir = temp_dir("group");
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                sync_every_append: true,
                group_commit: true,
                shards: 2,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap();
        let s = std::sync::Arc::new(s);
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    s.put(format!("t{t}-k{i}").as_bytes(), format!("{i}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 200);
        let st = s.stats();
        // Every record was committed through the group path, and each got
        // exactly one ack.
        assert_eq!(st.group_commit_records, 200, "{st:?}");
        drop(s);
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.len(), 200);
        assert_eq!(s.get(b"t3-k49"), Some(b"49".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_many_commits_per_shard_batches() {
        let dir = temp_dir("putmany");
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                sync_every_append: true,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap();
        let keys: Vec<String> = (0..100).map(|i| format!("bulk-{i}")).collect();
        let items: Vec<(&[u8], &[u8])> = keys
            .iter()
            .map(|k| (k.as_bytes(), b"v".as_slice()))
            .collect();
        s.put_many(&items).unwrap();
        let st = s.stats();
        assert_eq!(st.live_keys, 100);
        // One fsync per non-empty shard batch, not one per record.
        assert!(st.fsyncs <= st.shards, "{st:?}");
        drop(s);
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.len(), 100);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_flat_layout_migrates() {
        let dir = temp_dir("legacy");
        fs::create_dir_all(&dir).unwrap();
        // A pre-sharding store: flat seg-*.log chain, no meta file.
        {
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(legacy_seg_path(&dir, 0))
                .unwrap();
            let mut w = LogWriter::new(file, 0).unwrap();
            w.append(&Record::put(b"old-a".as_slice(), b"1".as_slice()))
                .unwrap();
            w.append(&Record::put(b"old-b".as_slice(), b"2".as_slice()))
                .unwrap();
            w.append(&Record::put(b"old-a".as_slice(), b"3".as_slice()))
                .unwrap();
            w.append(&Record::delete(b"old-b".as_slice())).unwrap();
            w.sync().unwrap();
        }
        {
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .read(true)
                .truncate(true)
                .open(legacy_seg_path(&dir, 1))
                .unwrap();
            let mut w = LogWriter::new(file, 0).unwrap();
            w.append(&Record::put(b"old-c".as_slice(), b"4".as_slice()))
                .unwrap();
            w.sync().unwrap();
        }
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.get(b"old-a"), Some(b"3".to_vec()));
        assert_eq!(s.get(b"old-b"), None);
        assert_eq!(s.get(b"old-c"), Some(b"4".to_vec()));
        assert!(!legacy_seg_path(&dir, 0).exists(), "legacy files removed");
        assert!(!legacy_seg_path(&dir, 1).exists());
        drop(s);
        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reads_do_not_take_the_commit_lock() {
        // A reader landing while a writer holds the commit lock must not
        // block: get/contains/scan take only the index RwLock.
        let dir = temp_dir("rwsplit");
        let s = MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                shards: 1,
                ..MetaStoreOptions::default()
            },
        )
        .unwrap();
        s.put(b"k", b"v").unwrap();
        let c = s.shards[0].commit.lock();
        assert_eq!(s.get(b"k"), Some(b"v".to_vec()));
        assert!(s.contains(b"k"));
        assert_eq!(s.scan_prefix(b"k").len(), 1);
        drop(c);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prop_reopen_matches_model() {
        prop_check!(cases = 12, |rng| {
            let dir = temp_dir("prop");
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            {
                let s = MetaStore::open_with(
                    &dir,
                    MetaStoreOptions {
                        segment_max_bytes: 1024,
                        compact_garbage_ratio: 0.6,
                        shards: 4,
                        ..MetaStoreOptions::default()
                    },
                )
                .unwrap();
                let ops = gen::usize_in(rng, 20..200);
                for _ in 0..ops {
                    let key = format!("key-{}", gen::usize_in(rng, 0..30)).into_bytes();
                    if rng.chance(0.25) {
                        let existed = s.delete(&key).unwrap();
                        assert_eq!(existed, model.remove(&key).is_some());
                    } else {
                        let value = gen::byte_vec(rng, 0..64);
                        s.put(&key, &value).unwrap();
                        model.insert(key, value);
                    }
                }
                if rng.chance(0.3) {
                    s.compact().unwrap();
                }
                s.sync().unwrap();
            }
            let s = MetaStore::open(&dir).unwrap();
            assert_eq!(s.len(), model.len());
            for (k, v) in &model {
                assert_eq!(s.get(k).as_ref(), Some(v));
            }
            let _ = rng;
            fs::remove_dir_all(&dir).ok();
        });
    }

    #[test]
    fn debug_format_mentions_shards() {
        let dir = temp_dir("dbg");
        let s = MetaStore::open(&dir).unwrap();
        let text = format!("{s:?}");
        assert!(text.contains("shards"), "{text}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let mut rng = SimRng::new(42);
        for _ in 0..200 {
            let key = gen::byte_vec(&mut rng, 0..40);
            for count in [1usize, 2, 8, 64] {
                let a = MetaStore::shard_of(&key, count);
                assert!(a < count);
                assert_eq!(a, MetaStore::shard_of(&key, count), "deterministic");
            }
        }
    }
}
