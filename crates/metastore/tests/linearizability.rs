//! Concurrent-writer linearizability for the sharded metastore.
//!
//! The contract under group commit: whatever interleaving the threads
//! produce, the store's final state must equal a **sequential replay of
//! the per-shard logs** — the log is the linearization. A second property
//! pins recovery: truncating the log suffix at any record boundary yields
//! a state that is a prefix of the acked history.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tiera_metastore::{
    encoded_record_len, LogReader, MetaStore, MetaStoreOptions, RecordKind,
};
use tiera_support::prop::gen;
use tiera_support::prop_check;
use tiera_support::rng::SimRng;

fn temp_dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "tiera-linz-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    fs::create_dir_all(&d).unwrap();
    d
}

/// Replays every shard's segment chain sequentially (file-name order
/// carries both the shard and the segment sequence) into one map —
/// the ground truth the live index must match.
fn replay_all_segments(dir: &Path) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut seg_files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.contains("-seg-") && n.ends_with(".log"))
                .unwrap_or(false)
        })
        .collect();
    seg_files.sort();
    let mut map = BTreeMap::new();
    for path in seg_files {
        let mut reader = LogReader::new(File::open(&path).unwrap());
        while let Some(rec) = reader.next_record().unwrap() {
            match rec.kind {
                RecordKind::Put => {
                    map.insert(rec.key, rec.value);
                }
                RecordKind::Delete => {
                    map.remove(&rec.key);
                }
                RecordKind::Seal => panic!("seal record in a segment"),
            }
        }
    }
    map
}

/// 4 threads hammer one store (mixed put/delete/get, group commit on);
/// afterwards the in-memory state, a sequential replay of the per-shard
/// logs, and a fresh reopen must all agree.
#[test]
fn hammer_matches_sequential_log_replay() {
    let dir = temp_dir("hammer");
    let store = Arc::new(
        MetaStore::open_with(
            &dir,
            MetaStoreOptions {
                sync_every_append: true,
                group_commit: true,
                shards: 4,
                compact_garbage_ratio: 1.0, // keep every segment for replay
                ..MetaStoreOptions::default()
            },
        )
        .unwrap(),
    );
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut rng = SimRng::new(0x5eed_0000 + t);
            for i in 0..120u64 {
                // Overlapping keyspace so threads contend on shards.
                let key = format!("key-{:02}", rng.next_below(40));
                if rng.chance(0.2) {
                    store.delete(key.as_bytes()).unwrap();
                } else {
                    let value = format!("t{t}-i{i}");
                    store.put(key.as_bytes(), value.as_bytes()).unwrap();
                }
                if rng.chance(0.3) {
                    let _ = store.get(key.as_bytes());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let live: BTreeMap<Vec<u8>, Vec<u8>> = store.scan_prefix(b"").into_iter().collect();
    let replayed = replay_all_segments(&dir);
    assert_eq!(live, replayed, "live index != sequential log replay");

    drop(store);
    let reopened: BTreeMap<Vec<u8>, Vec<u8>> = MetaStore::open(&dir)
        .unwrap()
        .scan_prefix(b"")
        .into_iter()
        .collect();
    assert_eq!(reopened, replayed, "recovery != sequential log replay");
    fs::remove_dir_all(&dir).ok();
}

/// Reopen after truncating the (single-shard) log at **any** record
/// boundary yields exactly the first `j` acked operations — a prefix of
/// acked state, never a subset with holes and never phantom keys.
#[test]
fn prop_truncation_yields_acked_prefix() {
    prop_check!(cases = 16, |rng| {
        let dir = temp_dir("prefix");
        // Distinct keys + per-op values so every state change is visible.
        let ops = gen::usize_in(rng, 5..60);
        let mut lens: Vec<u64> = Vec::new(); // cumulative boundary offsets
        {
            let s = MetaStore::open_with(
                &dir,
                MetaStoreOptions {
                    sync_every_append: true,
                    shards: 1,
                    ..MetaStoreOptions::default()
                },
            )
            .unwrap();
            let mut at = 0u64;
            for i in 0..ops {
                let key = format!("key-{i:04}");
                s.put(key.as_bytes(), format!("v{i}").as_bytes()).unwrap();
                at += encoded_record_len(key.len(), format!("v{i}").len());
                lens.push(at);
            }
        }
        let seg: PathBuf = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.contains("-seg-"))
                    .unwrap_or(false)
            })
            .unwrap();
        assert_eq!(fs::metadata(&seg).unwrap().len(), *lens.last().unwrap());
        // Truncate at a random record boundary (0 = empty log).
        let j = gen::usize_in(rng, 0..ops + 1);
        let cut = if j == 0 { 0 } else { lens[j - 1] };
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.len(), j, "state must be exactly the first {j} acked ops");
        for i in 0..ops {
            let key = format!("key-{i:04}");
            if i < j {
                assert_eq!(s.get(key.as_bytes()), Some(format!("v{i}").into_bytes()));
            } else {
                assert_eq!(s.get(key.as_bytes()), None, "phantom key after cut");
            }
        }
        fs::remove_dir_all(&dir).ok();
    });
}

/// Same property off a record boundary: the torn record (and only it)
/// disappears; everything before the tear survives.
#[test]
fn prop_mid_record_truncation_drops_only_the_torn_tail() {
    prop_check!(cases = 12, |rng| {
        let dir = temp_dir("tear");
        let ops = gen::usize_in(rng, 2..40);
        let mut lens: Vec<u64> = Vec::new();
        {
            let s = MetaStore::open_with(
                &dir,
                MetaStoreOptions {
                    sync_every_append: true,
                    shards: 1,
                    ..MetaStoreOptions::default()
                },
            )
            .unwrap();
            let mut at = 0u64;
            for i in 0..ops {
                let key = format!("key-{i:04}");
                s.put(key.as_bytes(), b"vv").unwrap();
                at += encoded_record_len(key.len(), 2);
                lens.push(at);
            }
        }
        let seg: PathBuf = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.contains("-seg-"))
                    .unwrap_or(false)
            })
            .unwrap();
        // Cut strictly inside record j (not at either boundary).
        let j = gen::usize_in(rng, 0..ops);
        let lo = if j == 0 { 0 } else { lens[j - 1] };
        let cut = gen::u64_in(rng, lo + 1..lens[j]);
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let s = MetaStore::open(&dir).unwrap();
        assert_eq!(s.len(), j, "exactly the records before the tear survive");
        fs::remove_dir_all(&dir).ok();
    });
}
