//! Concurrency hammer: four threads drive routed ops through one
//! `Coordinator` while the main thread joins a node and runs the
//! rebalance engine live. Run under `--features lockcheck` (scripts/
//! verify.sh does) this doubles as a lock-order sanity check for the
//! cluster plane's `cluster.ring` → `cluster.meta` → `cluster.node`
//! discipline; without the feature it still exercises the routing and
//! migration paths under contention.

use std::sync::Arc;
use std::thread;

use tiera_cluster::{ClusterNode, Coordinator};
use tiera_core::prelude::*;
use tiera_sim::{SimEnv, SimTime};
use tiera_support::Bytes;

fn mem_node(name: &str, seed: u64) -> Arc<ClusterNode> {
    let inst = InstanceBuilder::new(name, SimEnv::new(seed))
        .tier(MemTier::with_traits(
            "store",
            128 << 20,
            TierTraits {
                durable: true,
                ..TierTraits::default()
            },
        ))
        .build()
        .unwrap();
    ClusterNode::new(name, inst)
}

#[test]
fn four_threads_hammer_one_coordinator_through_a_live_rebalance() {
    const THREADS: usize = 4;
    const OPS: usize = 400;

    let coord = Arc::new(Coordinator::new(3, 2));
    for i in 0..4 {
        coord.add_node(mem_node(&format!("node-{i}"), 50 + i)).unwrap();
    }
    let t0 = SimTime::ZERO;

    // Pre-load some shared keys every thread reads (no byte asserts on
    // these: concurrent overwrites make any value legitimate).
    for s in 0..8 {
        coord
            .put(&format!("shared-{s}"), Bytes::from(vec![s as u8; 256]), t0)
            .unwrap();
    }

    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let coord = Arc::clone(&coord);
            thread::spawn(move || {
                // Disjoint per-thread keyspace: bytes are asserted here
                // because nobody else writes these keys.
                for i in 0..OPS {
                    let key = format!("w{w}-k{}", i % 32);
                    let value = vec![(w * 31 + i) as u8; 512];
                    coord
                        .put(&key, Bytes::from(value.clone()), t0)
                        .expect("quorum is always available: no faults injected");
                    let (data, _) = coord.get(&key, t0).expect("own write readable");
                    assert_eq!(&data[..], &value[..], "thread {w} read its own write");
                    if i % 16 == 9 {
                        coord.delete(coord.next_token(), &key, t0).expect("own key deletes");
                        assert!(coord.get(&key, t0).is_err(), "deleted key unreadable");
                    }
                    // Shared keys: existence only, any acked bytes are fine.
                    if i % 8 == 3 {
                        let shared = format!("shared-{}", i % 8);
                        let _ = coord.get(&shared, t0);
                        let _ = coord.put(&shared, Bytes::from(vec![w as u8; 128]), t0);
                    }
                }
            })
        })
        .collect();

    // Main thread: join a node mid-hammer and drive the rebalance in
    // small bandwidth-capped steps, concurrently with the traffic.
    let planned = coord.add_node(mem_node("node-late", 999)).unwrap();
    let mut steps = 0u32;
    while !coord.rebalance_done() {
        coord.rebalance_step(t0, 4 * 1024);
        steps += 1;
        assert!(steps < 100_000, "rebalance must terminate");
        thread::yield_now();
    }

    for w in workers {
        w.join().expect("no worker panicked (lock order held)");
    }

    // Post-hammer: the cluster is coherent — every surviving per-thread
    // key reads back, and the rebalance bookkeeping closed out.
    if planned > 0 {
        let report = coord.last_rebalance().expect("completed run recorded");
        assert!(report.moved_keys <= report.planned as u64);
    }
    for w in 0..THREADS {
        for i in 0..32 {
            let key = format!("w{w}-k{i}");
            if coord.contains(&key) {
                coord.get(&key, t0).expect("live key readable after hammer");
            }
        }
    }
}
