//! Regression: a client redial racing coordinator-side failover must
//! not double-apply a non-idempotent DELETE.
//!
//! The transport (`tiera_rpc::TieraClient`) redials transparently after
//! any transport error, and `TieraClient::redials()` exposes exactly
//! when that happened — the moment a retried request's first attempt has
//! unknown fate. Without idempotency tokens, the retry of a DELETE whose
//! first attempt *did* apply would hit the now-absent key and surface a
//! spurious `no such object` (or, with a failover coordinator re-routing
//! to a different replica subset, delete a *resurrected* key written in
//! between). With tokens, both orderings are safe:
//!
//! 1. **apply → redial retry**: the first attempt applied; the retry
//!    replays the recorded outcome and touches storage zero more times.
//! 2. **partial-fail → failover retry**: the first attempt reached some
//!    replicas but missed quorum; the retry completes the op, and the
//!    replicas that already applied it ack from their token table
//!    instead of double-applying.

use std::sync::Arc;

use tiera_cluster::{ClusterError, ClusterNode, Coordinator};
use tiera_core::prelude::*;
use tiera_sim::{SimEnv, SimTime};
use tiera_support::Bytes;

fn mem_node(name: &str, seed: u64) -> Arc<ClusterNode> {
    let inst = InstanceBuilder::new(name, SimEnv::new(seed))
        .tier(MemTier::with_traits(
            "store",
            64 << 20,
            TierTraits {
                durable: true,
                ..TierTraits::default()
            },
        ))
        .build()
        .unwrap();
    ClusterNode::new(name, inst)
}

fn cluster() -> (Coordinator, Vec<Arc<ClusterNode>>) {
    let coord = Coordinator::new(3, 2);
    let nodes: Vec<_> = (0..3).map(|i| mem_node(&format!("node-{i}"), 70 + i as u64)).collect();
    for n in &nodes {
        coord.add_node(Arc::clone(n)).unwrap();
    }
    (coord, nodes)
}

fn total_applied(nodes: &[Arc<ClusterNode>]) -> u64 {
    nodes.iter().map(|n| n.deletes_applied()).sum()
}

/// Ordering 1: the DELETE fully applied, the ack was lost on the wire,
/// and the redialed client retries the same token.
#[test]
fn redial_retry_after_successful_apply_replays_not_reapplies() {
    let (coord, nodes) = cluster();
    let t = SimTime::ZERO;
    coord.put("k", Bytes::from(&b"v"[..]), t).unwrap();

    let token = coord.next_token();
    let first = coord.delete(token, "k", t).expect("first delivery applies");
    let applied_once = total_applied(&nodes);
    assert!(applied_once >= 1, "the key existed on its owners");

    // The redial: same token, same key. Must replay the original success
    // — NOT a second apply, and NOT `no such object`.
    let retry = coord.delete(token, "k", t).expect("retry must replay the recorded outcome");
    assert_eq!(retry, first, "replayed outcome matches the original ack");
    assert_eq!(
        total_applied(&nodes),
        applied_once,
        "storage deletes applied exactly once across both deliveries"
    );

    // A genuinely new delete of the (now absent) key still reports
    // no-such-object — the replay path is token-keyed, not key-keyed.
    assert!(matches!(
        coord.delete(coord.next_token(), "k", t),
        Err(ClusterError::NoSuchObject(_))
    ));
}

/// Ordering 1b: a write interleaves between apply and retry. The retry
/// must replay the *original* outcome and leave the new value alone
/// (the non-token bug would delete the resurrected key).
#[test]
fn redial_retry_does_not_delete_a_resurrected_key() {
    let (coord, nodes) = cluster();
    let t = SimTime::ZERO;
    coord.put("k", Bytes::from(&b"old"[..]), t).unwrap();
    let token = coord.next_token();
    coord.delete(token, "k", t).unwrap();
    let applied = total_applied(&nodes);

    // The key is re-written before the duplicate delivery lands.
    coord.put("k", Bytes::from(&b"new"[..]), t).unwrap();
    coord.delete(token, "k", t).expect("duplicate replays the old success");
    assert_eq!(total_applied(&nodes), applied, "no second apply");
    let (data, _) = coord.get("k", t).expect("resurrected key survives the dup");
    assert_eq!(&data[..], b"new");
}

/// Ordering 2: the first delivery reaches one replica and then misses
/// quorum (two owners dark). The failover retry with the same token
/// completes the delete; the replica that already applied it must ack
/// from its token table, not double-count.
#[test]
fn failover_retry_after_partial_apply_completes_exactly_once() {
    let (coord, nodes) = cluster();
    let t = SimTime::ZERO;
    coord.put("k", Bytes::from(&b"v"[..]), t).unwrap();

    // Two of the three owners go dark: quorum (W=2) is unreachable, but
    // the one live owner applies its delete before the coordinator gives
    // up — the classic partial failure.
    let owners = coord.owner_names("k");
    let dark: Vec<_> = nodes
        .iter()
        .filter(|n| n.name() == owners[1] || n.name() == owners[2])
        .collect();
    for n in &dark {
        n.kill();
    }
    let token = coord.next_token();
    let err = coord.delete(token, "k", t).expect_err("quorum must fail");
    assert!(matches!(err, ClusterError::NoQuorum { acked: 1, .. }), "{err}");
    assert_eq!(total_applied(&nodes), 1, "exactly the live owner applied");
    // Half-deleted and under-replicated, the read refuses rather than
    // inventing a phantom delete or serving torn state: the metadata
    // still says the key lives, but no reachable replica is fresh.
    let err = coord.get("k", t).expect_err("no reachable fresh replica");
    assert!(matches!(err, ClusterError::NoFreshReplica { .. }), "{err}");

    // Failover: the dark owners return. A read now succeeds from their
    // fresh copies and read-repairs the half-deleted owner.
    for n in &dark {
        n.revive();
    }
    let (data, _) = coord.get("k", t).expect("fresh replicas back");
    assert_eq!(&data[..], b"v");

    // The client (or a takeover coordinator draining its peer's log)
    // retries the same token: the delete completes. The owner that
    // already applied it acks from its token table — it does NOT delete
    // the copy read repair just restored a second time.
    coord.delete(token, "k", t).expect("retry completes the delete");
    assert!(matches!(
        coord.get("k", t),
        Err(ClusterError::NoSuchObject(_))
    ));
    for n in &nodes {
        assert!(
            n.deletes_applied() <= 1,
            "node {} applied the same token twice",
            n.name()
        );
    }
    // And a further duplicate of the now-successful token is pure replay.
    let applied = total_applied(&nodes);
    coord.delete(token, "k", t).expect("third delivery replays");
    assert_eq!(total_applied(&nodes), applied);
}
